"""The whole-program model behind reprolint's cross-file rules.

The per-file walk (``base.py``/``engine.py``) can certify anything a
single module exhibits, but the invariants that make sharding the
execution engine safe — no hidden shared mutable state, no wall clock
reachable from cost paths, every mutable field captured by
``state_dict`` — span module boundaries. This module builds, in one
pass over the already-parsed tree, the three structures the
:class:`~repro.analysis.progrules.ProgramRule` pack reasons over:

* **per-module symbol tables** (:class:`ModuleInfo`) — classes with
  their methods and attribute assignments, functions with the calls
  they make, module-level bindings with a mutability verdict, import
  alias tables, and every statically-visible reference to another
  ``repro`` module's attribute;
* **a subsystem-level import graph** — edges between top-level
  ``repro.<subsystem>`` packages, each tagged with whether the import
  is deferred (function-local) or annotation-only
  (``TYPE_CHECKING``), plus cycle detection;
* **a conservative call graph** — name/attribute resolution strictly
  within ``repro.*`` (same-module names, ``from repro.x import f``
  aliases, ``module.attr`` chains, ``self.method`` within a class,
  ``ClassName(...)`` → ``__init__``). Anything it cannot resolve it
  drops, so closure queries under-approximate reachability and never
  invent an edge — program rules built on it report only what is
  provably wired.

Everything here is derived from the same :class:`ParsedModule`
objects the per-file rules walk; no linted code is imported or
executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import ParsedModule

#: Constructors whose result is shared mutable state when bound at
#: module or instance level.
MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "deque",
        "OrderedDict",
        "Counter",
    }
)

#: ``time.<fn>`` reads that leak wall-clock into a computation.
WALL_TIME_FNS = frozenset(
    {
        "time",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "time_ns",
    }
)

#: ``datetime.<fn>`` / ``date.<fn>`` wall-clock constructors.
WALL_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/repro/execution/engine.py`` → ``repro.execution.engine``;
    a package ``__init__.py`` names the package itself. Files outside
    a ``src/`` layout keep their path-derived name (corpus fixtures
    written as bare ``snippet.py`` become module ``snippet``).
    """
    parts = relpath.split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or relpath


def subsystem_of(module_name: str) -> str:
    """Owning subsystem: ``repro.execution.engine`` → ``execution``.

    Top-level modules (``repro.cli``) are their own subsystem; names
    outside the ``repro`` package use their first component.
    """
    parts = module_name.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        return parts[1]
    return parts[0]


def is_mutable_value(node: ast.AST) -> bool:
    """True when ``node`` constructs an obviously mutable object."""
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in MUTABLE_CALLS:
            return True
    return False


@dataclass(frozen=True)
class ImportEdge:
    """One ``import``/``from-import`` of a ``repro`` module."""

    importer: str  # dotted name of the importing module
    target: str  # dotted name of the imported repro module
    lineno: int
    col: int
    deferred: bool  # inside a function/method body
    type_checking: bool  # inside an `if TYPE_CHECKING:` block


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # repro.execution.engine.Engine.run
    name: str
    module: str  # dotted module name
    relpath: str
    node: ast.AST  # the FunctionDef/AsyncFunctionDef
    class_name: Optional[str] = None
    #: Raw dotted call targets as written (``self.flush``, ``np.dot``).
    calls: List[str] = field(default_factory=list)
    #: Wall-clock reads made directly in this body: (node, rendered name).
    wall_reads: List[Tuple[ast.AST, str]] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class definition with its persistence-relevant surface."""

    qualname: str
    name: str
    module: str
    relpath: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute -> first assignment node, for `self.<attr> = <mutable>`
    #: found in any method body.
    mutable_attrs: Dict[str, ast.AST] = field(default_factory=dict)
    #: every attribute read or written through ``self`` per method name.
    self_refs: Dict[str, Set[str]] = field(default_factory=dict)
    #: string keys of dict literals returned by ``state_dict`` (None =
    #: no statically extractable literal return).
    state_dict_keys: Optional[FrozenSet[str]] = None


@dataclass
class ModuleInfo:
    """Symbol table of one parsed module."""

    parsed: ParsedModule
    name: str
    relpath: str
    subsystem: str
    imports: List[ImportEdge] = field(default_factory=list)
    #: local alias -> dotted repro module (``import repro.x as y``,
    #: ``from repro.obs import names``).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (repro module, member) for ``from repro.x import f``.
    member_aliases: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: local alias -> external top-level module (``np`` -> ``numpy``).
    external_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (external module, member) for ``from time import time``.
    external_members: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level name -> assignment node for mutable bindings.
    module_mutables: Dict[str, ast.AST] = field(default_factory=dict)
    #: module-level string constants: name -> (value, assignment node).
    string_constants: Dict[str, Tuple[str, ast.AST]] = field(
        default_factory=dict
    )
    #: statically-visible references to other repro modules' attributes
    #: (resolved at model-build time, after submodule-alias promotion).
    attr_refs: Set[Tuple[str, str]] = field(default_factory=set)
    #: raw ``<base>.<attr>`` reads collected during the scan.
    raw_attr_refs: List[Tuple[str, str]] = field(default_factory=list)
    #: raw bare-name loads collected during the scan.
    raw_name_refs: List[str] = field(default_factory=list)
    #: every string literal appearing as the first argument of an
    #: attribute-call (candidate telemetry-name usage sites).
    call_str_args: Set[str] = field(default_factory=set)


class _Scope:
    """Walk context: enclosing class/function and import placement."""

    __slots__ = ("class_info", "func_info", "deferred", "type_checking")

    def __init__(self, class_info=None, func_info=None, deferred=False,
                 type_checking=False):
        self.class_info = class_info
        self.func_info = func_info
        self.deferred = deferred
        self.type_checking = type_checking


class _ModuleScanner:
    """Single recursive pass that fills one :class:`ModuleInfo`."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        #: package the module's relative imports resolve against.
        parts = info.name.split(".")
        if info.relpath.endswith("__init__.py"):
            self.package = parts
        else:
            self.package = parts[:-1]

    def scan(self) -> None:
        scope = _Scope()
        for stmt in self.info.parsed.tree.body:
            self._visit(stmt, scope)

    # -- imports ---------------------------------------------------------

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        base = self.package[: len(self.package) - (node.level - 1)]
        if node.level - 1 > len(self.package):
            return None
        if node.module:
            return ".".join(base + node.module.split("."))
        return ".".join(base) or None

    def _record_edge(self, target: str, node: ast.AST, scope: _Scope) -> None:
        if target == "repro" or target.startswith("repro."):
            self.info.imports.append(
                ImportEdge(
                    importer=self.info.name,
                    target=target,
                    lineno=node.lineno,
                    col=node.col_offset,
                    deferred=scope.deferred or scope.func_info is not None,
                    type_checking=scope.type_checking,
                )
            )

    def _visit_import(self, node: ast.Import, scope: _Scope) -> None:
        for alias in node.names:
            self._record_edge(alias.name, node, scope)
            if alias.name.startswith("repro.") or alias.name == "repro":
                if alias.asname:
                    self.info.module_aliases[alias.asname] = alias.name
                # plain `import repro.x` binds `repro`; dotted refs
                # resolve through the known-module prefix match.
            else:
                root = alias.name.split(".")[0]
                self.info.external_aliases[alias.asname or root] = root

    def _visit_import_from(self, node: ast.ImportFrom, scope: _Scope) -> None:
        target = self._resolve_from(node)
        if target is None:
            return
        if target == "repro" or target.startswith("repro."):
            for alias in node.names:
                if alias.name == "*":
                    self._record_edge(target, node, scope)
                    continue
                # Record the edge per imported name: the build-time
                # longest-prefix resolution collapses
                # `repro.obs.metrics.MetricsRegistry` to the module
                # `repro.obs.metrics` but keeps `repro.obs.names`
                # precise when the imported name IS a submodule.
                self._record_edge(f"{target}.{alias.name}", node, scope)
                local = alias.asname or alias.name
                # `from repro.obs import names` may bind a submodule;
                # resolution against known modules happens at build
                # time, so record both readings and let the model
                # prefer the module one.
                self.info.member_aliases[local] = (target, alias.name)
        else:
            root = target.split(".")[0]
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.info.external_members[local] = (root, alias.name)

    # -- structure -------------------------------------------------------

    def _qualname(self, scope: _Scope, name: str) -> str:
        parts = [self.info.name]
        if scope.class_info is not None:
            parts.append(scope.class_info.name)
        if scope.func_info is not None:
            parts.append(scope.func_info.name)
        parts.append(name)
        return ".".join(parts)

    def _visit_classdef(self, node: ast.ClassDef, scope: _Scope) -> None:
        bases = tuple(
            name for name in (dotted_name(b) for b in node.bases) if name
        )
        info = ClassInfo(
            qualname=self._qualname(scope, node.name),
            name=node.name,
            module=self.info.name,
            relpath=self.info.relpath,
            node=node,
            bases=bases,
        )
        if scope.class_info is None and scope.func_info is None:
            self.info.classes[node.name] = info
        inner = _Scope(
            class_info=info,
            func_info=None,
            deferred=scope.deferred or scope.func_info is not None,
            type_checking=scope.type_checking,
        )
        for stmt in node.body:
            self._visit(stmt, inner)
        self._extract_state_dict_keys(info)

    def _visit_functiondef(self, node, scope: _Scope) -> None:
        func = FunctionInfo(
            qualname=self._qualname(scope, node.name),
            name=node.name,
            module=self.info.name,
            relpath=self.info.relpath,
            node=node,
            class_name=(
                scope.class_info.name if scope.class_info is not None else None
            ),
        )
        self.info.functions[func.qualname] = func
        if scope.class_info is not None and scope.func_info is None:
            scope.class_info.methods[node.name] = func
            scope.class_info.self_refs.setdefault(node.name, set())
        for decorator in node.decorator_list:
            self._visit_expr(decorator, scope)
        inner = _Scope(
            class_info=scope.class_info,
            func_info=func,
            deferred=True,
            type_checking=scope.type_checking,
        )
        for stmt in node.body:
            self._visit(stmt, inner)

    # -- statements ------------------------------------------------------

    def _is_type_checking_test(self, test: ast.AST) -> bool:
        name = dotted_name(test)
        return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")

    def _visit(self, node: ast.AST, scope: _Scope) -> None:
        if isinstance(node, ast.Import):
            self._visit_import(node, scope)
        elif isinstance(node, ast.ImportFrom):
            self._visit_import_from(node, scope)
        elif isinstance(node, ast.ClassDef):
            self._visit_classdef(node, scope)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_functiondef(node, scope)
        elif isinstance(node, ast.If) and self._is_type_checking_test(
            node.test
        ):
            inner = _Scope(
                scope.class_info, scope.func_info, scope.deferred, True
            )
            for stmt in node.body:
                self._visit(stmt, inner)
            for stmt in node.orelse:
                self._visit(stmt, scope)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._visit_assign(node, scope)
        else:
            # Generic statement: visit nested statements structurally,
            # expressions for refs/calls.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._visit(child, scope)
                else:
                    self._visit_expr(child, scope)

    def _visit_assign(self, node, scope: _Scope) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            targets = [node.target]
            value = node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and scope.class_info is None
                and scope.func_info is None
            ):
                name = target.id
                if value is not None and not (
                    name.startswith("__") and name.endswith("__")
                ):
                    if is_mutable_value(value):
                        self.info.module_mutables.setdefault(name, node)
                    if (
                        isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                        and not isinstance(node, ast.AugAssign)
                    ):
                        self.info.string_constants[name] = (value.value, node)
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and scope.class_info is not None
                and scope.func_info is not None
            ):
                attr = target.attr
                method = scope.func_info.name
                scope.class_info.self_refs.setdefault(method, set()).add(attr)
                if value is not None and is_mutable_value(value):
                    scope.class_info.mutable_attrs.setdefault(attr, node)
            self._visit_expr(target, scope)
        if value is not None:
            self._visit_expr(value, scope)

    # -- expressions -----------------------------------------------------

    def _visit_expr(self, node: ast.AST, scope: _Scope) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._record_call(sub, scope)
            elif isinstance(sub, ast.Attribute):
                self._record_attr(sub, scope)
            elif isinstance(sub, ast.Name):
                self._record_name(sub, scope)
            elif isinstance(sub, (ast.Lambda,)):
                continue

    def _record_call(self, node: ast.Call, scope: _Scope) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        if scope.func_info is not None:
            scope.func_info.calls.append(name)
            self._check_wall_read(node, name, scope.func_info)
        if (
            isinstance(node.func, ast.Attribute)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            self.info.call_str_args.add(node.args[0].value)

    def _check_wall_read(
        self, node: ast.Call, name: str, func: FunctionInfo
    ) -> None:
        parts = name.split(".")
        time_aliases = {
            alias
            for alias, mod in self.info.external_aliases.items()
            if mod == "time"
        } | {"time"}
        dt_aliases = {
            alias
            for alias, mod in self.info.external_aliases.items()
            if mod == "datetime"
        } | {"datetime"}
        dt_members = {
            local
            for local, (mod, _) in self.info.external_members.items()
            if mod == "datetime"
        }
        if (
            len(parts) == 2
            and parts[0] in time_aliases
            and parts[1] in WALL_TIME_FNS
        ):
            func.wall_reads.append((node, name))
        elif (
            len(parts) >= 2
            and parts[-1] in WALL_DATETIME_FNS
            and (parts[0] in dt_aliases or parts[0] in dt_members)
        ):
            func.wall_reads.append((node, name))
        elif len(parts) == 1:
            member = self.info.external_members.get(parts[0])
            if (
                member is not None
                and member[0] == "time"
                and member[1] in WALL_TIME_FNS
            ):
                func.wall_reads.append((node, name))

    def _record_attr(self, node: ast.Attribute, scope: _Scope) -> None:
        if isinstance(node.value, ast.Name):
            self.info.raw_attr_refs.append((node.value.id, node.attr))
            if (
                node.value.id == "self"
                and scope.class_info is not None
                and scope.func_info is not None
            ):
                scope.class_info.self_refs.setdefault(
                    scope.func_info.name, set()
                ).add(node.attr)

    def _record_name(self, node: ast.Name, scope: _Scope) -> None:
        if isinstance(node.ctx, ast.Load):
            self.info.raw_name_refs.append(node.id)

    # -- state_dict literal keys ----------------------------------------

    @staticmethod
    def _extract_state_dict_keys(info: ClassInfo) -> None:
        func = info.methods.get("state_dict")
        if func is None:
            return
        keys: Set[str] = set()
        saw_return = False
        for sub in ast.walk(func.node):
            if not isinstance(sub, ast.Return) or sub.value is None:
                continue
            saw_return = True
            if not isinstance(sub.value, ast.Dict):
                return
            for key in sub.value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
                else:
                    return
        if saw_return:
            info.state_dict_keys = frozenset(keys)


@dataclass
class ProgramModel:
    """The one-pass whole-program view the program rules reason over."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    by_relpath: Dict[str, ModuleInfo] = field(default_factory=dict)
    #: importer subsystem -> imported subsystem -> witness edges.
    subsystem_graph: Dict[str, Dict[str, List[ImportEdge]]] = field(
        default_factory=dict
    )
    #: importer module -> imported modules (runtime edges, incl.
    #: deferred; TYPE_CHECKING-only edges excluded).
    module_graph: Dict[str, Set[str]] = field(default_factory=dict)
    #: caller qualname -> resolved callee qualnames (repro.* only).
    call_graph: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: every function/method in the program by qualname.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, parsed_modules: Sequence[ParsedModule]) -> "ProgramModel":
        model = cls()
        for parsed in parsed_modules:
            name = module_name_for(parsed.relpath)
            info = ModuleInfo(
                parsed=parsed,
                name=name,
                relpath=parsed.relpath,
                subsystem=subsystem_of(name),
            )
            _ModuleScanner(info).scan()
            model.modules[name] = info
            model.by_relpath[parsed.relpath] = info
        model._promote_submodule_aliases()
        model._resolve_attr_refs()
        model._build_graphs()
        model._build_call_graph()
        return model

    def _promote_submodule_aliases(self) -> None:
        """``from repro.obs import names`` binds the submodule, not an
        attribute — reclassify member aliases whose target is a known
        module."""
        for info in self.modules.values():
            promote = []
            for local, (module, member) in info.member_aliases.items():
                candidate = f"{module}.{member}"
                if candidate in self.modules:
                    promote.append((local, candidate))
            for local, candidate in promote:
                del info.member_aliases[local]
                info.module_aliases[local] = candidate

    def _resolve_attr_refs(self) -> None:
        """Turn raw name/attribute reads into (module, attr) refs."""
        for info in self.modules.values():
            for base, attr in info.raw_attr_refs:
                target = info.module_aliases.get(base)
                if target is not None:
                    info.attr_refs.add((target, attr))
                    continue
                member = info.member_aliases.get(base)
                if member is not None:
                    # `from repro.x import y; y.attr` — y is a class or
                    # constant; still record the reference to y itself.
                    info.attr_refs.add(member)
            for name in info.raw_name_refs:
                member = info.member_aliases.get(name)
                if member is not None:
                    info.attr_refs.add(member)

    def _build_graphs(self) -> None:
        for info in self.modules.values():
            targets = self.module_graph.setdefault(info.name, set())
            for edge in info.imports:
                if edge.type_checking:
                    continue
                resolved = self.resolve_module(edge.target)
                if resolved is not None and resolved != info.name:
                    targets.add(resolved)
                if edge.deferred:
                    continue
                importer_sub = info.subsystem
                target_sub = subsystem_of(edge.target)
                by_target = self.subsystem_graph.setdefault(importer_sub, {})
                by_target.setdefault(target_sub, []).append(edge)

    def resolve_module(self, dotted: str) -> Optional[str]:
        """Longest known-module prefix of ``dotted`` (or ``None``)."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    # -- call resolution -------------------------------------------------

    def _resolve_ref(
        self, info: ModuleInfo, raw: str, class_info: Optional[ClassInfo]
    ) -> Optional[str]:
        """Map one raw dotted call target to a known qualname."""
        parts = raw.split(".")
        head = parts[0]
        # self.method() / cls.method() inside a class body.
        if head in ("self", "cls") and class_info is not None:
            if len(parts) == 2 and parts[1] in class_info.methods:
                return class_info.methods[parts[1]].qualname
            return None
        # Local plain name: same-module function/class or from-import.
        if len(parts) == 1:
            if head in info.functions_by_name():
                return info.functions_by_name()[head]
            if head in info.classes:
                return self._class_target(info.classes[head])
            member = info.member_aliases.get(head)
            if member is not None:
                return self._member_target(member)
            return None
        # Alias-qualified: substitute the head and longest-prefix match.
        expanded: Optional[str] = None
        if head in info.module_aliases:
            expanded = ".".join([info.module_aliases[head]] + parts[1:])
        elif head == "repro":
            expanded = raw
        elif head in info.member_aliases:
            module, member = info.member_aliases[head]
            expanded = ".".join([module, member] + parts[1:])
        elif head in info.classes and len(parts) == 2:
            # ClassName.method(...) — unbound call through the class.
            method = info.classes[head].methods.get(parts[1])
            return method.qualname if method is not None else None
        if expanded is None:
            return None
        module = self.resolve_module(expanded)
        if module is None:
            return None
        remainder = expanded[len(module) :].lstrip(".")
        if not remainder:
            return None
        target_info = self.modules[module]
        rparts = remainder.split(".")
        if rparts[0] in target_info.classes:
            cls_info = target_info.classes[rparts[0]]
            if len(rparts) >= 2:
                method = cls_info.methods.get(rparts[1])
                return method.qualname if method is not None else None
            return self._class_target(cls_info)
        if len(rparts) == 1 and rparts[0] in target_info.functions_by_name():
            return target_info.functions_by_name()[rparts[0]]
        return None

    @staticmethod
    def _class_target(cls_info: ClassInfo) -> Optional[str]:
        init = cls_info.methods.get("__init__")
        return init.qualname if init is not None else None

    def _member_target(self, member: Tuple[str, str]) -> Optional[str]:
        module, name = member
        resolved = self.resolve_module(module)
        if resolved is None:
            return None
        target_info = self.modules[resolved]
        if name in target_info.classes:
            return self._class_target(target_info.classes[name])
        return target_info.functions_by_name().get(name)

    def _build_call_graph(self) -> None:
        for info in self.modules.values():
            for func in info.functions.values():
                self.functions[func.qualname] = func
        for info in self.modules.values():
            class_by_name = {
                cls.name: cls for cls in info.classes.values()
            }
            for func in info.functions.values():
                class_info = (
                    class_by_name.get(func.class_name)
                    if func.class_name is not None
                    else None
                )
                callees: Set[str] = set()
                for raw in func.calls:
                    resolved = self._resolve_ref(info, raw, class_info)
                    if resolved is not None and resolved != func.qualname:
                        callees.add(resolved)
                self.call_graph[func.qualname] = frozenset(callees)

    # -- queries ---------------------------------------------------------

    def find_subsystem_cycle(self) -> Optional[List[str]]:
        """A subsystem import cycle as ``[a, b, ..., a]``, or ``None``.

        Self-edges (intra-subsystem imports) are not cycles.
        """
        graph = {
            src: sorted(dst for dst in targets if dst != src)
            for src, targets in self.subsystem_graph.items()
        }
        WHITE, GREY, BLACK = 0, 1, 2
        color = {node: WHITE for node in graph}
        stack: List[str] = []

        def dfs(node: str) -> Optional[List[str]]:
            color[node] = GREY
            stack.append(node)
            for succ in graph.get(node, ()):  # sorted → deterministic
                if succ not in color:
                    continue
                if color[succ] == GREY:
                    start = stack.index(succ)
                    return stack[start:] + [succ]
                if color[succ] == WHITE:
                    found = dfs(succ)
                    if found is not None:
                        return found
            stack.pop()
            color[node] = BLACK
            return None

        for node in sorted(graph):
            if color[node] == WHITE:
                found = dfs(node)
                if found is not None:
                    return found
        return None

    def modules_reachable_from(self, seeds: Iterable[str]) -> Set[str]:
        """Transitive closure over the runtime module import graph."""
        seen: Set[str] = set()
        frontier = [seed for seed in seeds if seed in self.modules]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.module_graph.get(current, ()))
        return seen

    def call_chain_to(
        self,
        start: str,
        predicate,
        skip=None,
    ) -> Optional[List[str]]:
        """Shortest call chain from ``start`` to a function satisfying
        ``predicate`` — BFS over the call graph, deterministic order.

        ``skip(qualname)`` prunes sanctioned functions: they neither
        match nor propagate. Returns ``[start, ..., match]`` or
        ``None``. ``start`` itself is never returned as the match.
        """
        visited = {start}
        queue: List[Tuple[str, List[str]]] = [(start, [start])]
        while queue:
            current, path = queue.pop(0)
            for callee in sorted(self.call_graph.get(current, ())):
                if callee in visited:
                    continue
                visited.add(callee)
                if skip is not None and skip(callee):
                    continue
                chain = path + [callee]
                if predicate(callee):
                    return chain
                queue.append((callee, chain))
        return None


def _functions_by_name(info: ModuleInfo) -> Dict[str, str]:
    table = getattr(info, "_fn_by_name", None)
    if table is None:
        table = {
            func.name: func.qualname
            for func in info.functions.values()
            if func.class_name is None and "." not in func.name
        }
        info._fn_by_name = table  # type: ignore[attr-defined]
    return table


# Bind as a method (kept out of the dataclass body for cache clarity).
ModuleInfo.functions_by_name = _functions_by_name  # type: ignore[attr-defined]
