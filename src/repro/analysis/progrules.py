"""The whole-program rule pack: REP009–REP014.

These rules run after the per-file walk, against the
:class:`~repro.analysis.program.ProgramModel` built from every parsed
module in the tree (see DESIGN.md §14). They certify the cross-file
invariants a sharded execution engine depends on — complete
checkpoints, deterministic iteration, no hidden shared mutable state,
an acyclic subsystem layering, and no wall-clock reachable from cost
paths — none of which a single-module walk can see.

A :class:`ProgramRule` receives the model plus a
:class:`ProgramReporter` and anchors every finding at its *definition
site*: the attribute assignment, the import statement, the ``def``
line. That keeps the per-file machinery working unchanged — the
content fingerprint hashes the defining line, ``# repro: noqa[...]``
on that line suppresses the finding, and per-path config policies
scope each rule by the file the definition lives in.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Finding
from repro.analysis.program import ModuleInfo, ProgramModel, dotted_name

if TYPE_CHECKING:  # config imports this module; avoid the cycle.
    from repro.analysis.config import LintConfig


class ProgramReporter:
    """Collects one program rule's findings, applying noqa + policy.

    Definition-site semantics: ``report`` drops the finding when the
    rule is disabled (by the per-path config policies) for the file
    the anchor node lives in, and routes it to ``suppressed`` when
    that line carries a matching ``# repro: noqa`` comment.
    """

    def __init__(self, rule_id: str, config: LintConfig) -> None:
        self.rule_id = rule_id
        self.config = config
        self.findings: List[Finding] = []
        self.suppressed: List[Finding] = []

    def enabled_for(self, relpath: str) -> bool:
        return self.rule_id in self.config.rules_for_path(relpath)

    def report(self, module: ModuleInfo, node: ast.AST, message: str) -> None:
        self.report_at(
            module,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )

    def report_at(
        self, module: ModuleInfo, lineno: int, col: int, message: str
    ) -> None:
        if not self.enabled_for(module.relpath):
            return
        finding = Finding(
            rule_id=self.rule_id,
            path=module.relpath,
            line=lineno,
            col=col,
            message=message,
            snippet=module.parsed.line_text(lineno),
        )
        if module.parsed.is_suppressed(self.rule_id, lineno):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)


class ProgramRule:
    """Base class of the whole-program rule protocol.

    Subclasses set the identity attributes and implement
    ``check(model, reporter)``, emitting findings through the
    reporter. Rules must iterate the model in sorted order so output
    is deterministic.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check(self, model: ProgramModel, reporter: ProgramReporter) -> None:
        raise NotImplementedError


class CheckpointCompletenessRule(ProgramRule):
    """REP009 — every mutable attribute survives a checkpoint cycle.

    For a class that defines ``state_dict``, any attribute ever
    assigned a mutable value (list/dict/set/... ) in a method body
    must be *referenced* somewhere in the ``state_dict`` /
    ``load_state_dict`` pair — directly or through methods they call
    on ``self`` — otherwise a recovered instance silently loses that
    state and byte-identical resume is broken.
    """

    rule_id = "REP009"
    name = "ckpt-complete"
    description = (
        "classes defining state_dict must cover every mutable "
        "attribute their methods assign (or rebuild it in "
        "load_state_dict)"
    )

    def check(self, model: ProgramModel, reporter: ProgramReporter) -> None:
        for mod_name in sorted(model.modules):
            info = model.modules[mod_name]
            for cls_name in sorted(info.classes):
                cls = info.classes[cls_name]
                if "state_dict" not in cls.methods:
                    continue
                covered = self._covered_attrs(cls)
                for attr in sorted(cls.mutable_attrs):
                    if attr in covered:
                        continue
                    node = cls.mutable_attrs[attr]
                    reporter.report(
                        info,
                        node,
                        f"mutable attribute `self.{attr}` of "
                        f"{cls.name} is never referenced by "
                        f"state_dict/load_state_dict; a recovered "
                        f"instance would silently lose it",
                    )

    @staticmethod
    def _covered_attrs(cls) -> Set[str]:
        """Attributes referenced by the checkpoint pair, following
        ``self.<method>()`` calls within the class."""
        covered: Set[str] = set()
        seen: Set[str] = set()
        frontier = [
            m for m in ("state_dict", "load_state_dict") if m in cls.methods
        ]
        while frontier:
            method = frontier.pop()
            if method in seen:
                continue
            seen.add(method)
            covered |= cls.self_refs.get(method, set())
            for raw in cls.methods[method].calls:
                parts = raw.split(".")
                if (
                    len(parts) == 2
                    and parts[0] in ("self", "cls")
                    and parts[1] in cls.methods
                ):
                    frontier.append(parts[1])
        return covered


class UnorderedIterationRule(ProgramRule):
    """REP010 — no iteration over unordered collections on cost paths.

    ``set`` literals/constructors and directory listings
    (``os.listdir``, ``os.scandir``, ``Path.iterdir``, ``glob``)
    yield elements in an order the platform does not control; a
    ``for`` loop or comprehension driven by one feeds
    hash-randomized or filesystem order into whatever state it
    builds. Wrapping the source in ``sorted(...)`` fixes the order
    and silences the rule.
    """

    rule_id = "REP010"
    name = "unordered-iter"
    description = (
        "for-loops/comprehensions must not iterate raw sets or "
        "directory listings; wrap the source in sorted(...)"
    )

    _UNORDERED_CALLS = frozenset(
        {"set", "frozenset", "listdir", "scandir", "iterdir", "glob",
         "iglob", "rglob"}
    )

    def check(self, model: ProgramModel, reporter: ProgramReporter) -> None:
        for mod_name in sorted(model.modules):
            info = model.modules[mod_name]
            if not reporter.enabled_for(info.relpath):
                continue
            for node in ast.walk(info.parsed.tree):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    sources = [node.iter]
                elif isinstance(
                    node,
                    (ast.ListComp, ast.SetComp, ast.DictComp,
                     ast.GeneratorExp),
                ):
                    sources = [gen.iter for gen in node.generators]
                else:
                    continue
                for source in sources:
                    label = self._unordered(source)
                    if label is not None:
                        reporter.report(
                            info,
                            source,
                            f"iteration over unordered {label}; wrap "
                            f"it in sorted(...) so downstream state "
                            f"is deterministic",
                        )

    def _unordered(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set literal"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None:
                leaf = name.split(".")[-1]
                if leaf in self._UNORDERED_CALLS:
                    return f"`{name}(...)`"
        return None


class SharedMutableStateRule(ProgramRule):
    """REP011 — no module-level mutable state visible to shard code.

    Modules reachable (over the runtime import graph) from the
    ``execution``, ``ml``, or ``fleet`` subsystems will be imported
    by every worker shard. A module-level list/dict/set there is
    shared mutable state: workers mutate their own copy and the
    shards drift apart. Bind an immutable value (tuple, frozenset,
    ``MappingProxyType``) or move the state into an instance.
    """

    rule_id = "REP011"
    name = "shard-ready"
    description = (
        "modules importable from execution/ml/fleet must not bind "
        "module-level mutable values (tuple/frozenset/"
        "MappingProxyType instead)"
    )

    #: The subsystems whose import closure runs on worker shards.
    SHARD_SUBSYSTEMS = ("execution", "fleet", "ml")

    def check(self, model: ProgramModel, reporter: ProgramReporter) -> None:
        seeds = [
            name
            for name, info in model.modules.items()
            if info.subsystem in self.SHARD_SUBSYSTEMS
        ]
        reachable = model.modules_reachable_from(seeds)
        for mod_name in sorted(reachable):
            info = model.modules[mod_name]
            for var in sorted(info.module_mutables):
                node = info.module_mutables[var]
                reporter.report(
                    info,
                    node,
                    f"module-level mutable `{var}` is in the import "
                    f"closure of the sharded subsystems "
                    f"({'/'.join(self.SHARD_SUBSYSTEMS)}); bind an "
                    f"immutable value or move it into instance state",
                )


class LayeringRule(ProgramRule):
    """REP012 — the subsystem import graph must respect the layering.

    Each ``repro.<subsystem>`` has a layer number (low = foundational);
    a top-level runtime import must always point strictly *down* the
    table, which makes the graph a DAG by construction. Deferred
    (function-local) and ``TYPE_CHECKING`` imports are exempt — they
    are the sanctioned escape hatches. The two vocabulary modules
    (telemetry names, fault sites) are importable from anywhere but
    must themselves remain leaves. Cycle detection runs on the same
    filtered edge set and names the offending edge, catching cycles
    routed through subsystems the table does not rank yet.
    """

    rule_id = "REP012"
    name = "layering"
    description = (
        "top-level imports must respect the subsystem layer table "
        "(core/ml never import serving/fleet/traffic); no cycles"
    )

    #: Layer number per subsystem; imports must go strictly downward.
    LAYERS: Dict[str, int] = {
        "exceptions": 0,
        "utils": 1,
        "obs": 2,
        "ml": 2,
        "data": 3,
        "pipeline": 4,
        "io": 4,
        "datasets": 5,
        "persistence": 5,
        "execution": 5,
        "reliability": 6,
        "core": 7,
        "driftdetect": 8,
        "serving": 9,
        "traffic": 10,
        "fleet": 11,
        "analysis": 12,
        "experiments": 12,
        "evaluation": 13,
        "cli": 14,
        "repro": 15,
        "__main__": 16,
    }

    #: Leaf constants modules importable from any layer.
    VOCABULARY_MODULES = frozenset(
        {"repro.obs.names", "repro.reliability.sites"}
    )

    def check(self, model: ProgramModel, reporter: ProgramReporter) -> None:
        self._check_vocabulary_leaves(model, reporter)
        filtered = self._filtered_edges(model)
        for src in sorted(filtered):
            for dst in sorted(filtered[src]):
                edge = filtered[src][dst][0]
                src_layer = self.LAYERS.get(src)
                dst_layer = self.LAYERS.get(dst)
                if src_layer is None or dst_layer is None:
                    continue
                if src_layer <= dst_layer:
                    reporter.report_at(
                        model.modules[edge.importer],
                        edge.lineno,
                        edge.col,
                        f"layering violation: `{src}` (layer "
                        f"{src_layer}) imports `{dst}` (layer "
                        f"{dst_layer}) at top level; imports must "
                        f"point strictly down the table — defer the "
                        f"import into the function that needs it or "
                        f"move the shared code below both",
                    )
        self._check_cycles(model, filtered, reporter)

    def _check_vocabulary_leaves(
        self, model: ProgramModel, reporter: ProgramReporter
    ) -> None:
        for mod_name in sorted(self.VOCABULARY_MODULES):
            info = model.modules.get(mod_name)
            if info is None:
                continue
            for edge in info.imports:
                if edge.type_checking or edge.deferred:
                    continue
                reporter.report_at(
                    info,
                    edge.lineno,
                    edge.col,
                    f"vocabulary module {mod_name} imports "
                    f"{edge.target}; it is layering-exempt only "
                    f"while it remains a stdlib-only leaf",
                )

    def _filtered_edges(self, model: ProgramModel):
        """Cross-subsystem witness edges, vocabulary targets dropped."""
        filtered: Dict[str, Dict[str, List]] = {}
        for src, targets in model.subsystem_graph.items():
            for dst, edges in targets.items():
                if dst == src:
                    continue
                witnesses = [
                    edge
                    for edge in edges
                    if model.resolve_module(edge.target)
                    not in self.VOCABULARY_MODULES
                ]
                if witnesses:
                    filtered.setdefault(src, {})[dst] = witnesses
        return filtered

    def _check_cycles(
        self, model: ProgramModel, filtered, reporter: ProgramReporter
    ) -> None:
        WHITE, GREY, BLACK = 0, 1, 2
        color = {node: WHITE for node in filtered}
        stack: List[str] = []

        def dfs(node: str) -> Optional[List[str]]:
            color[node] = GREY
            stack.append(node)
            for succ in sorted(filtered.get(node, ())):
                if succ not in color:
                    color[succ] = WHITE
                if color[succ] == GREY:
                    return stack[stack.index(succ):] + [succ]
                if color[succ] == WHITE:
                    found = dfs(succ)
                    if found is not None:
                        return found
            stack.pop()
            color[node] = BLACK
            return None

        cycle: Optional[List[str]] = None
        for node in sorted(filtered):
            if color[node] == WHITE:
                cycle = dfs(node)
                if cycle is not None:
                    break
        if cycle is None:
            return
        edge = filtered[cycle[0]][cycle[1]][0]
        reporter.report_at(
            model.modules[edge.importer],
            edge.lineno,
            edge.col,
            f"subsystem import cycle: {' -> '.join(cycle)} "
            f"(edge `{cycle[0]}` -> `{cycle[1]}` witnessed here)",
        )


class WallClockReachRule(ProgramRule):
    """REP013 — no wall-clock read reachable from cost-path code.

    The interprocedural closure of REP002: a function is flagged when
    the conservative call graph shows a chain from it to a function
    that reads ``time.*``/``datetime.now`` — even when the read lives
    in another module the per-file walk would never connect.
    Functions in modules where this rule is disabled by policy (the
    dual-clock tracer, the bench timer) are *sanctioned*: chains
    neither match nor pass through them. The call graph drops
    anything it cannot resolve, so every reported chain is provably
    wired; the rule under-approximates and never invents a path.
    """

    rule_id = "REP013"
    name = "wall-reach"
    description = (
        "no call chain from cost-path code may reach a wall-clock "
        "read (interprocedural closure of REP002)"
    )

    def check(self, model: ProgramModel, reporter: ProgramReporter) -> None:
        sanctioned_cache: Dict[str, bool] = {}

        def sanctioned(qualname: str) -> bool:
            relpath = model.functions[qualname].relpath
            verdict = sanctioned_cache.get(relpath)
            if verdict is None:
                verdict = self.rule_id not in (
                    reporter.config.rules_for_path(relpath)
                )
                sanctioned_cache[relpath] = verdict
            return verdict

        def reads_wall(qualname: str) -> bool:
            return bool(model.functions[qualname].wall_reads)

        for qualname in sorted(model.functions):
            func = model.functions[qualname]
            if not reporter.enabled_for(func.relpath):
                continue
            chain = model.call_chain_to(
                qualname, reads_wall, skip=sanctioned
            )
            if chain is None:
                continue
            tail = model.functions[chain[-1]]
            node, read = tail.wall_reads[0]
            rendered = " -> ".join(
                q[len("repro."):] if q.startswith("repro.") else q
                for q in chain
            )
            reporter.report(
                model.modules[func.module],
                func.node,
                f"`{func.name}` reaches a wall-clock read: "
                f"{rendered} ({read} at {tail.relpath}:"
                f"{getattr(node, 'lineno', '?')})",
            )


class DeadTelemetryRule(ProgramRule):
    """REP014 — every declared telemetry name is emitted somewhere.

    The committed vocabulary (``repro.obs.names``) exists so REP005
    can reject unknown names at emission sites; the converse rot —
    a name declared but never emitted — accumulates silently. A
    constant counts as live when any other module passes its string
    value as the first argument of a method call (``counter.inc(...)``,
    ``telemetry.emit(...)``) or references the constant itself
    (``names.CHUNKS_PROCESSED``, ``from ... import CHUNKS_PROCESSED``).
    Prefix constants (values ending in ``.``) are wildcard families
    and exempt.
    """

    rule_id = "REP014"
    name = "dead-telemetry"
    description = (
        "names declared in obs/names.py must be emitted or "
        "referenced by live code"
    )

    NAMES_MODULE = "repro.obs.names"

    #: Mirrors names.NAME_PATTERN — full dotted telemetry names only.
    _NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

    def check(self, model: ProgramModel, reporter: ProgramReporter) -> None:
        info = model.modules.get(self.NAMES_MODULE)
        if info is None:
            return
        declared = {
            const: (value, node)
            for const, (value, node) in info.string_constants.items()
            if self._NAME_RE.match(value)
        }
        if not declared:
            return
        used_values: Set[str] = set()
        used_consts: Set[str] = set()
        for mod_name, other in model.modules.items():
            if mod_name == self.NAMES_MODULE:
                continue
            used_values |= other.call_str_args
            for module, attr in other.attr_refs:
                if module == self.NAMES_MODULE:
                    used_consts.add(attr)
        for const in sorted(declared):
            value, node = declared[const]
            if const in used_consts or value in used_values:
                continue
            reporter.report(
                info,
                node,
                f"telemetry name `{const}` (\"{value}\") is declared "
                f"but no live code emits or references it; delete it "
                f"or wire up the emission",
            )


#: Every shipped program rule, in id order.
PROGRAM_RULES: Tuple[ProgramRule, ...] = (
    CheckpointCompletenessRule(),
    UnorderedIterationRule(),
    SharedMutableStateRule(),
    LayeringRule(),
    WallClockReachRule(),
    DeadTelemetryRule(),
)

PROGRAM_RULES_BY_ID: Dict[str, ProgramRule] = {
    rule.rule_id: rule for rule in PROGRAM_RULES
}


def program_rules_for(ids: Sequence[str]) -> Tuple[ProgramRule, ...]:
    """The program rules among ``ids``, in id order (others ignored —
    the per-file pack validates unknown ids)."""
    wanted = set(ids)
    return tuple(r for r in PROGRAM_RULES if r.rule_id in wanted)
