"""The committed baseline of grandfathered findings.

A baseline entry suppresses exactly one finding by content
fingerprint (rule + path + offending line text), so it goes stale —
and stops suppressing — the moment the flagged code changes. Policy:
the baseline stays empty or near-empty; every entry carries a
one-line ``reason`` explaining why the finding is tolerated rather
than fixed. New code never gets baselined — fix it or ``# repro:
noqa[...]`` it with an inline justification.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.base import ConfigError, Finding

FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    fingerprint: str
    reason: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class Baseline:
    """The parsed baseline file."""

    entries: Tuple[BaselineEntry, ...] = ()

    @property
    def fingerprints(self) -> Set[str]:
        return {entry.fingerprint for entry in self.entries}

    def matches(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints


def load_baseline(path: Path) -> Baseline:
    """Read ``path``; a missing file is an empty baseline.

    A present-but-malformed file raises :class:`ConfigError` — silently
    ignoring a broken baseline would un-suppress (or worse, never
    enforce) everything without anyone noticing.
    """
    if not path.exists():
        return Baseline()
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ConfigError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ConfigError(
            f"baseline {path} is not valid JSON: {error}"
        ) from error
    if (
        not isinstance(raw, dict)
        or raw.get("version") != FORMAT_VERSION
        or not isinstance(raw.get("entries"), list)
    ):
        raise ConfigError(
            f"baseline {path} must be "
            f'{{"version": {FORMAT_VERSION}, "entries": [...]}}'
        )
    entries: List[BaselineEntry] = []
    for index, entry in enumerate(raw["entries"]):
        if not isinstance(entry, dict) or not {
            "rule",
            "path",
            "fingerprint",
            "reason",
        } <= set(entry):
            raise ConfigError(
                f"baseline {path} entry {index} must carry rule, "
                "path, fingerprint, and a one-line reason"
            )
        if not str(entry["reason"]).strip():
            raise ConfigError(
                f"baseline {path} entry {index} has an empty reason; "
                "every grandfathered finding needs a justification"
            )
        entries.append(
            BaselineEntry(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                fingerprint=str(entry["fingerprint"]),
                reason=str(entry["reason"]),
            )
        )
    return Baseline(entries=tuple(entries))


def write_baseline(
    path: Path,
    findings: Sequence[Finding],
    reason: str = "grandfathered by --update-baseline",
) -> Baseline:
    """Serialize ``findings`` as the new baseline at ``path``."""
    entries = tuple(
        BaselineEntry(
            rule=finding.rule_id,
            path=finding.path,
            fingerprint=finding.fingerprint(),
            reason=reason,
        )
        for finding in findings
    )
    payload = {
        "version": FORMAT_VERSION,
        "entries": [entry.to_dict() for entry in entries],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return Baseline(entries=entries)
