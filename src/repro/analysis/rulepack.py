"""The project rule pack: REP001–REP008.

Each rule mechanically enforces one invariant the platform's
byte-identical-recovery and canary-routing guarantees rest on; see
``DESIGN.md`` §9 for the invariant-by-invariant rationale. Rules are
pure AST checks — no imports of the linted code are executed — and
check name vocabularies against the committed constants modules
:mod:`repro.obs.names` and :mod:`repro.reliability.sites`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import ParsedModule, Rule
from repro.obs import names as _names
from repro.reliability import sites as _sites


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _first_str_arg(node: ast.Call) -> Optional[str]:
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


class _ImportTracker:
    """Per-module aliases of interesting modules (``np`` → numpy…)."""

    def __init__(self, *modules: str) -> None:
        self.modules = modules
        self.aliases: Dict[str, Set[str]] = {m: set() for m in modules}
        #: names imported *from* a module: {"numpy": {"random", ...}}
        self.members: Dict[str, Set[str]] = {m: set() for m in modules}

    def feed_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in self.aliases:
                self.aliases[root].add(alias.asname or root)

    def feed_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        root = node.module.split(".")[0]
        if root in self.members:
            for alias in node.names:
                self.members[root].add(alias.asname or alias.name)


class RawRandomRule(Rule):
    """REP001 — all randomness flows through ``repro.utils.rng``.

    Flags imports/uses of the stdlib ``random`` module and any call
    through ``numpy.random`` (including ``default_rng`` and the legacy
    ``RandomState``) outside ``utils/rng.py``. Seeded
    :class:`numpy.random.Generator` objects obtained from
    ``ensure_rng``/``spawn_rng`` are the only sanctioned source of
    randomness — an unseeded or module-global stream breaks replay.
    """

    rule_id = "REP001"
    name = "raw-rng"
    description = (
        "randomness must come from repro.utils.rng, not the random "
        "module or numpy.random"
    )

    def begin_module(self, module: ParsedModule, report) -> None:
        self._imports = _ImportTracker("numpy", "random")

    def visit_Import(self, node: ast.Import, module, report) -> None:
        self._imports.feed_Import(node)
        for alias in node.names:
            if alias.name.split(".")[0] == "random":
                report(
                    node,
                    "import of the stdlib 'random' module; use "
                    "repro.utils.rng.ensure_rng instead",
                )
            elif alias.name.startswith("numpy.random"):
                report(
                    node,
                    "import of numpy.random; use "
                    "repro.utils.rng.ensure_rng instead",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom, module, report) -> None:
        self._imports.feed_ImportFrom(node)
        if node.module is None:
            return
        root = node.module.split(".")[0]
        if root == "random":
            report(
                node,
                "import from the stdlib 'random' module; use "
                "repro.utils.rng.ensure_rng instead",
            )
        elif node.module.startswith("numpy.random") or (
            root == "numpy"
            and any(alias.name == "random" for alias in node.names)
        ):
            report(
                node,
                "import from numpy.random; use "
                "repro.utils.rng.ensure_rng instead",
            )

    def visit_Call(self, node: ast.Call, module, report) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        numpy_aliases = self._imports.aliases["numpy"] | {"numpy"}
        random_aliases = self._imports.aliases["random"]
        # np.random.<fn>(...) — any call one level below numpy.random.
        if (
            len(parts) >= 3
            and parts[0] in numpy_aliases
            and parts[1] == "random"
        ):
            report(
                node,
                f"call through numpy.random ({'.'.join(parts[1:])}); "
                "use repro.utils.rng.ensure_rng / spawn_rng",
            )
        # random.<fn>(...) via the stdlib module object.
        elif len(parts) >= 2 and parts[0] in random_aliases:
            report(
                node,
                f"call through the stdlib random module ({name}); "
                "use repro.utils.rng.ensure_rng",
            )


class WallClockRule(Rule):
    """REP002 — no wall-clock reads in virtual-clock paths.

    The cost model, execution engine, and scheduler order every
    decision by the engine's deterministic virtual cost clock; a
    ``time.time()``/``datetime.now()`` read there makes scheduling
    (and therefore recovery replay) machine-dependent. The dual-clock
    tracer in ``obs/`` is the one sanctioned wall-time consumer and
    lives outside this rule's configured paths.
    """

    rule_id = "REP002"
    name = "wall-clock"
    description = (
        "cost-model/engine/scheduler code must use the virtual cost "
        "clock, never wall-clock reads"
    )

    _TIME_FNS = (
        "time",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "time_ns",
    )
    _DATETIME_FNS = ("now", "utcnow", "today")

    def begin_module(self, module: ParsedModule, report) -> None:
        self._imports = _ImportTracker("time", "datetime")

    def visit_Import(self, node: ast.Import, module, report) -> None:
        self._imports.feed_Import(node)

    def visit_ImportFrom(self, node: ast.ImportFrom, module, report) -> None:
        self._imports.feed_ImportFrom(node)

    def visit_Call(self, node: ast.Call, module, report) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        time_aliases = self._imports.aliases["time"] | {"time"}
        dt_aliases = self._imports.aliases["datetime"] | {"datetime"}
        dt_members = self._imports.members["datetime"]
        if (
            len(parts) == 2
            and parts[0] in time_aliases
            and parts[1] in self._TIME_FNS
        ):
            report(
                node,
                f"wall-clock read {name}(); use the engine's virtual "
                "cost clock (engine.total_cost())",
            )
        elif (
            len(parts) >= 2
            and parts[-1] in self._DATETIME_FNS
            and (parts[0] in dt_aliases or parts[0] in dt_members)
        ):
            report(
                node,
                f"wall-clock read {name}(); use the engine's virtual "
                "cost clock (engine.total_cost())",
            )
        elif len(parts) == 1 and parts[0] in self._imports.members["time"]:
            if parts[0] in self._TIME_FNS:
                report(
                    node,
                    f"wall-clock read {name}(); use the engine's "
                    "virtual cost clock (engine.total_cost())",
                )


def _methods_of(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    table: Dict[str, ast.FunctionDef] = {}
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table[item.name] = item
    return table


class StateDictPairRule(Rule):
    """REP003 — ``state_dict`` and ``load_state_dict`` come in pairs.

    A class defining only one half of the persistence protocol either
    cannot be checkpointed or cannot be restored; crash recovery
    requires both directions on every stateful component.
    """

    rule_id = "REP003"
    name = "state-dict-pair"
    description = (
        "a class defining state_dict must define load_state_dict "
        "(and vice versa)"
    )

    def visit_ClassDef(self, node: ast.ClassDef, module, report) -> None:
        methods = _methods_of(node)
        has_save = "state_dict" in methods
        has_load = "load_state_dict" in methods
        if has_save and not has_load:
            report(
                methods["state_dict"],
                f"class {node.name} defines state_dict without "
                "load_state_dict; checkpoints of it cannot be restored",
            )
        elif has_load and not has_save:
            report(
                methods["load_state_dict"],
                f"class {node.name} defines load_state_dict without "
                "state_dict; it cannot be captured into a checkpoint",
            )


class StateDictKeysRule(Rule):
    """REP004 — saved and restored state keys must agree.

    When ``state_dict`` returns a literal dict and ``load_state_dict``
    reads literal keys off its state argument, the two key sets are
    statically comparable; a key saved but never restored (or read but
    never saved) is a silent state-loss bug that only shows up as a
    divergent resumed run. Extraction is conservative: any non-literal
    construction on either side skips the class.
    """

    rule_id = "REP004"
    name = "state-dict-keys"
    description = (
        "keys written by state_dict and read by load_state_dict must "
        "match when both are statically extractable"
    )

    @staticmethod
    def _saved_keys(fn: ast.FunctionDef) -> Optional[Set[str]]:
        """Keys of returned dict literals; None when inexact."""
        keys: Set[str] = set()
        saw_return = False
        for sub in ast.walk(fn):
            if not isinstance(sub, ast.Return) or sub.value is None:
                continue
            saw_return = True
            if not isinstance(sub.value, ast.Dict):
                return None
            for key in sub.value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
                else:  # **spread or computed key — give up
                    return None
        return keys if saw_return else None

    @staticmethod
    def _read_keys(fn: ast.FunctionDef) -> Optional[Set[str]]:
        """Keys read off the state parameter; None when inexact."""
        args = fn.args.posonlyargs + fn.args.args
        names = [a.arg for a in args if a.arg not in ("self", "cls")]
        if not names:
            return None
        param = names[0]
        keys: Set[str] = set()
        for sub in ast.walk(fn):
            if (
                isinstance(sub, ast.Subscript)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == param
            ):
                index = sub.slice
                if isinstance(index, ast.Constant) and isinstance(
                    index.value, str
                ):
                    keys.add(index.value)
                else:
                    return None
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "get"
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == param
            ):
                literal = _first_str_arg(sub)
                if literal is None:
                    return None
                keys.add(literal)
        return keys or None

    def visit_ClassDef(self, node: ast.ClassDef, module, report) -> None:
        methods = _methods_of(node)
        save = methods.get("state_dict")
        load = methods.get("load_state_dict")
        if save is None or load is None:
            return
        saved = self._saved_keys(save)
        read = self._read_keys(load)
        if saved is None or read is None:
            return
        for key in sorted(saved - read):
            report(
                save,
                f"class {node.name}: state_dict saves key {key!r} "
                "that load_state_dict never reads",
            )
        for key in sorted(read - saved):
            report(
                load,
                f"class {node.name}: load_state_dict reads key "
                f"{key!r} that state_dict never saves",
            )


class TelemetryNameRule(Rule):
    """REP005 — telemetry names come from the registry vocabulary.

    A literal name reaching ``counter``/``gauge``/``histogram``/
    ``point``/``span`` must match the ``subsystem.event`` dotted
    convention *and* be declared in :mod:`repro.obs.names` (exactly,
    or under a declared prefix family). f-strings are checked by
    their literal prefix; fully dynamic names resolve through the
    constants module and are out of static reach.
    """

    rule_id = "REP005"
    name = "telemetry-name"
    description = (
        "telemetry name literals must follow subsystem.event and be "
        "declared in repro.obs.names"
    )

    _METHODS = ("counter", "gauge", "histogram", "observe", "point", "span")

    def visit_Call(self, node: ast.Call, module, report) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._METHODS
            and node.args
        ):
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            name = first.value
            if not _names.NAME_PATTERN.match(name):
                report(
                    first,
                    f"telemetry name {name!r} does not follow the "
                    "subsystem.event dotted convention",
                )
            elif not _names.is_known_name(name):
                report(
                    first,
                    f"telemetry name {name!r} is not declared in "
                    "repro.obs.names; add a constant there",
                )
        elif isinstance(first, ast.JoinedStr) and first.values:
            head = first.values[0]
            if isinstance(head, ast.Constant) and isinstance(
                head.value, str
            ):
                prefix = head.value
                if not any(
                    prefix.startswith(known) or known.startswith(prefix)
                    for known in _names.KNOWN_PREFIXES
                ):
                    report(
                        first,
                        f"telemetry name prefix {prefix!r} is not a "
                        "declared prefix family in repro.obs.names",
                    )


class FaultSiteRule(Rule):
    """REP006 — fault-site strings come from the site vocabulary.

    A typo'd site string passed to ``fire``/``corrupt``/``hits``/
    ``FaultSpec``/``FaultPlan.crash_at`` silently never matches the
    instrumented code path, so the planned fault never fires and the
    experiment measures nothing.
    """

    rule_id = "REP006"
    name = "fault-site"
    description = (
        "fault-injection site literals must be declared in "
        "repro.reliability.sites"
    )

    _METHODS = ("fire", "corrupt", "hits", "crash_at")
    _CTORS = ("FaultSpec",)

    def visit_Call(self, node: ast.Call, module, report) -> None:
        site: Optional[str] = None
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in self._METHODS:
                site = _first_str_arg(node)
            elif node.func.attr in self._CTORS:
                site = _first_str_arg(node)
        elif isinstance(node.func, ast.Name):
            if node.func.id in self._CTORS:
                site = _first_str_arg(node)
        if site is None:
            return
        if not _sites.is_known_site(site):
            known = ", ".join(_sites.KNOWN_SITES)
            report(
                node.args[0],
                f"unknown fault-injection site {site!r}; known sites "
                f"are {known} (declared in repro.reliability.sites)",
            )


class BareExceptRule(Rule):
    """REP007 — no bare or blind exception handlers in critical paths.

    In ``core/``/``reliability/``/``serving/`` a swallowed exception
    turns a crash the recovery machinery is designed to survive into
    silent state corruption. ``except:`` is always flagged;
    ``except Exception``/``BaseException`` is allowed only when the
    handler re-raises.
    """

    rule_id = "REP007"
    name = "bare-except"
    description = (
        "core/reliability/serving code must not swallow exceptions "
        "with bare or blind except handlers"
    )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(sub, ast.Raise) for sub in ast.walk(handler)
        )

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, module, report
    ) -> None:
        if node.type is None:
            report(node, "bare 'except:' swallows SystemExit and "
                          "KeyboardInterrupt; catch a specific error")
            return
        name = dotted_name(node.type)
        if name in ("Exception", "BaseException") and not self._reraises(
            node
        ):
            report(
                node,
                f"blind 'except {name}' without re-raise; catch the "
                "specific errors this block can actually handle",
            )


class MutableDefaultRule(Rule):
    """REP008 — no mutable defaults or float ``==`` in numeric code.

    A mutable default argument aliases state across calls (and across
    checkpoint/restore cycles); a float equality comparison against a
    non-trivial constant encodes a tolerance of exactly one ULP.
    Comparisons against the exact sentinels ``0.0``/``1.0``/``-1.0``
    (skip-zero fast paths, probability bounds) are allowed.
    """

    rule_id = "REP008"
    name = "mutable-default"
    description = (
        "ml/execution code must not use mutable default arguments or "
        "float equality comparisons"
    )

    _EXACT_SENTINELS = (0.0, 1.0, -1.0)
    _MUTABLE_CTORS = ("list", "dict", "set", "bytearray", "defaultdict")

    def _check_defaults(self, node, module, report) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                report(
                    default,
                    f"mutable default argument in {node.name}(); use "
                    "None and construct inside the body",
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self._MUTABLE_CTORS
            ):
                report(
                    default,
                    f"mutable default argument "
                    f"({default.func.id}()) in {node.name}(); use "
                    "None and construct inside the body",
                )

    def visit_FunctionDef(self, node, module, report) -> None:
        self._check_defaults(node, module, report)

    def visit_AsyncFunctionDef(self, node, module, report) -> None:
        self._check_defaults(node, module, report)

    def visit_Compare(self, node: ast.Compare, module, report) -> None:
        operands = [node.left] + list(node.comparators)
        ops = node.ops
        for op, left, right in zip(ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    and side.value not in self._EXACT_SENTINELS
                ):
                    report(
                        side,
                        f"float equality against {side.value!r}; use "
                        "math.isclose or an explicit tolerance",
                    )


#: Every shipped rule, in id order.
ALL_RULES: Tuple[Rule, ...] = (
    RawRandomRule(),
    WallClockRule(),
    StateDictPairRule(),
    StateDictKeysRule(),
    TelemetryNameRule(),
    FaultSiteRule(),
    BareExceptRule(),
    MutableDefaultRule(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}


def rules_for(ids: Sequence[str]) -> Tuple[Rule, ...]:
    """Resolve rule ids to instances, preserving id order."""
    from repro.analysis.base import ConfigError

    unknown = [i for i in ids if i not in RULES_BY_ID]
    if unknown:
        raise ConfigError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known rules are {', '.join(sorted(RULES_BY_ID))}"
        )
    wanted = set(ids)
    return tuple(r for r in ALL_RULES if r.rule_id in wanted)
