"""Text and JSON renderings of a :class:`LintResult`."""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult
from repro.analysis.progrules import PROGRAM_RULES
from repro.analysis.rulepack import ALL_RULES


def format_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    summary = (
        f"{len(result.findings)} finding(s) in "
        f"{result.files_scanned} file(s)"
    )
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} noqa-suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Machine-readable report (what the CI job consumes)."""
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "suppressed": len(result.suppressed),
        "files_scanned": result.files_scanned,
        "program_ran": result.program_ran,
        "clean": result.clean,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_rules() -> str:
    """The ``repro lint --list-rules`` table: both rule kinds."""
    lines = ["per-file rules:"]
    for rule in ALL_RULES:
        lines.append(f"{rule.rule_id}  {rule.name:<18} {rule.description}")
    lines.append("whole-program rules:")
    for rule in PROGRAM_RULES:
        lines.append(f"{rule.rule_id}  {rule.name:<18} {rule.description}")
    return "\n".join(lines)
