"""The lint driver: walk files, run rules, apply noqa and baseline.

:func:`run_lint` is the one entry point the CLI, ``make lint``, CI,
and the test suite all share. A file that fails to parse surfaces as
a ``REP000`` finding (broken source can't certify any invariant);
configuration problems raise
:class:`~repro.analysis.base.ConfigError` instead of producing a
result, so a misconfigured run can never masquerade as a clean one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.base import ConfigError, Finding, ParsedModule, walk_rules
from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.config import LintConfig, default_config
from repro.analysis.rulepack import rules_for

#: Pseudo-rule for unparseable source files.
PARSE_ERROR_RULE = "REP000"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        """0 = clean, 1 = findings (config errors raise instead)."""
        return 0 if self.clean else 1


def iter_source_files(
    root: Path, config: LintConfig, paths: Optional[Sequence[str]] = None
) -> List[Tuple[Path, str]]:
    """(absolute path, repo-relative posix path) pairs to lint.

    ``paths`` (files or directories, relative to ``root`` or
    absolute) narrows the scan; by default the configured roots are
    walked. Missing explicit paths raise :class:`ConfigError`.
    """
    targets: List[Path] = []
    if paths:
        for entry in paths:
            candidate = Path(entry)
            if not candidate.is_absolute():
                candidate = root / candidate
            if not candidate.exists():
                raise ConfigError(f"lint target does not exist: {entry}")
            targets.append(candidate)
    else:
        for name in config.roots:
            candidate = root / name
            if candidate.exists():
                targets.append(candidate)
        if not targets:
            raise ConfigError(
                f"none of the configured roots exist under {root}: "
                f"{', '.join(config.roots)}"
            )
    seen = set()
    pairs: List[Tuple[Path, str]] = []
    for target in targets:
        files = (
            sorted(target.rglob("*.py")) if target.is_dir() else [target]
        )
        for file in files:
            try:
                relpath = file.resolve().relative_to(root.resolve())
                rel = relpath.as_posix()
            except ValueError:
                rel = file.as_posix()
            if rel in seen or config.is_excluded(rel):
                continue
            seen.add(rel)
            pairs.append((file, rel))
    return pairs


def lint_file(
    path: Path, relpath: str, config: LintConfig
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file: returns (findings, suppressed)."""
    rule_ids = config.rules_for_path(relpath)
    if not rule_ids:
        return [], []
    try:
        module = ParsedModule.parse(path, relpath)
    except SyntaxError as error:
        finding = Finding(
            rule_id=PARSE_ERROR_RULE,
            path=relpath,
            line=error.lineno or 1,
            col=(error.offset or 1) - 1,
            message=f"file does not parse: {error.msg}",
        )
        return [finding], []
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for reporter in walk_rules(module, rules_for(rule_ids)):
        findings.extend(reporter.findings)
        suppressed.extend(reporter.suppressed)
    return findings, suppressed


def run_lint(
    root: Path,
    config: Optional[LintConfig] = None,
    paths: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint the tree under ``root`` with ``config``.

    ``baseline=None`` loads the configured baseline file (missing =
    empty); pass an explicit :class:`Baseline` to override.
    """
    config = config if config is not None else default_config()
    if baseline is None:
        if config.baseline is not None:
            baseline_path = Path(config.baseline)
            if not baseline_path.is_absolute():
                baseline_path = root / baseline_path
            baseline = load_baseline(baseline_path)
        else:
            baseline = Baseline()
    result = LintResult()
    for path, relpath in iter_source_files(root, config, paths):
        findings, suppressed = lint_file(path, relpath, config)
        result.files_scanned += 1
        result.suppressed.extend(suppressed)
        for finding in findings:
            if baseline.matches(finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return result
