"""The lint driver: walk files, run rules, apply noqa and baseline.

:func:`run_lint` is the one entry point the CLI, ``make lint``, CI,
and the test suite all share. It runs two passes:

1. the **per-file pass** — every target file is parsed once and the
   per-file rules (REP001–REP008) walk it in a single shared AST
   traversal;
2. the **program pass** — the whole-program model
   (:mod:`repro.analysis.program`) is built from the *full* configured
   tree (even when explicit paths narrow the per-file pass, cross-file
   reasoning needs the rest of the program) and the program rules
   (REP009–REP014, :mod:`repro.analysis.progrules`) run over it.
   Program findings are anchored at definition sites, so they flow
   through the same noqa/baseline/reporting machinery; when the scan
   is narrowed, only findings anchored in the targeted files are
   reported.

A file that fails to parse surfaces as a ``REP000`` finding (broken
source can't certify any invariant); configuration problems raise
:class:`~repro.analysis.base.ConfigError` instead of producing a
result, so a misconfigured run can never masquerade as a clean one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.base import ConfigError, Finding, ParsedModule, walk_rules
from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.config import LintConfig, default_config
from repro.analysis.program import ProgramModel
from repro.analysis.progrules import (
    PROGRAM_RULES_BY_ID,
    ProgramReporter,
    program_rules_for,
)
from repro.analysis.rulepack import rules_for

#: Pseudo-rule for unparseable source files.
PARSE_ERROR_RULE = "REP000"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: True when the whole-program pass ran (``--no-program`` skips it).
    program_ran: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        """0 = clean, 1 = findings (config errors raise instead)."""
        return 0 if self.clean else 1


def iter_source_files(
    root: Path, config: LintConfig, paths: Optional[Sequence[str]] = None
) -> List[Tuple[Path, str]]:
    """(absolute path, repo-relative posix path) pairs to lint.

    ``paths`` (files or directories, relative to ``root`` or
    absolute) narrows the scan; by default the configured roots are
    walked. Missing explicit paths raise :class:`ConfigError`.
    """
    targets: List[Path] = []
    if paths:
        for entry in paths:
            candidate = Path(entry)
            if not candidate.is_absolute():
                candidate = root / candidate
            if not candidate.exists():
                raise ConfigError(f"lint target does not exist: {entry}")
            targets.append(candidate)
    else:
        for name in config.roots:
            candidate = root / name
            if candidate.exists():
                targets.append(candidate)
        if not targets:
            raise ConfigError(
                f"none of the configured roots exist under {root}: "
                f"{', '.join(config.roots)}"
            )
    seen = set()
    pairs: List[Tuple[Path, str]] = []
    for target in targets:
        files = (
            sorted(target.rglob("*.py")) if target.is_dir() else [target]
        )
        for file in files:
            try:
                relpath = file.resolve().relative_to(root.resolve())
                rel = relpath.as_posix()
            except ValueError:
                rel = file.as_posix()
            if rel in seen or config.is_excluded(rel):
                continue
            seen.add(rel)
            pairs.append((file, rel))
    return pairs


def _parse_error_finding(relpath: str, error: SyntaxError) -> Finding:
    return Finding(
        rule_id=PARSE_ERROR_RULE,
        path=relpath,
        line=error.lineno or 1,
        col=(error.offset or 1) - 1,
        message=f"file does not parse: {error.msg}",
    )


def lint_module(
    module: ParsedModule, config: LintConfig
) -> Tuple[List[Finding], List[Finding]]:
    """Run the per-file rules over one parsed module."""
    rule_ids = tuple(
        rule_id
        for rule_id in config.rules_for_path(module.relpath)
        if rule_id not in PROGRAM_RULES_BY_ID
    )
    if not rule_ids:
        return [], []
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for reporter in walk_rules(module, rules_for(rule_ids)):
        findings.extend(reporter.findings)
        suppressed.extend(reporter.suppressed)
    return findings, suppressed


def lint_file(
    path: Path, relpath: str, config: LintConfig
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file: returns (findings, suppressed)."""
    try:
        module = ParsedModule.parse(path, relpath)
    except SyntaxError as error:
        return [_parse_error_finding(relpath, error)], []
    return lint_module(module, config)


def run_program_rules(
    model: ProgramModel, config: LintConfig
) -> Tuple[List[Finding], List[Finding]]:
    """Run every configured program rule over ``model``.

    Returns (findings, suppressed); the caller applies the baseline
    and any target-path narrowing.
    """
    active = set(config.select)
    for policy in config.per_path:
        active.update(policy.enable)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in program_rules_for(sorted(active)):
        reporter = ProgramReporter(rule.rule_id, config)
        rule.check(model, reporter)
        findings.extend(reporter.findings)
        suppressed.extend(reporter.suppressed)
    return findings, suppressed


def run_lint(
    root: Path,
    config: Optional[LintConfig] = None,
    paths: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    program: bool = True,
) -> LintResult:
    """Lint the tree under ``root`` with ``config``.

    ``baseline=None`` loads the configured baseline file (missing =
    empty); pass an explicit :class:`Baseline` to override.
    ``program=False`` skips the whole-program pass (``--no-program``).
    """
    config = config if config is not None else default_config()
    if baseline is None:
        if config.baseline is not None:
            baseline_path = Path(config.baseline)
            if not baseline_path.is_absolute():
                baseline_path = root / baseline_path
            baseline = load_baseline(baseline_path)
        else:
            baseline = Baseline()
    result = LintResult()
    target_pairs = iter_source_files(root, config, paths)
    parsed: Dict[str, ParsedModule] = {}
    for path, relpath in target_pairs:
        result.files_scanned += 1
        try:
            module = ParsedModule.parse(path, relpath)
        except SyntaxError as error:
            _classify(result, baseline, [_parse_error_finding(relpath, error)])
            continue
        parsed[relpath] = module
        findings, suppressed = lint_module(module, config)
        result.suppressed.extend(suppressed)
        _classify(result, baseline, findings)
    if program:
        target_set = {relpath for _, relpath in target_pairs}
        model_modules = list(parsed.values())
        if paths:
            # Explicit paths narrow *reporting*, not the model: the
            # program rules still reason over the whole configured
            # tree (falling back to the targets when no configured
            # root exists, e.g. single-snippet test runs).
            try:
                full_pairs = iter_source_files(root, config, None)
            except ConfigError:
                full_pairs = target_pairs
            model_modules = list(parsed.values())
            for path, relpath in full_pairs:
                if relpath in parsed:
                    continue
                try:
                    model_modules.append(ParsedModule.parse(path, relpath))
                except SyntaxError:
                    continue  # targeted files already reported REP000
        model = ProgramModel.build(model_modules)
        findings, suppressed = run_program_rules(model, config)
        result.suppressed.extend(
            f for f in suppressed if f.path in target_set
        )
        _classify(
            result,
            baseline,
            [f for f in findings if f.path in target_set],
        )
        result.program_ran = True
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return result


def _classify(
    result: LintResult, baseline: Baseline, findings: Sequence[Finding]
) -> None:
    for finding in findings:
        if baseline.matches(finding):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
