"""Text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.core.deployment.base import DeploymentResult
from repro.exceptions import ValidationError


def downsample(series: Sequence[float], points: int = 20) -> List[float]:
    """Evenly thin a series to at most ``points`` values (last kept).

    Used to print figure curves as rows without drowning the output.
    """
    if points < 2:
        raise ValidationError(f"points must be >= 2, got {points}")
    values = list(series)
    if len(values) <= points:
        return values
    indices = np.linspace(0, len(values) - 1, points).round().astype(int)
    return [values[i] for i in indices]


def summarize_results(
    results: Mapping[str, DeploymentResult],
) -> List[Dict[str, float]]:
    """One summary row per deployment approach.

    Rows carry the quantities the paper compares: final and average
    cumulative prequential error, total deployment cost, and the key
    event counters.
    """
    rows = []
    for name, result in results.items():
        rows.append(
            {
                "approach": name,
                "final_error": result.final_error,
                "average_error": result.average_error,
                "total_cost": result.total_cost,
                "chunks": result.chunks_processed,
                **{
                    f"count_{key}": value
                    for key, value in sorted(result.counters.items())
                },
            }
        )
    return rows


def format_comparison_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render summary rows as an aligned text table."""
    if not rows:
        raise ValidationError("no rows to format")
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(line[i]) for line in rendered)
        for i in range(len(columns))
    ]
    lines = []
    for line_index, cells in enumerate(rendered):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
        )
        if line_index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(
    name: str,
    series: Sequence[float],
    points: int = 12,
    float_format: str = "{:.4f}",
) -> str:
    """Render a figure curve as one labelled row of sampled values."""
    sampled = downsample(series, points)
    values = " ".join(float_format.format(v) for v in sampled)
    return f"{name:<14} {values}"
