"""Result reporting utilities for experiments and benchmarks."""

from repro.evaluation.report import (
    downsample,
    format_comparison_table,
    format_series,
    summarize_results,
)

__all__ = [
    "downsample",
    "summarize_results",
    "format_comparison_table",
    "format_series",
]
