"""Multi-seed replication of deployment experiments.

Single-run comparisons (one seed) are what the paper reports, but the
quality differences between approaches are fractions of a percent —
well inside run-to-run noise at reproduction scale. This harness
repeats a scenario-runner over several seeds and aggregates
mean ± std for the headline quantities, so claims like "continuous
beats online" can be checked as tendencies rather than coin flips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

import numpy as np

from repro.core.deployment.base import DeploymentResult
from repro.exceptions import ValidationError
from repro.experiments.common import Scenario

#: Builds a fresh scenario for one seed.
ScenarioBuilder = Callable[[int], Scenario]
#: Runs one deployment on a scenario.
Runner = Callable[[Scenario], DeploymentResult]


@dataclass(frozen=True)
class Aggregate:
    """Mean ± std of one scalar across replicated runs."""

    mean: float
    std: float
    values: tuple

    @staticmethod
    def of(values: Sequence[float]) -> "Aggregate":
        array = np.asarray(list(values), dtype=np.float64)
        if array.size == 0:
            raise ValidationError("cannot aggregate zero values")
        return Aggregate(
            mean=float(array.mean()),
            std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
            values=tuple(float(v) for v in array),
        )

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f}"


@dataclass
class ReplicatedResult:
    """Aggregates over one approach's replicated runs."""

    approach: str
    seeds: List[int]
    final_error: Aggregate = None
    average_error: Aggregate = None
    total_cost: Aggregate = None
    results: List[DeploymentResult] = field(default_factory=list)


def replicate(
    build_scenario: ScenarioBuilder,
    runners: Mapping[str, Runner],
    seeds: Sequence[int],
) -> Dict[str, ReplicatedResult]:
    """Run every runner on a fresh scenario per seed and aggregate.

    Parameters
    ----------
    build_scenario:
        ``seed -> Scenario`` factory; each seed gets a fresh data
        stream and sampling randomness.
    runners:
        Named deployment runners (e.g. the Experiment-1 trio).
    seeds:
        Seeds to replicate over (at least one).
    """
    seeds = list(seeds)
    if not seeds:
        raise ValidationError("replicate needs at least one seed")
    if not runners:
        raise ValidationError("replicate needs at least one runner")
    per_runner: Dict[str, List[DeploymentResult]] = {
        name: [] for name in runners
    }
    for seed in seeds:
        scenario = build_scenario(seed)
        for name, runner in runners.items():
            per_runner[name].append(runner(scenario))
    aggregated: Dict[str, ReplicatedResult] = {}
    for name, results in per_runner.items():
        aggregated[name] = ReplicatedResult(
            approach=name,
            seeds=seeds,
            final_error=Aggregate.of(
                [r.final_error for r in results]
            ),
            average_error=Aggregate.of(
                [r.average_error for r in results]
            ),
            total_cost=Aggregate.of(
                [r.total_cost for r in results]
            ),
            results=results,
        )
    return aggregated


def win_rate(
    replicated: Mapping[str, ReplicatedResult],
    challenger: str,
    incumbent: str,
) -> float:
    """Fraction of seeds where ``challenger`` had lower average error.

    A paired per-seed comparison — far more sensitive than comparing
    the two means when the streams are shared across approaches.
    """
    left = replicated[challenger]
    right = replicated[incumbent]
    if left.seeds != right.seeds:
        raise ValidationError(
            "win_rate requires results replicated over the same seeds"
        )
    wins = sum(
        1
        for a, b in zip(
            left.average_error.values, right.average_error.values
        )
        if a < b
    )
    return wins / len(left.seeds)


def format_replicated(
    replicated: Mapping[str, ReplicatedResult],
) -> str:
    """Text table of mean ± std per approach."""
    lines = [
        f"{'approach':<12} {'avg error':>18} {'final error':>18} "
        f"{'total cost':>18}"
    ]
    for name, result in replicated.items():
        lines.append(
            f"{name:<12} {str(result.average_error):>18} "
            f"{str(result.final_error):>18} "
            f"{str(result.total_cost):>18}"
        )
    return "\n".join(lines)
