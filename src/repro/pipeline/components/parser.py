"""Input parsers.

The first component of each paper pipeline turns raw records into typed
columns. :class:`SvmLightParser` handles the URL dataset's svmlight-like
text lines (``label index:value index:value ...``); sparse rows come out
as ``{index: value}`` dictionaries in an object column, which the sparse
imputer/scaler/hasher downstream understand.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.data.table import Table
from repro.exceptions import PipelineError
from repro.pipeline.component import (
    Batch,
    ComponentKind,
    StatelessComponent,
)


class SvmLightParser(StatelessComponent):
    """Parse svmlight-format text lines into label + sparse features.

    Each line reads ``<label> <index>:<value> <index>:<value> ...``.
    Labels are parsed as floats (the URL task uses ±1); values may be
    ``nan`` for missing measurements (the imputer's job). Malformed
    lines raise :class:`~repro.exceptions.PipelineError` with the line
    content, because silently dropping training data would bias the
    model.

    Parameters
    ----------
    line_column:
        Input column holding the raw strings.
    label_column, features_column:
        Output column names.
    """

    kind = ComponentKind.DATA_TRANSFORMATION

    def __init__(
        self,
        line_column: str = "line",
        label_column: str = "label",
        features_column: str = "features",
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.line_column = line_column
        self.label_column = label_column
        self.features_column = features_column

    def transform(self, batch: Batch) -> Batch:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        lines = batch.column(self.line_column)
        labels = np.empty(len(lines), dtype=np.float64)
        features = np.empty(len(lines), dtype=object)
        for position, line in enumerate(lines):
            labels[position], features[position] = self._parse_line(
                str(line)
            )
        return (
            batch.without_columns([self.line_column])
            .with_column(self.label_column, labels)
            .with_column(self.features_column, features)
        )

    def _parse_line(self, line: str) -> tuple[float, Dict[int, float]]:
        parts = line.split()
        if not parts:
            raise PipelineError(f"{self.name}: empty input line")
        try:
            label = float(parts[0])
        except ValueError:
            raise PipelineError(
                f"{self.name}: bad label in line {line!r}"
            ) from None
        row: Dict[int, float] = {}
        for token in parts[1:]:
            index_text, separator, value_text = token.partition(":")
            if not separator:
                raise PipelineError(
                    f"{self.name}: bad token {token!r} in line {line!r}"
                )
            try:
                row[int(index_text)] = float(value_text)
            except ValueError:
                raise PipelineError(
                    f"{self.name}: bad token {token!r} in line {line!r}"
                ) from None
        return label, row
