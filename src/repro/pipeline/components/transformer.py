"""Elementwise column transformers.

Stateless one-to-one mappings (the "normalization"-style data
transformations of Table 1): apply a vectorised function to columns in
place. Common transforms (``log1p``, ``sqrt``, ``abs``, ``clip`` via
partials) ship as named factories so pipelines stay picklable.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import (
    Batch,
    ComponentKind,
    StatelessComponent,
)


class ColumnTransformer(StatelessComponent):
    """Apply a vectorised elementwise function to columns in place.

    Parameters
    ----------
    columns:
        Columns rewritten by the transform.
    function:
        Vectorised callable, array in / same-shape array out. Must be
        a module-level function (not a lambda) if the pipeline is to
        be persisted.
    """

    kind = ComponentKind.DATA_TRANSFORMATION

    def __init__(
        self,
        columns: Sequence[str],
        function: Callable[[np.ndarray], np.ndarray],
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if not columns:
            raise ValidationError(
                "ColumnTransformer needs at least one column"
            )
        self.columns = list(columns)
        self.function = function

    def transform(self, batch: Batch) -> Batch:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        result = batch
        for column in self.columns:
            values = np.asarray(batch.column(column), dtype=np.float64)
            transformed = np.asarray(self.function(values))
            if transformed.shape != values.shape:
                raise PipelineError(
                    f"{self.name}: function changed shape "
                    f"{values.shape} -> {transformed.shape}"
                )
            result = result.with_column(column, transformed)
        return result


def log1p_transformer(
    columns: Sequence[str], name: str = "log1p"
) -> ColumnTransformer:
    """``log(1 + x)`` — the Taxi target transform, as a component."""
    return ColumnTransformer(columns, np.log1p, name=name)


def sqrt_transformer(
    columns: Sequence[str], name: str = "sqrt"
) -> ColumnTransformer:
    """Elementwise square root (negatives become NaN, as in numpy)."""
    return ColumnTransformer(columns, np.sqrt, name=name)


def absolute_transformer(
    columns: Sequence[str], name: str = "abs"
) -> ColumnTransformer:
    """Elementwise absolute value."""
    return ColumnTransformer(columns, np.abs, name=name)
