"""Feature scalers with online statistics.

* :class:`StandardScaler` — dense ``Table`` columns, z-scoring with
  running mean/std (Welford); the paper's canonical stateful component.
* :class:`SparseStandardScaler` — ``{index: value}`` sparse rows;
  scales by per-index std *without centering* (centering would destroy
  sparsity, the property §3.2.1 relies on for O(p) storage).
* :class:`MinMaxScaler` — dense columns, scaling to [0, 1] via running
  extrema.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.table import Table
from repro.exceptions import NotFittedError, PipelineError, ValidationError
from repro.pipeline.component import Batch, ComponentKind, PipelineComponent
from repro.pipeline.statistics import (
    RunningMinMax,
    RunningMoments,
    SparseMoments,
)


class _ColumnwiseScaler(PipelineComponent):
    """Shared plumbing for dense column scalers."""

    kind = ComponentKind.DATA_TRANSFORMATION

    def __init__(
        self, columns: Sequence[str], name: str | None = None
    ) -> None:
        super().__init__(name)
        if not columns:
            raise ValidationError("scaler needs at least one column")
        self.columns = list(columns)

    def _stack(self, table: Table) -> np.ndarray:
        return np.column_stack(
            [
                np.asarray(table.column(c), dtype=np.float64)
                for c in self.columns
            ]
        )

    def _require_table(self, batch: Batch) -> Table:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        return batch

    def _write_back(self, table: Table, scaled: np.ndarray) -> Table:
        result = table
        for position, column in enumerate(self.columns):
            result = result.with_column(column, scaled[:, position])
        return result


class StandardScaler(_ColumnwiseScaler):
    """Z-score dense columns using running mean and std.

    ``transform`` before any data has been seen is an identity (the
    statistics are neutral), which lets a freshly deployed pipeline
    serve its very first chunk; statistics sharpen as updates arrive.

    Parameters
    ----------
    columns:
        Numeric columns to scale.
    with_mean, with_std:
        Independently toggle centering and scaling.
    """

    def __init__(
        self,
        columns: Sequence[str],
        with_mean: bool = True,
        with_std: bool = True,
        name: str | None = None,
    ) -> None:
        super().__init__(columns, name)
        if not (with_mean or with_std):
            raise ValidationError(
                "StandardScaler with neither mean nor std is an identity;"
                " remove it instead"
            )
        self.with_mean = with_mean
        self.with_std = with_std
        self._moments = RunningMoments(dim=len(self.columns))

    def update(self, batch: Batch) -> None:
        table = self._require_table(batch)
        self._moments.update(self._stack(table))

    def transform(self, batch: Batch) -> Batch:
        table = self._require_table(batch)
        values = self._stack(table)
        if self._moments.total_count:
            if self.with_mean:
                values = values - self._moments.mean()
            if self.with_std:
                std = self._moments.std()
                values = values / np.where(std > 0, std, 1.0)
        return self._write_back(table, values)

    def mean(self) -> np.ndarray:
        """Current running mean per scaled column."""
        return self._moments.mean()

    def std(self) -> np.ndarray:
        """Current running std per scaled column."""
        return self._moments.std()

    def reset(self) -> None:
        self._moments = RunningMoments(dim=len(self.columns))


class MinMaxScaler(_ColumnwiseScaler):
    """Scale dense columns to [0, 1] using running extrema.

    Values outside the seen range extrapolate beyond [0, 1]; constant
    columns map to 0.
    """

    def __init__(
        self, columns: Sequence[str], name: str | None = None
    ) -> None:
        super().__init__(columns, name)
        self._extrema = RunningMinMax(dim=len(self.columns))

    def update(self, batch: Batch) -> None:
        table = self._require_table(batch)
        self._extrema.update(self._stack(table))

    def transform(self, batch: Batch) -> Batch:
        table = self._require_table(batch)
        values = self._stack(table)
        if self._seen():
            low = self._extrema.minimum()
            span = self._extrema.span()
            safe_span = np.where(span > 0, span, 1.0)
            finite_low = np.where(np.isfinite(low), low, 0.0)
            values = (values - finite_low) / safe_span
        return self._write_back(table, values)

    def _seen(self) -> bool:
        try:
            self._extrema.minimum()
        except NotFittedError:
            return False
        return True

    def reset(self) -> None:
        self._extrema = RunningMinMax(dim=len(self.columns))


class SparseStandardScaler(PipelineComponent):
    """Scale sparse-dict rows by per-index running std (no centering).

    Indices with no statistics yet (or zero variance) pass through
    unscaled — scaling a brand-new feature by a guessed std would add
    noise, and the URL stream grows new indices over time.
    """

    kind = ComponentKind.DATA_TRANSFORMATION

    def __init__(
        self,
        features_column: str = "features",
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.features_column = features_column
        self._moments = SparseMoments()

    @property
    def num_indices_seen(self) -> int:
        return len(self._moments)

    def update(self, batch: Batch) -> None:
        table = self._require_table(batch)
        self._moments.update(table.column(self.features_column))

    def transform(self, batch: Batch) -> Batch:
        table = self._require_table(batch)
        rows = table.column(self.features_column)
        moments = self._moments
        scaled = np.empty(len(rows), dtype=object)
        for position, row in enumerate(rows):
            scaled[position] = {
                index: value / moments.std(index, default=1.0)
                for index, value in row.items()
            }
        return table.with_column(self.features_column, scaled)

    def std(self, index: int) -> float:
        """Running std for one feature index (1.0 when unseen)."""
        return self._moments.std(index, default=1.0)

    def reset(self) -> None:
        self._moments = SparseMoments()

    def _require_table(self, batch: Batch) -> Table:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        return batch
