"""Feature extraction components (Table 1: "feature extraction").

:class:`ColumnExtractor` is the workhorse: it applies a vectorised
function to one or more input columns and writes the result to a new
column. The Taxi pipeline is assembled almost entirely from these —
trip duration, haversine distance, bearing, hour of day, day of week.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import (
    Batch,
    ComponentKind,
    StatelessComponent,
)

#: Seconds in a day / hour — used by the calendar extractors, which
#: interpret their input as POSIX epoch seconds.
SECONDS_PER_DAY = 86_400
SECONDS_PER_HOUR = 3_600

#: 1970-01-01 was a Thursday; offset so weekday 0 == Monday.
_EPOCH_WEEKDAY = 3


class ColumnExtractor(StatelessComponent):
    """Compute a new column from existing columns.

    Parameters
    ----------
    inputs:
        Names of the input columns, passed to ``function`` as
        positional numpy arrays.
    function:
        Vectorised callable returning a 1-D array the same length as
        its inputs.
    output:
        Name of the produced column (replaces an existing one).
    """

    kind = ComponentKind.FEATURE_EXTRACTION

    def __init__(
        self,
        inputs: Sequence[str],
        function: Callable[..., np.ndarray],
        output: str,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if not inputs:
            raise ValidationError("extractor needs at least one input")
        self.inputs = list(inputs)
        self.function = function
        self.output = output

    def transform(self, batch: Batch) -> Batch:
        table = _require_table(batch, self.name)
        arrays = [
            np.asarray(table.column(column)) for column in self.inputs
        ]
        result = np.asarray(self.function(*arrays))
        if result.shape != (table.num_rows,):
            raise PipelineError(
                f"{self.name}: function returned shape {result.shape}, "
                f"expected ({table.num_rows},)"
            )
        return table.with_column(self.output, result)


class ColumnDifference(ColumnExtractor):
    """``output = minuend - subtrahend`` (e.g. trip duration in seconds).

    This is the Taxi "input parser" of the paper: it derives the actual
    trip duration from dropoff and pickup timestamps.
    """

    def __init__(
        self,
        minuend: str,
        subtrahend: str,
        output: str,
        name: str | None = None,
    ) -> None:
        super().__init__(
            inputs=[minuend, subtrahend],
            function=_difference,
            output=output,
            name=name,
        )


class HourOfDayExtractor(ColumnExtractor):
    """Hour of day (0–23) from an epoch-seconds column."""

    def __init__(
        self,
        timestamp_column: str,
        output: str = "hour_of_day",
        name: str | None = None,
    ) -> None:
        super().__init__(
            inputs=[timestamp_column],
            function=_hour_of_day,
            output=output,
            name=name,
        )


class DayOfWeekExtractor(ColumnExtractor):
    """Day of week (0=Monday … 6=Sunday) from epoch seconds."""

    def __init__(
        self,
        timestamp_column: str,
        output: str = "day_of_week",
        name: str | None = None,
    ) -> None:
        super().__init__(
            inputs=[timestamp_column],
            function=_day_of_week,
            output=output,
            name=name,
        )


def _difference(minuend: np.ndarray, subtrahend: np.ndarray) -> np.ndarray:
    """Elementwise difference (module-level: keeps pipelines picklable)."""
    return np.asarray(minuend, dtype=np.float64) - np.asarray(
        subtrahend, dtype=np.float64
    )


def _hour_of_day(epoch_seconds: np.ndarray) -> np.ndarray:
    seconds = np.asarray(epoch_seconds, dtype=np.float64)
    return np.floor(seconds % SECONDS_PER_DAY / SECONDS_PER_HOUR)


def _day_of_week(epoch_seconds: np.ndarray) -> np.ndarray:
    seconds = np.asarray(epoch_seconds, dtype=np.float64)
    days = np.floor(seconds / SECONDS_PER_DAY)
    return (days + _EPOCH_WEEKDAY) % 7


def _require_table(batch: Batch, name: str) -> Table:
    if not isinstance(batch, Table):
        raise PipelineError(
            f"{name} expects a Table, got {type(batch).__name__}"
        )
    return batch
