"""Feature selection components (Table 1: "feature selection").

:class:`VarianceThreshold` drops numeric columns whose running variance
falls below a threshold — the paper's example of a selection component
("variance thresholding"). Its statistic (per-column variance) is
incrementally computable, so it participates in online statistics
computation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import Batch, ComponentKind, PipelineComponent
from repro.pipeline.statistics import RunningMoments


class VarianceThreshold(PipelineComponent):
    """Drop columns whose running variance is below ``threshold``.

    Until any data is seen, all candidate columns are kept (an
    untrained selector must not guess). The selection is re-derived
    from the current statistics on every transform, so it adapts as
    the stream evolves — a column that flat-lines later in the stream
    will eventually be dropped.

    Parameters
    ----------
    columns:
        Candidate columns to watch (all must be numeric).
    threshold:
        Variance below which a column is removed. 0 drops only
        perfectly constant columns.
    """

    kind = ComponentKind.FEATURE_SELECTION

    def __init__(
        self,
        columns: Sequence[str],
        threshold: float = 0.0,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if not columns:
            raise ValidationError("selector needs at least one column")
        if threshold < 0:
            raise ValidationError(
                f"threshold must be >= 0, got {threshold}"
            )
        self.columns = list(columns)
        self.threshold = float(threshold)
        self._moments = RunningMoments(dim=len(self.columns))

    def update(self, batch: Batch) -> None:
        table = self._require_table(batch)
        stacked = np.column_stack(
            [
                np.asarray(table.column(c), dtype=np.float64)
                for c in self.columns
            ]
        )
        self._moments.update(stacked)

    def transform(self, batch: Batch) -> Batch:
        table = self._require_table(batch)
        doomed = self.dropped_columns()
        present = [c for c in doomed if c in table]
        return table.without_columns(present) if present else table

    def dropped_columns(self) -> List[str]:
        """Columns the current statistics say should be removed."""
        if self._moments.total_count == 0:
            return []
        variances = self._moments.variance()
        counts = self._moments.count
        return [
            column
            for column, variance, count in zip(
                self.columns, variances, counts
            )
            if count > 0 and variance <= self.threshold
        ]

    def kept_columns(self) -> List[str]:
        """Candidate columns that currently survive selection."""
        doomed = set(self.dropped_columns())
        return [c for c in self.columns if c not in doomed]

    def reset(self) -> None:
        self._moments = RunningMoments(dim=len(self.columns))

    def _require_table(self, batch: Batch) -> Table:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        return batch
