"""Concrete pipeline components.

The two paper pipelines are assembled from these parts:

* URL pipeline — :class:`SvmLightParser`, :class:`SparseMeanImputer`,
  :class:`SparseStandardScaler`, :class:`FeatureHasher` (+ linear SVM).
* Taxi pipeline — :class:`ColumnExtractor` instances (trip duration,
  haversine, bearing, hour, weekday), :class:`AnomalyFilter`,
  :class:`StandardScaler`, :class:`FeatureAssembler` (+ linear
  regression).
"""

from repro.pipeline.components.anomaly import AnomalyFilter, RangeFilter
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.extractor import (
    ColumnDifference,
    ColumnExtractor,
    DayOfWeekExtractor,
    HourOfDayExtractor,
)
from repro.pipeline.components.geo import (
    bearing,
    bearing_component,
    haversine_component,
    haversine_distance,
)
from repro.pipeline.components.hasher import FeatureHasher, hash_index
from repro.pipeline.components.imputer import (
    MissingValueImputer,
    SparseMeanImputer,
)
from repro.pipeline.components.onehot import OneHotEncoder
from repro.pipeline.components.parser import SvmLightParser
from repro.pipeline.components.polynomial import PolynomialInteractions
from repro.pipeline.components.scaler import (
    MinMaxScaler,
    SparseStandardScaler,
    StandardScaler,
)
from repro.pipeline.components.selector import VarianceThreshold
from repro.pipeline.components.transformer import (
    ColumnTransformer,
    absolute_transformer,
    log1p_transformer,
    sqrt_transformer,
)

__all__ = [
    "SvmLightParser",
    "MissingValueImputer",
    "SparseMeanImputer",
    "StandardScaler",
    "SparseStandardScaler",
    "MinMaxScaler",
    "FeatureHasher",
    "hash_index",
    "OneHotEncoder",
    "AnomalyFilter",
    "RangeFilter",
    "ColumnExtractor",
    "ColumnDifference",
    "HourOfDayExtractor",
    "DayOfWeekExtractor",
    "haversine_distance",
    "bearing",
    "haversine_component",
    "bearing_component",
    "VarianceThreshold",
    "FeatureAssembler",
    "PolynomialInteractions",
    "ColumnTransformer",
    "log1p_transformer",
    "sqrt_transformer",
    "absolute_transformer",
]
