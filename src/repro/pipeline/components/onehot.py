"""One-hot encoding with an incremental vocabulary.

§3.2.1 of the paper analyses one-hot encoding as the canonical
feature-extraction component whose dense output would be O(p²) in the
worst case, and whose sparse representation restores O(p). This
encoder therefore emits a :class:`scipy.sparse.csr_matrix`.

It is a terminal component: it combines pass-through numeric columns
with the encoded categorical columns into a single sparse
:class:`~repro.pipeline.component.Features` batch. The vocabulary (a
:class:`~repro.pipeline.statistics.CategoryTable` per column) grows
incrementally during the online pass; categories never seen get an
all-zero encoding, so serving never fails on novel values.

Note: the encoded width grows as new categories arrive, so downstream
models must either be sized for a known category budget
(``max_categories``) or tolerate re-dimensioning. With
``max_categories`` set, the width is fixed up front and overflow
categories share the zero vector.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import (
    Batch,
    ComponentKind,
    Features,
    PipelineComponent,
)
from repro.pipeline.statistics import CategoryTable


class OneHotEncoder(PipelineComponent):
    """Encode categorical columns one-hot into a sparse Features batch.

    Parameters
    ----------
    categorical_columns:
        Columns to encode (values may be any hashable scalars).
    label_column:
        Target column.
    numeric_columns:
        Columns passed through unchanged ahead of the encoded block.
    max_categories:
        Optional fixed per-column category budget. When set, output
        width is ``len(numeric) + len(categorical) * max_categories``
        and stays constant; otherwise the width tracks the vocabulary.
    """

    kind = ComponentKind.FEATURE_EXTRACTION

    def __init__(
        self,
        categorical_columns: Sequence[str],
        label_column: str,
        numeric_columns: Sequence[str] = (),
        max_categories: Optional[int] = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if not categorical_columns:
            raise ValidationError(
                "encoder needs at least one categorical column"
            )
        if max_categories is not None and max_categories < 1:
            raise ValidationError(
                f"max_categories must be >= 1, got {max_categories}"
            )
        self.categorical_columns = list(categorical_columns)
        self.numeric_columns = list(numeric_columns)
        self.label_column = label_column
        self.max_categories = max_categories
        self._tables: Dict[str, CategoryTable] = {
            column: CategoryTable() for column in self.categorical_columns
        }

    # ------------------------------------------------------------------
    def update(self, batch: Batch) -> None:
        table = self._require_table(batch)
        for column in self.categorical_columns:
            self._tables[column].update(table.column(column).tolist())

    def transform(self, batch: Batch) -> Features:
        table = self._require_table(batch)
        rows = table.num_rows
        widths = self._column_widths()
        offsets = self._column_offsets(widths)
        numeric_width = len(self.numeric_columns)
        total_width = numeric_width + sum(widths.values())

        data: List[float] = []
        col_indices: List[int] = []
        row_indices: List[int] = []

        for position, column in enumerate(self.numeric_columns):
            values = np.asarray(table.column(column), dtype=np.float64)
            nonzero = np.flatnonzero(values)
            data.extend(values[nonzero])
            col_indices.extend([position] * len(nonzero))
            row_indices.extend(nonzero.tolist())

        for column in self.categorical_columns:
            vocabulary = self._tables[column]
            encoded = vocabulary.encode(table.column(column).tolist())
            base = numeric_width + offsets[column]
            budget = widths[column]
            for row, slot in enumerate(encoded):
                if 0 <= slot < budget:
                    data.append(1.0)
                    col_indices.append(base + int(slot))
                    row_indices.append(row)

        matrix = sp.csr_matrix(
            (data, (row_indices, col_indices)),
            shape=(rows, total_width),
            dtype=np.float64,
        )
        labels = np.asarray(
            table.column(self.label_column), dtype=np.float64
        )
        return Features(matrix=matrix, labels=labels)

    # ------------------------------------------------------------------
    def vocabulary(self, column: str) -> List:
        """Known categories of ``column`` in first-seen order."""
        if column not in self._tables:
            raise PipelineError(
                f"{self.name}: {column!r} is not a categorical column"
            )
        return self._tables[column].categories()

    @property
    def output_width(self) -> int:
        """Current total output dimensionality."""
        widths = self._column_widths()
        return len(self.numeric_columns) + sum(widths.values())

    def _column_widths(self) -> Dict[str, int]:
        if self.max_categories is not None:
            return {
                column: self.max_categories
                for column in self.categorical_columns
            }
        return {
            column: len(self._tables[column])
            for column in self.categorical_columns
        }

    def _column_offsets(self, widths: Dict[str, int]) -> Dict[str, int]:
        offsets: Dict[str, int] = {}
        position = 0
        for column in self.categorical_columns:
            offsets[column] = position
            position += widths[column]
        return offsets

    def reset(self) -> None:
        self._tables = {
            column: CategoryTable() for column in self.categorical_columns
        }

    def _require_table(self, batch: Batch) -> Table:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        return batch
