"""Missing-value imputers.

Two variants, matching the two data shapes in the paper pipelines:

* :class:`MissingValueImputer` — dense numeric ``Table`` columns;
  fills ``NaN`` with the running mean (or a constant).
* :class:`SparseMeanImputer` — ``{index: value}`` sparse rows (URL
  pipeline); fills ``NaN`` entries with the per-index running mean.

Both learn their statistics incrementally during the online pass
(§3.1), so imputation during proactive training needs no extra scan.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import Batch, ComponentKind, PipelineComponent
from repro.pipeline.statistics import RunningMoments, SparseMoments


class MissingValueImputer(PipelineComponent):
    """Fill ``NaN`` in dense numeric columns.

    Parameters
    ----------
    columns:
        Columns to impute.
    strategy:
        ``"mean"`` — per-column running mean (stateful); or
        ``"constant"`` — always ``fill_value`` (stateless statistics-
        wise but kept a stateful component for interface uniformity).
    fill_value:
        Used by the constant strategy and as the fallback for a column
        whose every observation so far was ``NaN``.
    """

    kind = ComponentKind.DATA_TRANSFORMATION

    def __init__(
        self,
        columns: Sequence[str],
        strategy: str = "mean",
        fill_value: float = 0.0,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if strategy not in ("mean", "constant"):
            raise ValidationError(
                f"strategy must be 'mean' or 'constant', got {strategy!r}"
            )
        if not columns:
            raise ValidationError("imputer needs at least one column")
        self.columns = list(columns)
        self.strategy = strategy
        self.fill_value = float(fill_value)
        self._moments = RunningMoments(dim=len(self.columns))

    def update(self, batch: Batch) -> None:
        if self.strategy != "mean":
            return
        table = self._require_table(batch)
        stacked = np.column_stack(
            [
                np.asarray(table.column(c), dtype=np.float64)
                for c in self.columns
            ]
        )
        self._moments.update(stacked)

    def transform(self, batch: Batch) -> Batch:
        table = self._require_table(batch)
        fills = self._current_fills()
        result = table
        for column, fill in zip(self.columns, fills):
            values = np.asarray(table.column(column), dtype=np.float64)
            missing = np.isnan(values)
            if missing.any():
                values = np.where(missing, fill, values)
            result = result.with_column(column, values)
        return result

    def _current_fills(self) -> np.ndarray:
        if self.strategy == "constant":
            return np.full(len(self.columns), self.fill_value)
        if self._moments.total_count == 0:
            return np.full(len(self.columns), self.fill_value)
        counts = self._moments.count
        means = self._moments.mean()
        return np.where(counts > 0, means, self.fill_value)

    def reset(self) -> None:
        self._moments = RunningMoments(dim=len(self.columns))

    def _require_table(self, batch: Batch) -> Table:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        return batch


class SparseMeanImputer(PipelineComponent):
    """Fill ``NaN`` entries of sparse-dict feature rows with index means.

    Rows are ``{index: value}`` dictionaries (see
    :class:`~repro.pipeline.components.parser.SvmLightParser`). An index
    whose mean is still unknown falls back to ``fill_value``.
    """

    kind = ComponentKind.DATA_TRANSFORMATION

    def __init__(
        self,
        features_column: str = "features",
        fill_value: float = 0.0,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.features_column = features_column
        self.fill_value = float(fill_value)
        self._moments = SparseMoments()

    @property
    def num_indices_seen(self) -> int:
        """Number of distinct feature indices with statistics."""
        return len(self._moments)

    def update(self, batch: Batch) -> None:
        rows = self._rows(batch)
        self._moments.update(rows)

    def transform(self, batch: Batch) -> Batch:
        table = self._require_table(batch)
        rows = self._rows(table)
        moments = self._moments
        fill = self.fill_value
        imputed = np.empty(len(rows), dtype=object)
        for position, row in enumerate(rows):
            if any(v != v for v in row.values()):
                imputed[position] = {
                    index: (
                        value
                        if value == value
                        else moments.mean(index, default=fill)
                    )
                    for index, value in row.items()
                }
            else:
                imputed[position] = row
        return table.with_column(self.features_column, imputed)

    def reset(self) -> None:
        self._moments = SparseMoments()

    def _rows(self, batch: Batch) -> Sequence[Dict[int, float]]:
        table = self._require_table(batch)
        return table.column(self.features_column)

    def _require_table(self, batch: Batch) -> Table:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        return batch
