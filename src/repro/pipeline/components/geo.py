"""Geospatial feature math for the Taxi pipeline.

The paper's taxi feature extractor computes the haversine distance and
the bearing between pickup and dropoff coordinates (it cites the
standard formulas). The functions here are vectorised over numpy
arrays; the ``*_component`` factories wrap them as pipeline components.
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.components.extractor import ColumnExtractor

#: Mean Earth radius in kilometres (IUGG value).
EARTH_RADIUS_KM = 6371.0088


def haversine_distance(
    lat1: np.ndarray,
    lon1: np.ndarray,
    lat2: np.ndarray,
    lon2: np.ndarray,
) -> np.ndarray:
    """Great-circle distance in kilometres between coordinate arrays."""
    lat1, lon1, lat2, lon2 = (
        np.radians(np.asarray(a, dtype=np.float64))
        for a in (lat1, lon1, lat2, lon2)
    )
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    chord = (
        np.sin(dlat / 2.0) ** 2
        + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    )
    # Clip guards rounding noise for antipodal / identical points.
    angle = 2.0 * np.arcsin(np.sqrt(np.clip(chord, 0.0, 1.0)))
    return EARTH_RADIUS_KM * angle


def bearing(
    lat1: np.ndarray,
    lon1: np.ndarray,
    lat2: np.ndarray,
    lon2: np.ndarray,
) -> np.ndarray:
    """Initial compass bearing in degrees in [0, 360)."""
    lat1, lon1, lat2, lon2 = (
        np.radians(np.asarray(a, dtype=np.float64))
        for a in (lat1, lon1, lat2, lon2)
    )
    dlon = lon2 - lon1
    y = np.sin(dlon) * np.cos(lat2)
    x = np.cos(lat1) * np.sin(lat2) - np.sin(lat1) * np.cos(lat2) * np.cos(
        dlon
    )
    return np.degrees(np.arctan2(y, x)) % 360.0


def haversine_component(
    lat1: str,
    lon1: str,
    lat2: str,
    lon2: str,
    output: str = "distance_km",
    name: str = "haversine",
) -> ColumnExtractor:
    """Pipeline component computing haversine distance between columns."""
    return ColumnExtractor(
        inputs=[lat1, lon1, lat2, lon2],
        function=haversine_distance,
        output=output,
        name=name,
    )


def bearing_component(
    lat1: str,
    lon1: str,
    lat2: str,
    lon2: str,
    output: str = "bearing_deg",
    name: str = "bearing",
) -> ColumnExtractor:
    """Pipeline component computing the bearing between columns."""
    return ColumnExtractor(
        inputs=[lat1, lon1, lat2, lon2],
        function=bearing,
        output=output,
        name=name,
    )
