"""Feature hashing (the hashing trick).

Terminal component of the URL pipeline: maps sparse ``{index: value}``
rows into a fixed-width :class:`scipy.sparse.csr_matrix` by hashing each
feature index into one of ``num_features`` buckets. Signed hashing
(sign drawn from a hash bit) keeps collisions unbiased in expectation.

Hashing is stateless and deterministic — independent of
``PYTHONHASHSEED`` — via CRC-32, so a model trained before a restart
keeps meaning after it. §3.2.1 of the paper notes that hashing output
must be stored sparse to preserve the O(p) materialization bound; this
component emits CSR accordingly.
"""

from __future__ import annotations

import zlib
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import (
    Batch,
    ComponentKind,
    Features,
    StatelessComponent,
)


def hash_index(index: int, num_features: int) -> Tuple[int, float]:
    """Map a feature index to ``(bucket, sign)`` deterministically.

    The bucket comes from CRC-32 of the decimal index modulo
    ``num_features``; the sign from the hash's top bit.
    """
    digest = zlib.crc32(b"%d" % index)
    bucket = digest % num_features
    sign = 1.0 if digest & 0x80000000 == 0 else -1.0
    return bucket, sign


class FeatureHasher(StatelessComponent):
    """Hash sparse-dict rows into a fixed-width CSR matrix + labels.

    Parameters
    ----------
    num_features:
        Output dimensionality (buckets). Powers of two are customary
        but not required.
    features_column, label_column:
        Input columns (as produced by the URL parser).
    signed:
        Use signed hashing (recommended); unsigned accumulates positive
        collision bias.
    """

    kind = ComponentKind.FEATURE_EXTRACTION

    def __init__(
        self,
        num_features: int,
        features_column: str = "features",
        label_column: str = "label",
        signed: bool = True,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if num_features < 1:
            raise ValidationError(
                f"num_features must be >= 1, got {num_features}"
            )
        self.num_features = int(num_features)
        self.features_column = features_column
        self.label_column = label_column
        self.signed = signed

    def transform(self, batch: Batch) -> Features:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        rows = batch.column(self.features_column)
        labels = np.asarray(
            batch.column(self.label_column), dtype=np.float64
        )
        data: list[float] = []
        indices: list[int] = []
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        width = self.num_features
        for position, row in enumerate(rows):
            # Aggregate duplicate buckets within a row so CSR stays
            # canonical even under collisions.
            bucket_values: dict[int, float] = {}
            for index, value in row.items():
                bucket, sign = hash_index(index, width)
                contribution = value * sign if self.signed else value
                bucket_values[bucket] = (
                    bucket_values.get(bucket, 0.0) + contribution
                )
            ordered = sorted(bucket_values.items())
            indices.extend(bucket for bucket, __ in ordered)
            data.extend(value for __, value in ordered)
            indptr[position + 1] = len(indices)
        matrix = sp.csr_matrix(
            (
                np.asarray(data, dtype=np.float64),
                np.asarray(indices, dtype=np.int64),
                indptr,
            ),
            shape=(len(rows), width),
        )
        return Features(matrix=matrix, labels=labels)
