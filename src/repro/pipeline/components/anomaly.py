"""Row-filtering components (anomaly detection).

The Taxi pipeline's anomaly detector drops trips longer than 22 hours,
shorter than 10 seconds, or with zero distance. :class:`RangeFilter`
expresses each such rule; :class:`AnomalyFilter` takes an arbitrary
mask predicate for custom rules.

Filters are "data transformation" components in the Table 1 taxonomy:
they operate row-wise and can only shrink the data (O(p) output).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import (
    Batch,
    ComponentKind,
    StatelessComponent,
)

#: Predicate returning a boolean keep-mask for the table's rows.
MaskPredicate = Callable[[Table], np.ndarray]


class AnomalyFilter(StatelessComponent):
    """Keep only the rows where ``predicate(table)`` is true.

    The predicate receives the full table and must return a boolean
    array of length ``table.num_rows`` (true = keep).
    """

    kind = ComponentKind.DATA_TRANSFORMATION

    def __init__(
        self, predicate: MaskPredicate, name: str | None = None
    ) -> None:
        super().__init__(name)
        self.predicate = predicate
        self.rows_seen = 0
        self.rows_dropped = 0

    def transform(self, batch: Batch) -> Batch:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        mask = np.asarray(self.predicate(batch), dtype=bool)
        if mask.shape != (batch.num_rows,):
            raise PipelineError(
                f"{self.name}: predicate returned shape {mask.shape}, "
                f"expected ({batch.num_rows},)"
            )
        self.rows_seen += batch.num_rows
        self.rows_dropped += int((~mask).sum())
        return batch.filter_rows(mask)

    @property
    def drop_rate(self) -> float:
        """Fraction of rows dropped so far (0 when nothing seen)."""
        if not self.rows_seen:
            return 0.0
        return self.rows_dropped / self.rows_seen


class RangeFilter(AnomalyFilter):
    """Keep rows whose ``column`` value lies in ``[minimum, maximum]``.

    Either bound may be ``None`` (unbounded on that side); NaN values
    never satisfy a bound and are dropped.
    """

    def __init__(
        self,
        column: str,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
        name: str | None = None,
    ) -> None:
        if minimum is None and maximum is None:
            raise ValidationError(
                "RangeFilter needs at least one of minimum/maximum"
            )
        if (
            minimum is not None
            and maximum is not None
            and minimum > maximum
        ):
            raise ValidationError(
                f"minimum {minimum} exceeds maximum {maximum}"
            )
        self.column = column
        self.minimum = minimum
        self.maximum = maximum
        super().__init__(self._in_range, name)

    def _in_range(self, table: Table) -> np.ndarray:
        values = np.asarray(table.column(self.column), dtype=np.float64)
        mask = ~np.isnan(values)
        if self.minimum is not None:
            mask &= values >= self.minimum
        if self.maximum is not None:
            mask &= values <= self.maximum
        return mask
