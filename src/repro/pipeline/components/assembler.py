"""Terminal assembler: Table columns → model-ready Features.

The last component of a dense pipeline stacks the chosen feature
columns into a matrix and pulls out the label column. An optional
label transform (e.g. ``log1p`` for the Taxi RMSLE target) is applied
here so the model always sees the training-space target.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import (
    Batch,
    ComponentKind,
    Features,
    StatelessComponent,
)


class FeatureAssembler(StatelessComponent):
    """Stack feature columns into a dense matrix and extract labels.

    Parameters
    ----------
    feature_columns:
        Columns forming the feature matrix, in order.
    label_column:
        Column holding the raw target.
    label_transform:
        Optional vectorised function applied to the raw target (the
        Taxi pipeline trains on ``log1p(duration)``).
    """

    kind = ComponentKind.FEATURE_EXTRACTION

    def __init__(
        self,
        feature_columns: Sequence[str],
        label_column: str,
        label_transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if not feature_columns:
            raise ValidationError(
                "assembler needs at least one feature column"
            )
        self.feature_columns = list(feature_columns)
        self.label_column = label_column
        self.label_transform = label_transform

    def transform(self, batch: Batch) -> Features:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        matrix = batch.to_matrix(self.feature_columns)
        labels = np.asarray(
            batch.column(self.label_column), dtype=np.float64
        )
        if self.label_transform is not None:
            labels = np.asarray(
                self.label_transform(labels), dtype=np.float64
            )
        return Features(matrix=matrix, labels=labels)
