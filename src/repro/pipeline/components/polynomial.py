"""Polynomial interaction features.

§3.2.1 of the paper describes feature extraction that "creates a new
feature (column) by combining one or more existing features (such as
summing or multiplying features together)" — the O(p) case of its size
analysis. :class:`PolynomialInteractions` is that component: pairwise
products (and optionally squares) of chosen numeric columns, appended
as new columns.
"""

from __future__ import annotations

from itertools import combinations, combinations_with_replacement
from typing import List, Sequence, Tuple

import numpy as np

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import (
    Batch,
    ComponentKind,
    StatelessComponent,
)


class PolynomialInteractions(StatelessComponent):
    """Append pairwise interaction columns for the given columns.

    Parameters
    ----------
    columns:
        Numeric input columns (at least two, unless
        ``include_squares``).
    include_squares:
        Also append each column's square (degree-2 self-interaction).
    separator:
        Joins input names into output names, e.g. ``a*b``.
    """

    kind = ComponentKind.FEATURE_EXTRACTION

    def __init__(
        self,
        columns: Sequence[str],
        include_squares: bool = False,
        separator: str = "*",
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if not columns:
            raise ValidationError(
                "PolynomialInteractions needs at least one column"
            )
        if len(columns) < 2 and not include_squares:
            raise ValidationError(
                "a single column without include_squares produces no "
                "interactions; add columns or set include_squares"
            )
        if len(set(columns)) != len(columns):
            raise ValidationError("columns must be distinct")
        self.columns = list(columns)
        self.include_squares = include_squares
        self.separator = separator

    def output_pairs(self) -> List[Tuple[str, str]]:
        """The (left, right) column pairs this component produces."""
        if self.include_squares:
            return list(
                combinations_with_replacement(self.columns, 2)
            )
        return list(combinations(self.columns, 2))

    def output_columns(self) -> List[str]:
        """Names of the appended interaction columns."""
        return [
            f"{left}{self.separator}{right}"
            for left, right in self.output_pairs()
        ]

    def transform(self, batch: Batch) -> Batch:
        if not isinstance(batch, Table):
            raise PipelineError(
                f"{self.name} expects a Table, got {type(batch).__name__}"
            )
        result = batch
        for left, right in self.output_pairs():
            product = np.asarray(
                batch.column(left), dtype=np.float64
            ) * np.asarray(batch.column(right), dtype=np.float64)
            result = result.with_column(
                f"{left}{self.separator}{right}", product
            )
        return result
