"""Pipeline: an ordered chain of components with two execution paths.

* :meth:`Pipeline.update_transform` — the online-training path: each
  component updates its statistics from the batch, then transforms it
  (online statistics computation, §3.1).
* :meth:`Pipeline.transform` — the pure serving / re-materialization
  path: statistics are read but never written.

Both paths run the *same* components in the same order, which is the
paper's train/serve-consistency argument (§4.3). An optional
:class:`~repro.execution.cost.CostTracker` receives per-component
charges so experiments can attribute deployment cost to preprocessing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

from repro.exceptions import PipelineError
from repro.pipeline.component import Batch, Features, PipelineComponent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.execution.cost import CostTracker


class Pipeline:
    """An ordered, named chain of :class:`PipelineComponent` objects.

    Parameters
    ----------
    components:
        The chain, first component first. Names must be unique so that
        per-component statistics and cost lines are unambiguous.
    """

    def __init__(self, components: Sequence[PipelineComponent]) -> None:
        components = list(components)
        if not components:
            raise PipelineError("a pipeline needs at least one component")
        names = set()
        for component in components:
            if not isinstance(component, PipelineComponent):
                raise PipelineError(
                    f"{component!r} is not a PipelineComponent"
                )
            if component.name in names:
                raise PipelineError(
                    f"duplicate component name {component.name!r}"
                )
            names.add(component.name)
        self._components: List[PipelineComponent] = components

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def components(self) -> List[PipelineComponent]:
        """The chain (a copy; mutate via construction, not in place)."""
        return list(self._components)

    @property
    def component_names(self) -> List[str]:
        return [c.name for c in self._components]

    def component(self, name: str) -> PipelineComponent:
        """Return the component called ``name``."""
        for candidate in self._components:
            if candidate.name == name:
                return candidate
        raise PipelineError(
            f"no component {name!r}; have {self.component_names}"
        )

    @property
    def stateful_components(self) -> List[PipelineComponent]:
        """Components whose statistics online computation maintains."""
        return [c for c in self._components if c.is_stateful]

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[PipelineComponent]:
        return iter(self._components)

    def __repr__(self) -> str:
        chain = " -> ".join(self.component_names)
        return f"Pipeline({chain})"

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------
    def update_transform(
        self,
        batch: Batch,
        tracker: Optional["CostTracker"] = None,
    ) -> Batch:
        """Online path: update statistics with the batch, then transform.

        Cost accounting: every component charges a ``statistics`` line
        for the update scan and a ``transform`` line for the transform
        scan, each proportional to the batch's value count.
        """
        current = batch
        for component in self._components:
            values = PipelineComponent.batch_num_values(current)
            if component.is_stateful:
                component.update(current)
                if tracker is not None:
                    tracker.charge_statistics(values, component.name)
            current = component.transform(current)
            if tracker is not None:
                tracker.charge_transform(values, component.name)
        return current

    def transform(
        self,
        batch: Batch,
        tracker: Optional["CostTracker"] = None,
    ) -> Batch:
        """Serving / re-materialization path: transform only."""
        current = batch
        for component in self._components:
            values = PipelineComponent.batch_num_values(current)
            current = component.transform(current)
            if tracker is not None:
                tracker.charge_transform(values, component.name)
        return current

    def transform_to_features(
        self,
        batch: Batch,
        tracker: Optional["CostTracker"] = None,
    ) -> Features:
        """Like :meth:`transform` but assert the output is model-ready."""
        result = self.transform(batch, tracker)
        return self._require_features(result)

    def update_transform_to_features(
        self,
        batch: Batch,
        tracker: Optional["CostTracker"] = None,
    ) -> Features:
        """Like :meth:`update_transform`, asserting model-ready output."""
        result = self.update_transform(batch, tracker)
        return self._require_features(result)

    @staticmethod
    def _require_features(result: Batch) -> Features:
        if not isinstance(result, Features):
            raise PipelineError(
                "pipeline did not terminate in a Features batch; add a "
                "terminal assembler/hasher component (got "
                f"{type(result).__name__})"
            )
        return result

    def reset(self) -> None:
        """Reset the statistics of every component."""
        for component in self._components:
            component.reset()
