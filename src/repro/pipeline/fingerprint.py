"""Pipeline-component fingerprints — the provenance identity of code.

A *fingerprint* answers "was this the same preprocessing?" for one
component at one moment: three SHA-256 digests over

* ``code`` — the component class's source text (falling back to its
  qualified name when source is unavailable);
* ``config`` — the scalar constructor-style attributes (ints, floats,
  strings, bools, tuples of those);
* ``stats`` — everything else the instance carries: the fitted
  statistics arrays, category tables, and running moments that online
  statistics computation advances.

plus a combined ``digest`` over all of the above. The split matters
operationally: a component whose ``code``/``config`` digests match but
whose ``stats`` digest moved was *the same transformation retrained*,
while a ``code`` change means the pipeline itself was edited.

These are the content-addressed node identities the provenance ledger
(:mod:`repro.obs.lineage`) stores per training event, and — by design
— the exact artifact ROADMAP item 3's cache-aware re-materialization
will key on: a downstream chunk only needs re-materializing when an
upstream component's fingerprint actually changed.

Serialization is canonical: attributes are visited in sorted order,
numpy arrays hash as ``dtype + shape + bytes``, nested objects recurse
through their ``__dict__``, so identical state always produces
identical digests.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
from typing import Any, Dict, List

import numpy as np
import scipy.sparse as sp

from repro.pipeline.component import PipelineComponent
from repro.pipeline.pipeline import Pipeline

#: Attribute value types binned into the ``config`` digest; everything
#: else (arrays, dicts, statistics objects) is fitted state.
_CONFIG_TYPES = (bool, int, float, str, bytes, type(None))

#: Recursion guard for pathological self-referencing state.
_MAX_DEPTH = 12


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _canonical(value: Any, depth: int = 0) -> Any:
    """A JSON-safe, deterministic rendering of one attribute value."""
    if depth > _MAX_DEPTH:
        return {"__deep__": type(value).__name__}
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        # repr of the plain float is the shortest round-trip form —
        # stable across runs, distinguishes every distinct double, and
        # maps np.float64 (a float subclass) onto the same rendering.
        return {"__float__": repr(float(value))}
    if isinstance(value, bytes):
        return {"__bytes__": hashlib.sha256(value).hexdigest()}
    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        return {
            "__ndarray__": [
                array.dtype.str,
                list(array.shape),
                hashlib.sha256(array.tobytes()).hexdigest(),
            ]
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return {"__float__": repr(float(value))}
    if sp.issparse(value):
        csr = value.tocsr()
        body = hashlib.sha256()
        body.update(np.ascontiguousarray(csr.data).tobytes())
        body.update(np.ascontiguousarray(csr.indices).tobytes())
        body.update(np.ascontiguousarray(csr.indptr).tobytes())
        return {
            "__sparse__": [list(csr.shape), body.hexdigest()]
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item, depth + 1) for item in value]
    if isinstance(value, (set, frozenset)):
        return {
            "__set__": sorted(
                json.dumps(
                    _canonical(item, depth + 1), sort_keys=True
                )
                for item in value
            )
        }
    if isinstance(value, dict):
        return {
            "__dict__": [
                [str(key), _canonical(value[key], depth + 1)]
                for key in sorted(value, key=str)
            ]
        }
    if hasattr(value, "__dict__"):
        return {
            "__obj__": type(value).__qualname__,
            "attrs": [
                [key, _canonical(attr, depth + 1)]
                for key, attr in sorted(vars(value).items())
            ],
        }
    return {"__repr__": repr(value)}


def _digest_of(payload: Any) -> str:
    return _sha(
        json.dumps(payload, sort_keys=True, separators=(",", ":"))
    )


@functools.lru_cache(maxsize=None)
def _class_source_digest(cls: type) -> str:
    # Class source cannot change within one process, so the digest is
    # memoized per class — fingerprinting a pipeline after every
    # training burst must not re-tokenize source files each time.
    try:
        source = inspect.getsource(cls)
    except (OSError, TypeError):
        source = f"{cls.__module__}.{cls.__qualname__}"
    return _sha(source)


def code_digest(component: PipelineComponent) -> str:
    """Digest of the component class's source text.

    Interactive or generated classes without retrievable source fall
    back to the qualified name — still stable within one process tree,
    which is all the determinism contract needs.
    """
    return _class_source_digest(type(component))


def component_fingerprint(
    component: PipelineComponent,
) -> Dict[str, Any]:
    """The full fingerprint of one component, digest-stamped."""
    config: Dict[str, Any] = {}
    stats: Dict[str, Any] = {}
    for key, value in sorted(vars(component).items()):
        if isinstance(value, _CONFIG_TYPES) or (
            isinstance(value, tuple)
            and all(isinstance(item, _CONFIG_TYPES) for item in value)
        ):
            config[key] = _canonical(value)
        else:
            stats[key] = _canonical(value)
    body = {
        "name": component.name,
        "kind": component.kind.value,
        "stateful": component.is_stateful,
        "code": code_digest(component),
        "config": _digest_of(config),
        "stats": _digest_of(stats),
    }
    body["digest"] = _digest_of(body)
    return body


def pipeline_fingerprint(pipeline: Pipeline) -> List[Dict[str, Any]]:
    """Fingerprints of every component, in chain order."""
    return [
        component_fingerprint(component) for component in pipeline
    ]
