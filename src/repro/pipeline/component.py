"""Pipeline component contract.

Every component implements the two methods the paper requires (§4.3):

* ``update(data)`` — fold the batch into the component's internal
  statistics (online statistics computation, §3.1). Stateless
  components inherit a no-op.
* ``transform(data)`` — apply the (current) statistics to the batch and
  return the transformed batch, without changing any state.

The training path calls ``update`` then ``transform``; the serving path
and dynamic re-materialization call ``transform`` only. Keeping both on
one object is what guarantees train/serve consistency.

Data flows between components as :class:`~repro.data.table.Table`
objects until a terminal component (hasher / assembler) emits a
:class:`Features` pair ready for the model.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import NamedTuple, Union

import numpy as np
import scipy.sparse as sp

from repro.data.table import Table


class Features(NamedTuple):
    """Model-ready output of a pipeline: matrix + aligned labels.

    ``matrix`` is dense (``ndarray``) or sparse (``csr_matrix``);
    ``labels`` is a 1-D float array. This is the payload stored inside a
    :class:`~repro.data.chunk.FeatureChunk`.
    """

    matrix: Union[np.ndarray, sp.csr_matrix]
    labels: np.ndarray

    @property
    def num_rows(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.matrix.shape[1])

    def num_values(self) -> int:
        """Stored value count — nnz for sparse, rows*cols for dense.

        This is the unit the cost model charges and the quantity whose
        growth §3.2.1 analyses (sparse one-hot/hashing output stays
        O(p) thanks to the sparse representation).
        """
        if sp.issparse(self.matrix):
            return int(self.matrix.nnz) + len(self.labels)
        return int(self.matrix.size) + len(self.labels)


#: Batches a component may receive or emit.
Batch = Union[Table, Features]


def union_features(parts) -> Features:
    """Vertically stack Features batches (the paper's union step).

    All parts must share a representation: mixing sparse and dense
    matrices raises, because silently densifying a hashed feature
    space would blow the O(p) storage bound of §3.2.1.
    """
    parts = list(parts)
    if not parts:
        raise ValueError("cannot union zero Features batches")
    sparse_flags = {sp.issparse(p.matrix) for p in parts}
    if len(sparse_flags) != 1:
        raise ValueError("cannot union sparse and dense feature batches")
    labels = np.concatenate([np.asarray(p.labels) for p in parts])
    if sparse_flags.pop():
        matrix = sp.vstack([p.matrix for p in parts], format="csr")
    else:
        matrix = np.vstack([p.matrix for p in parts])
    return Features(matrix=matrix, labels=labels)


class ComponentKind(enum.Enum):
    """Component taxonomy from Table 1 of the paper.

    The *unit of work* determines the size complexity of the component's
    output (§3.2.1): row-wise transformations and column selections are
    O(p); extraction can expand columns but stays O(p) under a sparse
    representation.
    """

    DATA_TRANSFORMATION = "data transformation"  # row-wise filter / map
    FEATURE_SELECTION = "feature selection"      # keeps a column subset
    FEATURE_EXTRACTION = "feature extraction"    # generates new columns


class PipelineComponent(ABC):
    """Base class for all pipeline components.

    Subclasses set :attr:`kind` and implement :meth:`update` /
    :meth:`transform`. Components carrying statistics should also
    override :meth:`reset` and report ``is_stateful = True`` so the
    platform knows their statistics participate in online computation.
    """

    #: Taxonomy bucket (Table 1).
    kind: ComponentKind = ComponentKind.DATA_TRANSFORMATION

    #: Whether the component keeps statistics that ``update`` maintains.
    is_stateful: bool = True

    def __init__(self, name: str | None = None) -> None:
        self.name = name if name is not None else type(self).__name__

    @abstractmethod
    def update(self, batch: Batch) -> None:
        """Fold ``batch`` into the component's statistics."""

    @abstractmethod
    def transform(self, batch: Batch) -> Batch:
        """Return the transformed batch; must not mutate state."""

    def update_transform(self, batch: Batch) -> Batch:
        """Online-pass convenience: update statistics, then transform."""
        self.update(batch)
        return self.transform(batch)

    def reset(self) -> None:
        """Discard learned statistics (default: nothing to discard)."""

    @staticmethod
    def batch_num_values(batch: Batch) -> int:
        """Value count of a batch, for cost accounting."""
        if isinstance(batch, Features):
            return batch.num_values()
        return batch.num_values

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class StatelessComponent(PipelineComponent):
    """Convenience base for components without statistics.

    ``update`` is a no-op and ``is_stateful`` is false; the platform
    can skip statistics handling entirely for these (§3.1: "support for
    stateless pipeline components is trivial").
    """

    is_stateful = False

    def update(self, batch: Batch) -> None:
        """Stateless components have nothing to update."""
