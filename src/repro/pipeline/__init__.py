"""Machine-learning pipeline framework.

Implements the paper's pipeline abstraction (§4.3): components with an
``update`` method (online statistics computation, §3.1) and a
``transform`` method (pure preprocessing), chained into a
:class:`~repro.pipeline.pipeline.Pipeline` whose single transform path
serves both training data and prediction queries — the train/serve
consistency guarantee of §4.3.
"""

from repro.pipeline.component import (
    ComponentKind,
    PipelineComponent,
    StatelessComponent,
)
from repro.pipeline.fingerprint import (
    component_fingerprint,
    pipeline_fingerprint,
)
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.statistics import (
    CategoryTable,
    RunningMinMax,
    RunningMoments,
)

__all__ = [
    "PipelineComponent",
    "StatelessComponent",
    "ComponentKind",
    "Pipeline",
    "RunningMoments",
    "RunningMinMax",
    "CategoryTable",
    "component_fingerprint",
    "pipeline_fingerprint",
]
