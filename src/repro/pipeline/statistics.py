"""Incremental (online) statistics.

§3.1 of the paper restricts online statistics computation to statistics
that can be updated incrementally — mean, standard deviation, hash
tables — and this module provides exactly those primitives:

* :class:`RunningMoments` — per-coordinate mean/variance via a batched
  Welford / Chan et al. update, NaN-aware so the missing-value imputer
  can learn means from incomplete data.
* :class:`RunningMinMax` — per-coordinate extrema.
* :class:`CategoryTable` — an insertion-ordered incremental vocabulary
  (the "hash table" statistic backing one-hot encoding).

All three support ``merge`` so statistics computed on separate chunks
can be combined, mirroring distributed execution.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

import numpy as np

from repro.exceptions import NotFittedError, ValidationError


class RunningMoments:
    """Per-coordinate streaming mean and variance.

    Uses the numerically stable pairwise/batched form of Welford's
    algorithm (Chan, Golub & LeVeque): each :meth:`update` folds a whole
    batch into the running moments in O(batch) without catastrophic
    cancellation. ``NaN`` observations are skipped per coordinate, so
    every coordinate keeps its own observation count.

    Parameters
    ----------
    dim:
        Number of coordinates. ``None`` (default) infers it from the
        first batch.
    """

    def __init__(self, dim: Optional[int] = None) -> None:
        if dim is not None and dim < 1:
            raise ValidationError(f"dim must be >= 1, got {dim}")
        self._dim = dim
        self._count: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._m2: Optional[np.ndarray] = None
        if dim is not None:
            self._allocate(dim)

    def _allocate(self, dim: int) -> None:
        self._dim = dim
        self._count = np.zeros(dim, dtype=np.float64)
        self._mean = np.zeros(dim, dtype=np.float64)
        self._m2 = np.zeros(dim, dtype=np.float64)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> Optional[int]:
        return self._dim

    @property
    def count(self) -> np.ndarray:
        """Per-coordinate number of non-NaN observations."""
        self._require_seen()
        return self._count.copy()

    @property
    def total_count(self) -> int:
        """Largest per-coordinate count (rows seen, NaN or not aside)."""
        if self._count is None:
            return 0
        return int(self._count.max()) if self._count.size else 0

    def update(self, batch: np.ndarray) -> None:
        """Fold a batch of observations into the moments.

        ``batch`` is ``(n,)`` for one coordinate or ``(n, dim)``.
        """
        array = np.asarray(batch, dtype=np.float64)
        if array.ndim == 1:
            array = array[:, None]
        if array.ndim != 2:
            raise ValidationError(
                f"batch must be 1-D or 2-D, got shape {array.shape}"
            )
        if self._count is None:
            self._allocate(array.shape[1])
        elif array.shape[1] != self._dim:
            raise ValidationError(
                f"batch has {array.shape[1]} coordinates, "
                f"expected {self._dim}"
            )
        if array.shape[0] == 0:
            return
        valid = ~np.isnan(array)
        batch_count = valid.sum(axis=0).astype(np.float64)
        filled = np.where(valid, array, 0.0)
        safe_count = np.maximum(batch_count, 1.0)
        batch_mean = filled.sum(axis=0) / safe_count
        deviations = np.where(valid, array - batch_mean, 0.0)
        batch_m2 = np.sum(deviations * deviations, axis=0)
        self._merge_moments(batch_count, batch_mean, batch_m2)

    def _merge_moments(
        self,
        other_count: np.ndarray,
        other_mean: np.ndarray,
        other_m2: np.ndarray,
    ) -> None:
        new_count = self._count + other_count
        # Coordinates with no new observations keep their state; guard
        # the divisions with a safe denominator.
        safe_total = np.maximum(new_count, 1.0)
        delta = other_mean - self._mean
        self._mean = np.where(
            other_count > 0,
            self._mean + delta * (other_count / safe_total),
            self._mean,
        )
        self._m2 = np.where(
            other_count > 0,
            self._m2
            + other_m2
            + delta * delta * (self._count * other_count / safe_total),
            self._m2,
        )
        self._count = new_count

    def merge(self, other: "RunningMoments") -> None:
        """Fold another moments accumulator into this one."""
        if other._count is None:
            return
        if self._count is None:
            self._allocate(other._dim)
        if self._dim != other._dim:
            raise ValidationError(
                f"cannot merge moments of dim {other._dim} into "
                f"dim {self._dim}"
            )
        self._merge_moments(
            other._count.copy(), other._mean.copy(), other._m2.copy()
        )

    # ------------------------------------------------------------------
    def mean(self) -> np.ndarray:
        """Per-coordinate mean; 0 for coordinates never observed."""
        self._require_seen()
        return np.where(self._count > 0, self._mean, 0.0)

    def variance(self) -> np.ndarray:
        """Per-coordinate population variance (ddof=0)."""
        self._require_seen()
        safe = np.maximum(self._count, 1.0)
        return np.where(self._count > 0, self._m2 / safe, 0.0)

    def std(self) -> np.ndarray:
        """Per-coordinate population standard deviation."""
        return np.sqrt(self.variance())

    def _require_seen(self) -> None:
        if self._count is None:
            raise NotFittedError(
                "RunningMoments has not observed any data"
            )

    def __repr__(self) -> str:
        if self._count is None:
            return "RunningMoments(unseen)"
        return (
            f"RunningMoments(dim={self._dim}, "
            f"rows~{self.total_count})"
        )


class RunningMinMax:
    """Per-coordinate streaming minimum and maximum (NaN-aware)."""

    def __init__(self, dim: Optional[int] = None) -> None:
        if dim is not None and dim < 1:
            raise ValidationError(f"dim must be >= 1, got {dim}")
        self._dim = dim
        self._min: Optional[np.ndarray] = None
        self._max: Optional[np.ndarray] = None
        if dim is not None:
            self._allocate(dim)

    def _allocate(self, dim: int) -> None:
        self._dim = dim
        self._min = np.full(dim, np.inf)
        self._max = np.full(dim, -np.inf)

    @property
    def dim(self) -> Optional[int]:
        return self._dim

    def update(self, batch: np.ndarray) -> None:
        array = np.asarray(batch, dtype=np.float64)
        if array.ndim == 1:
            array = array[:, None]
        if array.ndim != 2:
            raise ValidationError(
                f"batch must be 1-D or 2-D, got shape {array.shape}"
            )
        if self._min is None:
            self._allocate(array.shape[1])
        elif array.shape[1] != self._dim:
            raise ValidationError(
                f"batch has {array.shape[1]} coordinates, "
                f"expected {self._dim}"
            )
        if array.shape[0] == 0:
            return
        with np.errstate(invalid="ignore"):
            self._min = np.fmin(self._min, np.nanmin(array, axis=0))
            self._max = np.fmax(self._max, np.nanmax(array, axis=0))

    def merge(self, other: "RunningMinMax") -> None:
        if other._min is None:
            return
        if self._min is None:
            self._allocate(other._dim)
        if self._dim != other._dim:
            raise ValidationError(
                f"cannot merge min-max of dim {other._dim} into "
                f"dim {self._dim}"
            )
        self._min = np.fmin(self._min, other._min)
        self._max = np.fmax(self._max, other._max)

    def minimum(self) -> np.ndarray:
        self._require_seen()
        return self._min.copy()

    def maximum(self) -> np.ndarray:
        self._require_seen()
        return self._max.copy()

    def span(self) -> np.ndarray:
        """``max - min`` per coordinate (0 where nothing was observed)."""
        self._require_seen()
        span = self._max - self._min
        return np.where(np.isfinite(span), span, 0.0)

    def _require_seen(self) -> None:
        if self._min is None:
            raise NotFittedError("RunningMinMax has not observed any data")


class SparseMoments:
    """Streaming mean/variance keyed by feature index.

    Backs the sparse (URL-style) imputer and scaler: features live in
    dict-of-``{index: value}`` rows and the set of indices grows over
    time, so statistics are kept in a dictionary rather than a dense
    vector. Each index gets a scalar Welford accumulator.
    """

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        # index -> [count, mean, M2]
        self._stats: Dict[int, List[float]] = {}

    def update(self, rows: Iterable[Dict[int, float]]) -> None:
        """Fold an iterable of sparse rows into the moments.

        NaN values are skipped (they are what the imputer must fill).
        """
        stats = self._stats
        for row in rows:
            for index, value in row.items():
                if value != value:  # NaN check without np call per value
                    continue
                entry = stats.get(index)
                if entry is None:
                    stats[index] = [1.0, float(value), 0.0]
                    continue
                entry[0] += 1.0
                delta = value - entry[1]
                entry[1] += delta / entry[0]
                entry[2] += delta * (value - entry[1])

    def merge(self, other: "SparseMoments") -> None:
        """Fold another accumulator into this one (Chan merge per key)."""
        for index, (o_count, o_mean, o_m2) in other._stats.items():
            entry = self._stats.get(index)
            if entry is None:
                self._stats[index] = [o_count, o_mean, o_m2]
                continue
            count, mean, m2 = entry
            total = count + o_count
            delta = o_mean - mean
            entry[0] = total
            entry[1] = mean + delta * o_count / total
            entry[2] = m2 + o_m2 + delta * delta * count * o_count / total

    def mean(self, index: int, default: float = 0.0) -> float:
        """Mean of feature ``index`` (``default`` if never observed)."""
        entry = self._stats.get(index)
        return entry[1] if entry is not None else default

    def std(self, index: int, default: float = 1.0) -> float:
        """Population std of ``index`` (``default`` if unseen or zero)."""
        entry = self._stats.get(index)
        if entry is None or entry[0] < 1:
            return default
        variance = entry[2] / entry[0]
        if variance <= 0.0:
            return default
        return float(np.sqrt(variance))

    def count(self, index: int) -> int:
        entry = self._stats.get(index)
        return int(entry[0]) if entry is not None else 0

    def indices(self) -> List[int]:
        """All feature indices observed so far."""
        return list(self._stats)

    def __len__(self) -> int:
        return len(self._stats)

    def __repr__(self) -> str:
        return f"SparseMoments({len(self)} indices)"


class CategoryTable:
    """Insertion-ordered incremental vocabulary.

    Maps each distinct value to a stable dense index in first-seen
    order. This is the incrementally updatable "hash table" statistic
    that the paper names as backing one-hot encoding (§3.1).
    """

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}

    def update(self, values: Iterable[Hashable]) -> None:
        """Register every value in ``values``."""
        index = self._index
        for value in values:
            if value not in index:
                index[value] = len(index)

    def merge(self, other: "CategoryTable") -> None:
        """Register the other table's categories (first-seen order kept)."""
        self.update(other.categories())

    def lookup(self, value: Hashable) -> Optional[int]:
        """Dense index for ``value``, or ``None`` if unseen."""
        return self._index.get(value)

    def encode(self, values: Iterable[Hashable]) -> np.ndarray:
        """Vector of indices (-1 for unseen values)."""
        index = self._index
        return np.array(
            [index.get(v, -1) for v in values], dtype=np.int64
        )

    def categories(self) -> List[Hashable]:
        """All known categories in first-seen order."""
        return list(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._index

    def __repr__(self) -> str:
        return f"CategoryTable({len(self)} categories)"
