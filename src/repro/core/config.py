"""Configuration dataclasses for the deployment approaches.

Grouping the paper's two hyperparameter families (§2.2): *deployment*
hyperparameters (retraining frequency, amount of data, sample sizes,
materialization budget) live here; *training* hyperparameters
(learning-rate adaptation, regularization) live on the optimizer and
model objects themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class ScheduleConfig:
    """Which proactive-training scheduler to build.

    ``kind="static"`` uses ``interval_chunks``; ``kind="dynamic"`` uses
    ``slack`` and ``initial_interval`` (formula 6).
    """

    kind: str = "static"
    interval_chunks: int = 5
    slack: float = 2.0
    initial_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("static", "dynamic"):
            raise ValidationError(
                f"schedule kind must be 'static' or 'dynamic', "
                f"got {self.kind!r}"
            )
        if self.interval_chunks < 1:
            raise ValidationError(
                f"interval_chunks must be >= 1, got {self.interval_chunks}"
            )


@dataclass(frozen=True)
class OnlineConfig:
    """Online deployment: one online SGD update per incoming chunk."""

    #: Whether to keep ingesting into storage anyway (for later
    #: inspection); the approach itself never reads history.
    store_history: bool = False


@dataclass(frozen=True)
class PeriodicalConfig:
    """Periodical deployment: online updates + periodic full retraining.

    Parameters
    ----------
    retrain_every_chunks:
        Full retraining runs after every this many deployment chunks
        (the paper: every 10 days for URL, monthly for Taxi).
    max_epoch_iterations:
        Iteration cap for each retraining run.
    batch_size:
        Mini-batch size during retraining; ``None`` = full batch.
    tolerance:
        Convergence tolerance for retraining.
    warm_start:
        Reuse pipeline statistics, model weights, and optimizer state
        (TFX-style). Disabling is an ablation: each retraining then
        starts from scratch and must recompute statistics over the
        full history.
    """

    retrain_every_chunks: int = 50
    max_epoch_iterations: int = 200
    batch_size: Optional[int] = None
    tolerance: float = 1e-4
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.retrain_every_chunks < 1:
            raise ValidationError(
                f"retrain_every_chunks must be >= 1, "
                f"got {self.retrain_every_chunks}"
            )
        if self.max_epoch_iterations < 1:
            raise ValidationError(
                f"max_epoch_iterations must be >= 1, "
                f"got {self.max_epoch_iterations}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValidationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )


@dataclass(frozen=True)
class ContinuousConfig:
    """Continuous deployment: online updates + proactive training.

    Parameters
    ----------
    sample_size_chunks:
        Chunks per proactive-training sample (*s* in §3.2.2).
    schedule:
        When proactive training fires.
    sampler:
        ``"uniform"``, ``"window"``, or ``"time"``.
    window_size:
        Active window (chunks) for the window sampler.
    half_life:
        Decay half-life (chunks) for the time-based sampler.
    max_materialized_chunks:
        Materialization budget *m*; ``None`` = unbounded (materialize
        everything, the paper's materialization rate 1.0).
    online_statistics:
        Keep the online-statistics optimization on. Disabling is the
        paper's *NoOptimization* configuration: proactive training
        then re-reads raw chunks from disk and recomputes statistics.
    online_update:
        Apply an online SGD step per incoming chunk (the platform
        "also utilizes online learning methods", §1).
    online_batch_rows:
        Row-slice size for the online update (``None`` = whole chunk;
        ``1`` = point-at-a-time online gradient descent).
    """

    sample_size_chunks: int = 8
    schedule: ScheduleConfig = field(default_factory=ScheduleConfig)
    sampler: str = "time"
    window_size: Optional[int] = None
    half_life: Optional[float] = None
    max_materialized_chunks: Optional[int] = None
    online_statistics: bool = True
    online_update: bool = True
    online_batch_rows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.online_batch_rows is not None and self.online_batch_rows < 1:
            raise ValidationError(
                f"online_batch_rows must be >= 1, "
                f"got {self.online_batch_rows}"
            )
        if self.sample_size_chunks < 1:
            raise ValidationError(
                f"sample_size_chunks must be >= 1, "
                f"got {self.sample_size_chunks}"
            )
        if self.sampler not in ("uniform", "window", "time"):
            raise ValidationError(
                f"sampler must be 'uniform', 'window', or 'time', "
                f"got {self.sampler!r}"
            )
        if self.sampler == "window" and self.window_size is None:
            raise ValidationError(
                "window sampler requires window_size"
            )
        if (
            self.max_materialized_chunks is not None
            and self.max_materialized_chunks < 0
        ):
            raise ValidationError(
                f"max_materialized_chunks must be >= 0, "
                f"got {self.max_materialized_chunks}"
            )
