"""Proactive-training schedulers (§4.1 of the paper).

Two mechanisms decide when the next proactive training runs:

* :class:`StaticScheduler` — a fixed interval, expressed in chunks (the
  paper uses "every 5 minutes"/"every 5 hours", which at one chunk per
  minute/hour is every 5 chunks — chunks are our clock ticks).
* :class:`DynamicScheduler` — the paper's formula (6):
  ``T' = S · T · pr · pl`` where ``T`` is the duration of the last
  proactive training, ``pr`` the average prediction-query rate, ``pl``
  the average prediction latency, and ``S`` the slack parameter. Time
  here is the deterministic cost-model clock, so behaviour is
  reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict

from repro.exceptions import SchedulingError
from repro.utils.validation import check_positive, check_positive_int


class Scheduler(ABC):
    """Decides, after each ingested chunk, whether to proactively train."""

    @abstractmethod
    def should_train(self, chunk_index: int, now: float) -> bool:
        """True when a proactive training should run now.

        ``chunk_index`` counts ingested deployment chunks from 0;
        ``now`` is the current virtual-clock time in cost units.
        """

    def record_training(self, started_at: float, duration: float) -> None:
        """Inform the scheduler a proactive training just ran."""

    def record_predictions(self, count: int, duration: float) -> None:
        """Inform the scheduler about served prediction queries."""

    def state_dict(self) -> Dict[str, Any]:
        """Mutable scheduling state (configuration is *not* included).

        Restoring this into a scheduler constructed with the same
        configuration reproduces its future decisions exactly — the
        contract checkpoint/recovery relies on.
        """
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`."""


class StaticScheduler(Scheduler):
    """Run proactive training every ``interval_chunks`` chunks.

    The first eligible chunk is ``interval_chunks - 1`` (i.e. after
    every full interval), so an interval of 1 trains on every chunk.
    """

    def __init__(self, interval_chunks: int) -> None:
        self.interval_chunks = check_positive_int(
            interval_chunks, "interval_chunks"
        )

    def should_train(self, chunk_index: int, now: float) -> bool:
        if chunk_index < 0:
            raise SchedulingError(
                f"chunk_index must be >= 0, got {chunk_index}"
            )
        return (chunk_index + 1) % self.interval_chunks == 0

    def __repr__(self) -> str:
        return f"StaticScheduler(interval_chunks={self.interval_chunks})"


class DynamicScheduler(Scheduler):
    """Tune the training interval from observed rates — formula (6).

    After each proactive training of duration ``T`` ending at time
    ``t``, the next training is scheduled at ``t + S·T·pr·pl``.
    ``pr`` and ``pl`` are running averages over everything observed so
    far. Until the first training completes (no ``T`` yet), an
    ``initial_interval`` in virtual seconds applies.

    A small slack (1 ≤ S < 2) trains aggressively; a large slack
    (S ≥ 2) reserves resources for query answering (§4.1).
    """

    def __init__(
        self,
        slack: float = 2.0,
        initial_interval: float = 1.0,
    ) -> None:
        if slack < 1.0:
            raise SchedulingError(
                f"slack must be >= 1 (got {slack}); smaller values "
                f"would schedule training before pending queries finish"
            )
        self.slack = float(slack)
        self.initial_interval = check_positive(
            initial_interval, "initial_interval"
        )
        self._next_time = initial_interval
        self._prediction_count = 0
        self._prediction_duration = 0.0
        self._clock_origin: float | None = None

    # ------------------------------------------------------------------
    def should_train(self, chunk_index: int, now: float) -> bool:
        if self._clock_origin is None:
            self._clock_origin = now
            self._next_time = now + self.initial_interval
        return now >= self._next_time

    def record_training(self, started_at: float, duration: float) -> None:
        if duration < 0:
            raise SchedulingError(
                f"training duration must be >= 0, got {duration}"
            )
        interval = (
            self.slack
            * duration
            * self.prediction_rate()
            * self.prediction_latency()
        )
        if interval <= 0.0:
            # No prediction traffic observed yet: fall back to the
            # initial interval so training still proceeds.
            interval = self.initial_interval
        self._next_time = started_at + duration + interval

    def record_predictions(self, count: int, duration: float) -> None:
        if count < 0 or duration < 0:
            raise SchedulingError(
                f"invalid prediction record: count={count}, "
                f"duration={duration}"
            )
        self._prediction_count += count
        self._prediction_duration += duration

    # ------------------------------------------------------------------
    def prediction_rate(self) -> float:
        """Average queries per virtual second observed so far (``pr``)."""
        if self._prediction_duration <= 0.0:
            return 0.0
        return self._prediction_count / self._prediction_duration

    def prediction_latency(self) -> float:
        """Average virtual seconds per query (``pl``)."""
        if self._prediction_count == 0:
            return 0.0
        return self._prediction_duration / self._prediction_count

    def state_dict(self) -> Dict[str, Any]:
        return {
            "next_time": self._next_time,
            "prediction_count": self._prediction_count,
            "prediction_duration": self._prediction_duration,
            "clock_origin": self._clock_origin,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._next_time = float(state["next_time"])
        self._prediction_count = int(state["prediction_count"])
        self._prediction_duration = float(state["prediction_duration"])
        origin = state["clock_origin"]
        self._clock_origin = None if origin is None else float(origin)

    @property
    def next_training_time(self) -> float:
        """Virtual time at/after which the next training fires."""
        return self._next_time

    def __repr__(self) -> str:
        return (
            f"DynamicScheduler(slack={self.slack}, "
            f"next={self._next_time:.4f})"
        )
