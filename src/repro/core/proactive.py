"""Proactive trainer (§3.3 and §4.4 of the paper).

Each invocation is exactly one iteration of mini-batch SGD: the
pipeline manager hands over a sample of materialized feature chunks
and the current model, the trainer computes one gradient over their
union and applies one optimizer step. Because the optimizer carries
all cross-iteration state, proactive-training instances are
conditionally independent — they can run at arbitrary times without a
long-lived training loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.manager import SampledChunk
from repro.exceptions import ValidationError
from repro.execution.engine import LocalExecutionEngine
from repro.ml.sgd import SGDTrainer
from repro.pipeline.component import Features, union_features


@dataclass(frozen=True)
class ProactiveOutcome:
    """Result of one proactive-training instance."""

    objective: float
    rows: int
    chunks: int
    chunks_materialized: int
    started_at: float
    duration: float


def combine_chunks(samples: Sequence[SampledChunk]) -> Features:
    """Union the sampled feature chunks into one training batch.

    This is the paper's ``context.union`` step before the SGD
    iteration. Dense and sparse chunks must not be mixed — a pipeline
    emits one representation consistently.
    """
    if not samples:
        raise ValidationError("cannot combine an empty sample")
    try:
        return union_features(
            Features(matrix=s.chunk.features, labels=s.chunk.labels)
            for s in samples
        )
    except ValueError as error:
        raise ValidationError(str(error)) from None


class ProactiveTrainer:
    """Executes single SGD iterations on sampled historical data.

    Parameters
    ----------
    trainer:
        The model/optimizer pair (state persists across instances).
    engine:
        Execution engine used to run (and cost-account) the step.
    """

    def __init__(
        self, trainer: SGDTrainer, engine: LocalExecutionEngine
    ) -> None:
        self.trainer = trainer
        self.engine = engine
        #: Number of proactive-training instances executed.
        self.instances_run = 0

    def run(self, samples: Sequence[SampledChunk]) -> ProactiveOutcome:
        """One proactive training over the sampled chunks.

        A sample whose every chunk is empty (all rows filtered as
        anomalous) yields a zero-row batch; the SGD step is skipped —
        there is no gradient to compute — and the outcome reports
        ``rows=0``.
        """
        started_at = self.engine.total_cost()
        batch = combine_chunks(samples)
        if batch.num_rows:
            objective = self.engine.train_step(
                self.trainer, batch.matrix, batch.labels
            )
        else:
            objective = 0.0
        duration = self.engine.total_cost() - started_at
        self.instances_run += 1
        return ProactiveOutcome(
            objective=objective,
            rows=batch.num_rows,
            chunks=len(samples),
            chunks_materialized=sum(
                1 for s in samples if s.was_materialized
            ),
            started_at=started_at,
            duration=duration,
        )
