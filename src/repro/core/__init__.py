"""The paper's contribution: the continuous deployment platform.

* :mod:`repro.core.scheduler` — when proactive training runs (§4.1).
* :mod:`repro.core.proactive` — one SGD iteration per trigger (§3.3).
* :mod:`repro.core.pipeline_manager` — the central component wiring
  pipeline, model, data manager, and execution engine (§4.3).
* :mod:`repro.core.platform` — the assembled platform (Figure 3).
* :mod:`repro.core.deployment` — the three deployment approaches
  compared in Experiment 1 (online, periodical, continuous).
"""

from repro.core.config import (
    ContinuousConfig,
    OnlineConfig,
    PeriodicalConfig,
    ScheduleConfig,
)
from repro.core.deployment import (
    ContinuousDeployment,
    Deployment,
    DeploymentResult,
    OnlineDeployment,
    PeriodicalDeployment,
    ThresholdRetrainingDeployment,
)
from repro.core.pipeline_manager import PipelineManager
from repro.core.platform import ContinuousDeploymentPlatform
from repro.core.proactive import ProactiveTrainer
from repro.core.scheduler import (
    DynamicScheduler,
    Scheduler,
    StaticScheduler,
)

__all__ = [
    "ScheduleConfig",
    "OnlineConfig",
    "PeriodicalConfig",
    "ContinuousConfig",
    "Scheduler",
    "StaticScheduler",
    "DynamicScheduler",
    "ProactiveTrainer",
    "PipelineManager",
    "ContinuousDeploymentPlatform",
    "Deployment",
    "DeploymentResult",
    "OnlineDeployment",
    "PeriodicalDeployment",
    "ContinuousDeployment",
    "ThresholdRetrainingDeployment",
]
