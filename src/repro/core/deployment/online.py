"""Online deployment baseline (§5.2).

Pure online learning: every incoming chunk is preprocessed through the
pipeline's online path and consumed by exactly one SGD step. Nothing
is stored, nothing is revisited — fast, but every data point is seen
only once, so updates are noisy (the paper's explanation for its
higher error rate).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.deployment.base import Deployment, DeploymentResult
from repro.data.table import Table
from repro.execution.cost import CostModel
from repro.execution.engine import LocalExecutionEngine
from repro.exceptions import PipelineError
from repro.ml.models.base import LinearSGDModel
from repro.ml.optim.base import Optimizer
from repro.ml.sgd import SGDTrainer, TrainingResult
from repro.obs.telemetry import Telemetry
from repro.pipeline.component import Features, union_features
from repro.pipeline.pipeline import Pipeline


class OnlineDeployment(Deployment):
    """Deploy the pipeline, update the model by online SGD only."""

    approach = "online"

    def __init__(
        self,
        pipeline: Pipeline,
        model: LinearSGDModel,
        optimizer: Optimizer,
        metric: str = "classification",
        cost_model: Optional[CostModel] = None,
        online_batch_rows: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        checkpoint=None,
        fault_plan=None,
        retry=None,
    ) -> None:
        super().__init__(
            metric,
            telemetry=telemetry,
            checkpoint=checkpoint,
            fault_plan=fault_plan,
            retry=retry,
        )
        self.online_batch_rows = online_batch_rows
        self.pipeline = pipeline
        self._model = model
        self.optimizer = optimizer
        self.engine = LocalExecutionEngine(
            cost_model, telemetry=self.telemetry
        )
        self.trainer = SGDTrainer(model, optimizer)
        self.online_updates = 0

    @property
    def model(self) -> LinearSGDModel:
        return self._model

    # ------------------------------------------------------------------
    def initial_fit(self, tables: List[Table], **kwargs) -> TrainingResult:
        """Fit statistics on the initial data and batch-train the model."""
        if not tables:
            raise PipelineError("initial_fit needs at least one table")
        parts: List[Features] = []
        for table in tables:
            parts.append(self.engine.online_pass(self.pipeline, table))
        batch = union_features(parts)
        return self.engine.train_full(
            self.trainer, batch.matrix, batch.labels, **kwargs
        )

    def _predict(self, table: Table) -> Tuple[np.ndarray, np.ndarray]:
        features = self.engine.transform_only(self.pipeline, table)
        predictions = self.engine.predict(self._model, features.matrix)
        return predictions, np.asarray(features.labels)

    def _observe(self, table: Table, chunk_index: int) -> None:
        features = self.engine.online_pass(self.pipeline, table)
        if not features.num_rows:
            return
        rows = self.online_batch_rows
        if rows is None or rows >= features.num_rows:
            self.engine.train_step(
                self.trainer, features.matrix, features.labels
            )
        else:
            for start in range(0, features.num_rows, rows):
                stop = start + rows
                self.engine.train_step(
                    self.trainer,
                    features.matrix[start:stop],
                    features.labels[start:stop],
                )
        self.online_updates += 1

    def _current_cost(self) -> float:
        return self.engine.total_cost()

    def _finalize(self, result: DeploymentResult) -> None:
        result.counters["online_updates"] = self.online_updates
        result.cost_breakdown = self.engine.tracker.breakdown()
        result.wall_seconds = self.engine.wall.elapsed

    # ------------------------------------------------------------------
    # Checkpoint/recovery hooks
    # ------------------------------------------------------------------
    def _artifacts(self):
        return (self.pipeline, self._model, self.optimizer)

    def _install_artifacts(self, pipeline, model, optimizer) -> None:
        self.pipeline = pipeline
        self._model = model
        self.optimizer = optimizer
        self.trainer = SGDTrainer(model, optimizer)

    def _checkpoint_state(self) -> Dict[str, Any]:
        return {
            "online_updates": self.online_updates,
            "cost": self.engine.tracker.state_dict(),
        }

    def _restore_state(self, state: Dict[str, Any]) -> None:
        self.online_updates = int(state["online_updates"])
        self.engine.tracker.load_state_dict(state["cost"])

