"""Continuous deployment — the paper's contribution, in the
Experiment-1 harness shape.

A thin adapter around
:class:`~repro.core.platform.ContinuousDeploymentPlatform` that plugs
the platform into the shared prequential loop so it can be compared
head-to-head with the online and periodical baselines.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import ContinuousConfig
from repro.core.deployment.base import Deployment, DeploymentResult
from repro.core.platform import ContinuousDeploymentPlatform
from repro.data.table import Table
from repro.execution.cost import CostModel
from repro.ml.models.base import LinearSGDModel
from repro.ml.optim.base import Optimizer
from repro.ml.sgd import TrainingResult
from repro.obs.telemetry import Telemetry
from repro.pipeline.pipeline import Pipeline
from repro.utils.rng import SeedLike


class ContinuousDeployment(Deployment):
    """Online updates + scheduled proactive training on sampled history."""

    approach = "continuous"

    def __init__(
        self,
        pipeline: Pipeline,
        model: LinearSGDModel,
        optimizer: Optimizer,
        config: Optional[ContinuousConfig] = None,
        metric: str = "classification",
        cost_model: Optional[CostModel] = None,
        seed: SeedLike = None,
        telemetry: Optional[Telemetry] = None,
        checkpoint=None,
        fault_plan=None,
        retry=None,
    ) -> None:
        super().__init__(
            metric,
            telemetry=telemetry,
            checkpoint=checkpoint,
            fault_plan=fault_plan,
            retry=retry,
        )
        # The deployment loop owns checkpoint cadence; the platform
        # shares the loop's injector/retrier so fault occurrence
        # counts are global across stream, storage, and checkpoint
        # sites.
        self.platform = ContinuousDeploymentPlatform(
            pipeline=pipeline,
            model=model,
            optimizer=optimizer,
            config=config,
            cost_model=cost_model,
            seed=seed,
            telemetry=self.telemetry,
            fault_plan=self.reliability.injector,
            retry=self.reliability.retrier,
        )

    @property
    def model(self) -> LinearSGDModel:
        return self.platform.model

    @property
    def config(self) -> ContinuousConfig:
        return self.platform.config

    # ------------------------------------------------------------------
    def initial_fit(self, tables: List[Table], **kwargs) -> TrainingResult:
        """Initial training; the initial data enters the sample pool."""
        return self.platform.initial_fit(tables, store=True, **kwargs)

    def _predict(self, table: Table) -> Tuple[np.ndarray, np.ndarray]:
        return self.platform.predict(table)

    def _observe(self, table: Table, chunk_index: int) -> None:
        self.platform.observe(table)

    def _current_cost(self) -> float:
        return self.platform.engine.total_cost()

    def _finalize(self, result: DeploymentResult) -> None:
        outcomes = self.platform.proactive_outcomes
        result.counters["proactive_trainings"] = len(outcomes)
        result.counters["chunks_sampled"] = int(
            np.sum([o.chunks for o in outcomes])
        )
        result.counters["chunks_rematerialized"] = int(
            np.sum([o.chunks - o.chunks_materialized for o in outcomes])
        )
        result.cost_breakdown = self.platform.engine.tracker.breakdown()
        result.wall_seconds = self.platform.engine.wall.elapsed
        result.training_durations = [o.duration for o in outcomes]

    # ------------------------------------------------------------------
    # Checkpoint/recovery hooks
    # ------------------------------------------------------------------
    def _artifacts(self):
        manager = self.platform.manager
        return (manager.pipeline, manager.model, manager.optimizer)

    def _install_artifacts(self, pipeline, model, optimizer) -> None:
        self.platform.install_artifacts(pipeline, model, optimizer)

    def _chunk_store(self):
        return self.platform.data_manager.storage

    def _checkpoint_state(self) -> Dict[str, Any]:
        return self.platform.state_dict()

    def _restore_state(self, state: Dict[str, Any]) -> None:
        self.platform.load_state_dict(state)

    # ------------------------------------------------------------------
    def materialization_utilization(self) -> float:
        """Empirical μ of this run (see §3.2.2)."""
        return self.platform.data_manager.stats.utilization()
