"""Periodical deployment baseline (§5.2, TFX/Velox-style).

Online SGD between retrainings, plus a full retraining over the entire
stored raw history every ``retrain_every_chunks`` chunks. Warm
starting (on by default, as in the paper's experiments) carries the
pipeline statistics, model weights, and optimizer state into each
retraining; the cold variant is an ablation.

The cost signature is the paper's: each retraining re-reads and
re-preprocesses the whole history and then iterates SGD to
convergence, so the cumulative cost curve jumps at every retraining
(Figure 4(b)/(d)).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import PeriodicalConfig
from repro.core.deployment.base import Deployment, DeploymentResult
from repro.core.pipeline_manager import PipelineManager
from repro.data.manager import DataManager
from repro.data.table import Table
from repro.execution.cost import CostModel
from repro.execution.engine import LocalExecutionEngine
from repro.ml.models.base import LinearSGDModel
from repro.ml.optim.base import Optimizer
from repro.ml.sgd import TrainingResult
from repro.obs import names
from repro.obs.telemetry import Telemetry
from repro.pipeline.pipeline import Pipeline
from repro.utils.rng import SeedLike


class PeriodicalDeployment(Deployment):
    """Online updates + periodic full retraining on all history."""

    approach = "periodical"

    def __init__(
        self,
        pipeline: Pipeline,
        model: LinearSGDModel,
        optimizer: Optimizer,
        config: Optional[PeriodicalConfig] = None,
        metric: str = "classification",
        cost_model: Optional[CostModel] = None,
        seed: SeedLike = None,
        online_batch_rows: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        checkpoint=None,
        fault_plan=None,
        retry=None,
    ) -> None:
        super().__init__(
            metric,
            telemetry=telemetry,
            checkpoint=checkpoint,
            fault_plan=fault_plan,
            retry=retry,
        )
        self.config = config if config is not None else PeriodicalConfig()
        self.online_batch_rows = online_batch_rows
        self.engine = LocalExecutionEngine(
            cost_model, telemetry=self.telemetry
        )
        # Periodical deployment stores raw history only (it retrains
        # from raw data); no feature materialization budget applies.
        self.data_manager = DataManager(seed=seed, telemetry=self.telemetry)
        self._wire_reliability(self.data_manager)
        self.manager = PipelineManager(
            pipeline=pipeline,
            model=model,
            optimizer=optimizer,
            data_manager=self.data_manager,
            engine=self.engine,
        )
        self._seed = seed
        self.online_updates = 0
        self.retrainings: List[TrainingResult] = []
        self.retrain_durations: List[float] = []

    @property
    def model(self) -> LinearSGDModel:
        return self.manager.model

    # ------------------------------------------------------------------
    def initial_fit(self, tables: List[Table], **kwargs) -> TrainingResult:
        """Initial training; the initial data enters the history."""
        return self.manager.initial_fit(tables, store=True, **kwargs)

    def _predict(self, table: Table) -> Tuple[np.ndarray, np.ndarray]:
        return self.manager.answer_queries(table)

    def _observe(self, table: Table, chunk_index: int) -> None:
        __, features = self.manager.process_training_chunk(
            table, online_statistics=True, store=False
        )
        if features.num_rows:
            self.manager.online_step(features, self.online_batch_rows)
            self.online_updates += 1
        if (chunk_index + 1) % self.config.retrain_every_chunks == 0:
            self._retrain()

    def _retrain(self) -> None:
        with self.telemetry.tracer.span(names.PLATFORM_FULL_RETRAIN) as span:
            started_at = self.engine.total_cost()
            result = self.manager.full_retrain(
                batch_size=self.config.batch_size,
                max_iterations=self.config.max_epoch_iterations,
                tolerance=self.config.tolerance,
                warm_start=self.config.warm_start,
                seed=self._seed,
            )
            self.retrainings.append(result)
            self.retrain_durations.append(
                self.engine.total_cost() - started_at
            )
            span.set(
                iterations=result.iterations, converged=result.converged
            )

    def _current_cost(self) -> float:
        return self.engine.total_cost()

    def _finalize(self, result: DeploymentResult) -> None:
        result.counters["online_updates"] = self.online_updates
        result.counters["retrainings"] = len(self.retrainings)
        result.counters["retrain_iterations"] = int(
            np.sum([r.iterations for r in self.retrainings])
        )
        result.cost_breakdown = self.engine.tracker.breakdown()
        result.wall_seconds = self.engine.wall.elapsed
        result.training_durations = list(self.retrain_durations)

    # ------------------------------------------------------------------
    # Checkpoint/recovery hooks
    # ------------------------------------------------------------------
    def _artifacts(self):
        return (
            self.manager.pipeline,
            self.manager.model,
            self.manager.optimizer,
        )

    def _install_artifacts(self, pipeline, model, optimizer) -> None:
        self.manager.replace_artifacts(pipeline, model, optimizer)

    def _chunk_store(self):
        return self.data_manager.storage

    def _checkpoint_state(self) -> Dict[str, Any]:
        return {
            "online_updates": self.online_updates,
            "retrainings": list(self.retrainings),
            "retrain_durations": list(self.retrain_durations),
            "cost": self.engine.tracker.state_dict(),
            "data_manager": self.data_manager.state_dict(),
        }

    def _restore_state(self, state: Dict[str, Any]) -> None:
        self.online_updates = int(state["online_updates"])
        self.retrainings = list(state["retrainings"])
        self.retrain_durations = list(state["retrain_durations"])
        self.engine.tracker.load_state_dict(state["cost"])
        self.data_manager.load_state_dict(state["data_manager"])
