"""Velox-style threshold-triggered retraining baseline.

The paper's related work (§6) describes Velox: online learning plus a
full retraining that fires when the monitored error rate exceeds a
threshold, rather than on a fixed period. This deployment implements
that policy so it can be compared against the periodical and
continuous approaches.

The monitor is a sliding window over recent per-chunk error rates; a
retraining triggers when the windowed error exceeds
``baseline * (1 + tolerance_ratio)``, where the baseline is the
windowed error measured right after the last (re)training — i.e. the
platform retrains when quality has *degraded* relative to its own
post-training level, Velox's behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import PeriodicalConfig
from repro.core.deployment.base import Deployment, DeploymentResult
from repro.core.pipeline_manager import PipelineManager
from repro.data.manager import DataManager
from repro.data.table import Table
from repro.execution.cost import CostModel
from repro.execution.engine import LocalExecutionEngine
from repro.exceptions import ValidationError
from repro.ml.models.base import LinearSGDModel
from repro.ml.optim.base import Optimizer
from repro.ml.sgd import TrainingResult
from repro.obs import names
from repro.obs.telemetry import Telemetry
from repro.pipeline.pipeline import Pipeline
from repro.utils.rng import SeedLike


class ThresholdRetrainingDeployment(Deployment):
    """Online updates + full retraining when quality degrades.

    Parameters
    ----------
    tolerance_ratio:
        Relative degradation that triggers a retraining: with 0.1, a
        windowed error 10% above the post-training baseline fires.
    window_chunks:
        Length of the sliding error window (in chunks).
    cooldown_chunks:
        Minimum chunks between retrainings (prevents thrashing while
        the window still contains pre-retraining errors).
    min_absolute_delta:
        Absolute error increase additionally required to fire. A
        purely relative threshold is meaningless when the baseline
        error is near zero (any noise is a huge *ratio*); this floor
        keeps a well-fitted model from retraining on noise.
    config:
        Retraining settings (iterations, warm start, …); the
        ``retrain_every_chunks`` field is ignored — the monitor decides.
    """

    approach = "threshold"

    def __init__(
        self,
        pipeline: Pipeline,
        model: LinearSGDModel,
        optimizer: Optimizer,
        tolerance_ratio: float = 0.1,
        window_chunks: int = 10,
        cooldown_chunks: int = 10,
        min_absolute_delta: float = 0.01,
        config: Optional[PeriodicalConfig] = None,
        metric: str = "classification",
        cost_model: Optional[CostModel] = None,
        seed: SeedLike = None,
        online_batch_rows: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        checkpoint=None,
        fault_plan=None,
        retry=None,
    ) -> None:
        super().__init__(
            metric,
            telemetry=telemetry,
            checkpoint=checkpoint,
            fault_plan=fault_plan,
            retry=retry,
        )
        if tolerance_ratio <= 0:
            raise ValidationError(
                f"tolerance_ratio must be > 0, got {tolerance_ratio}"
            )
        if window_chunks < 1:
            raise ValidationError(
                f"window_chunks must be >= 1, got {window_chunks}"
            )
        if cooldown_chunks < 0:
            raise ValidationError(
                f"cooldown_chunks must be >= 0, got {cooldown_chunks}"
            )
        if min_absolute_delta < 0:
            raise ValidationError(
                f"min_absolute_delta must be >= 0, "
                f"got {min_absolute_delta}"
            )
        self.tolerance_ratio = float(tolerance_ratio)
        self.window_chunks = int(window_chunks)
        self.cooldown_chunks = int(cooldown_chunks)
        self.min_absolute_delta = float(min_absolute_delta)
        self.config = config if config is not None else PeriodicalConfig()
        self.online_batch_rows = online_batch_rows
        self.engine = LocalExecutionEngine(
            cost_model, telemetry=self.telemetry
        )
        self.data_manager = DataManager(seed=seed, telemetry=self.telemetry)
        self._wire_reliability(self.data_manager)
        self.manager = PipelineManager(
            pipeline=pipeline,
            model=model,
            optimizer=optimizer,
            data_manager=self.data_manager,
            engine=self.engine,
        )
        self._seed = seed
        self._window: deque = deque(maxlen=self.window_chunks)
        self._baseline: Optional[float] = None
        self._chunks_since_retrain = 0
        self.online_updates = 0
        self.retrainings: List[TrainingResult] = []
        self.retrain_durations: List[float] = []
        #: Chunk indices at which retrainings fired (for analysis).
        self.retrain_chunks: List[int] = []

    @property
    def model(self) -> LinearSGDModel:
        return self.manager.model

    # ------------------------------------------------------------------
    def initial_fit(self, tables: List[Table], **kwargs) -> TrainingResult:
        return self.manager.initial_fit(tables, store=True, **kwargs)

    def _predict(self, table: Table) -> Tuple[np.ndarray, np.ndarray]:
        predictions, labels = self.manager.answer_queries(table)
        if len(labels):
            self._window.append(
                self._chunk_error(predictions, labels) / len(labels)
            )
        return predictions, labels

    def _observe(self, table: Table, chunk_index: int) -> None:
        __, features = self.manager.process_training_chunk(
            table, online_statistics=True, store=False
        )
        if features.num_rows:
            self.manager.online_step(features, self.online_batch_rows)
            self.online_updates += 1
        self._chunks_since_retrain += 1
        if self._should_retrain():
            self._retrain(chunk_index)

    # ------------------------------------------------------------------
    def _should_retrain(self) -> bool:
        if len(self._window) < self.window_chunks:
            return False
        if self._chunks_since_retrain < self.cooldown_chunks:
            return False
        current = self.windowed_error()
        if self._baseline is None:
            # No baseline yet: adopt the first full window as baseline.
            self._baseline = current
            return False
        degraded_relative = current > self._baseline * (
            1.0 + self.tolerance_ratio
        )
        degraded_absolute = (
            current - self._baseline > self.min_absolute_delta
        )
        return degraded_relative and degraded_absolute

    def _retrain(self, chunk_index: int) -> None:
        with self.telemetry.tracer.span(
            names.PLATFORM_FULL_RETRAIN, chunk=chunk_index
        ) as span:
            started_at = self.engine.total_cost()
            result = self.manager.full_retrain(
                batch_size=self.config.batch_size,
                max_iterations=self.config.max_epoch_iterations,
                tolerance=self.config.tolerance,
                warm_start=self.config.warm_start,
                seed=self._seed,
            )
            self.retrainings.append(result)
            self.retrain_durations.append(
                self.engine.total_cost() - started_at
            )
            self.retrain_chunks.append(chunk_index)
            span.set(
                iterations=result.iterations, converged=result.converged
            )
        self._chunks_since_retrain = 0
        self._window.clear()
        self._baseline = None  # re-measured from the next full window

    def windowed_error(self) -> float:
        """Mean per-row error over the sliding window (0 when empty)."""
        if not self._window:
            return 0.0
        return float(np.mean(self._window))

    # ------------------------------------------------------------------
    def _current_cost(self) -> float:
        return self.engine.total_cost()

    def _finalize(self, result: DeploymentResult) -> None:
        result.counters["online_updates"] = self.online_updates
        result.counters["retrainings"] = len(self.retrainings)
        result.cost_breakdown = self.engine.tracker.breakdown()
        result.wall_seconds = self.engine.wall.elapsed
        result.training_durations = list(self.retrain_durations)

    # ------------------------------------------------------------------
    # Checkpoint/recovery hooks
    # ------------------------------------------------------------------
    def _artifacts(self):
        return (
            self.manager.pipeline,
            self.manager.model,
            self.manager.optimizer,
        )

    def _install_artifacts(self, pipeline, model, optimizer) -> None:
        self.manager.replace_artifacts(pipeline, model, optimizer)

    def _chunk_store(self):
        return self.data_manager.storage

    def _checkpoint_state(self) -> Dict[str, Any]:
        return {
            "online_updates": self.online_updates,
            "retrainings": list(self.retrainings),
            "retrain_durations": list(self.retrain_durations),
            "retrain_chunks": list(self.retrain_chunks),
            "window": list(self._window),
            "baseline": self._baseline,
            "chunks_since_retrain": self._chunks_since_retrain,
            "cost": self.engine.tracker.state_dict(),
            "data_manager": self.data_manager.state_dict(),
        }

    def _restore_state(self, state: Dict[str, Any]) -> None:
        self.online_updates = int(state["online_updates"])
        self.retrainings = list(state["retrainings"])
        self.retrain_durations = list(state["retrain_durations"])
        self.retrain_chunks = list(state["retrain_chunks"])
        self._window = deque(
            state["window"], maxlen=self.window_chunks
        )
        self._baseline = state["baseline"]
        self._chunks_since_retrain = int(state["chunks_since_retrain"])
        self.engine.tracker.load_state_dict(state["cost"])
        self.data_manager.load_state_dict(state["data_manager"])
