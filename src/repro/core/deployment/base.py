"""Deployment base class: the prequential test-then-train loop.

All three approaches share the same outer loop (§5.1's deployment
process): for every arriving chunk, first answer it as prediction
queries (test), then use it as training data (train). Subclasses only
differ in what "train" means:

* online — one online SGD step;
* periodical — online step + periodic full retraining;
* continuous — online step + scheduled proactive training.

The loop records, after every chunk, the cumulative prequential error
and the cumulative deployment cost — exactly the two series plotted in
Figure 4 of the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.data.storage import ChunkStorage
from repro.data.table import Table
from repro.exceptions import ReliabilityError, ValidationError
from repro.execution.cost import CostBreakdown
from repro.ml.metrics import PrequentialTracker
from repro.ml.models.base import LinearSGDModel
from repro.ml.optim.base import Optimizer
from repro.ml.sgd import TrainingResult
from repro.obs import names
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.persistence import DeploymentBundle
from repro.pipeline.pipeline import Pipeline
from repro.reliability.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    PlatformCheckpoint,
)
from repro.reliability.faults import FaultInjector, FaultPlan
from repro.reliability.retry import Retrier, RetryPolicy
from repro.reliability.runtime import RecoveryInfo, ReliabilityRuntime


@dataclass
class DeploymentResult:
    """Everything a deployment run produced.

    ``error_history[i]`` / ``cost_history[i]`` are the cumulative
    prequential error and cumulative cost after chunk ``i`` — the
    Figure 4 series. ``counters`` holds event counts (online updates,
    proactive trainings, retrainings).
    """

    approach: str
    error_history: List[float] = field(default_factory=list)
    cost_history: List[float] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    cost_breakdown: Optional[CostBreakdown] = None
    wall_seconds: float = 0.0
    #: Virtual-clock duration of each training event beyond the online
    #: updates (proactive trainings or full retrainings). §5.5 of the
    #: paper compares these: long retrainings leave the served model
    #: stale, sub-second proactive trainings do not.
    training_durations: List[float] = field(default_factory=list)
    #: The run's telemetry bundle (``None`` when telemetry was not
    #: enabled): structured events, metrics, and ``.summary()``.
    telemetry: Optional[Telemetry] = None
    #: Set when this run resumed from a checkpoint (see
    #: :meth:`Deployment.recover`); ``None`` for uninterrupted runs.
    recovery: Optional[RecoveryInfo] = None

    @property
    def chunks_processed(self) -> int:
        return len(self.error_history)

    @property
    def final_error(self) -> float:
        """Cumulative prequential error at the end of the deployment."""
        if not self.error_history:
            raise ValidationError("deployment processed no chunks")
        return self.error_history[-1]

    @property
    def average_error(self) -> float:
        """Mean of the cumulative-error curve (paper's comparisons)."""
        if not self.error_history:
            raise ValidationError("deployment processed no chunks")
        return float(np.mean(self.error_history))

    @property
    def total_cost(self) -> float:
        """Cumulative deployment cost at the end (cost units)."""
        if not self.cost_history:
            raise ValidationError("deployment processed no chunks")
        return self.cost_history[-1]

    @property
    def average_training_duration(self) -> float:
        """Mean duration of a training event (0 when none ran).

        For the continuous approach this is the per-instance proactive
        training time; for the periodical/threshold baselines, the
        per-retraining time — the model-staleness window of §5.5.
        """
        if not self.training_durations:
            return 0.0
        return float(np.mean(self.training_durations))

    @property
    def max_training_duration(self) -> float:
        """Longest single training event (worst-case staleness)."""
        if not self.training_durations:
            return 0.0
        return float(max(self.training_durations))


class Deployment(ABC):
    """Shared prequential loop for the three deployment approaches.

    Parameters
    ----------
    metric:
        ``"classification"`` — prequential misclassification rate
        (URL); or ``"regression"`` — prequential RMSE in the model's
        (log) target space, i.e. RMSLE for the Taxi setup.
    telemetry:
        Optional observability bundle; subclasses thread it through
        their engines and platforms. The finished
        :class:`DeploymentResult` carries it back to the caller.
    checkpoint:
        Optional checkpointing: a directory path, a
        :class:`~repro.reliability.checkpoint.CheckpointConfig`, or a
        prebuilt store. When set, the loop writes a full platform
        checkpoint every ``cadence_chunks`` chunks and
        :meth:`recover` can resume an interrupted run.
    fault_plan:
        Optional deterministic fault injection (see
        :mod:`repro.reliability.faults`); the injector is shared with
        the subclass's storage so occurrence counts are global.
    retry:
        Optional :class:`~repro.reliability.retry.RetryPolicy` masking
        transient (``io_error``) faults on stream and storage reads.
    """

    #: Set by subclasses; used in reports and figures.
    approach: str = "base"

    def __init__(
        self,
        metric: str = "classification",
        telemetry: Optional[Telemetry] = None,
        checkpoint: Union[
            CheckpointStore, CheckpointConfig, str, None
        ] = None,
        fault_plan: Union[FaultPlan, FaultInjector, None] = None,
        retry: Union[RetryPolicy, Retrier, None] = None,
    ) -> None:
        if metric not in ("classification", "regression"):
            raise ValidationError(
                f"metric must be 'classification' or 'regression', "
                f"got {metric!r}"
            )
        self.metric = metric
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.prequential = PrequentialTracker(
            kind="rate" if metric == "classification" else "rmse"
        )
        self.reliability = ReliabilityRuntime(
            checkpoint=checkpoint,
            fault_plan=fault_plan,
            retry=retry,
            telemetry=self.telemetry,
        )

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @abstractmethod
    def initial_fit(self, tables: List[Table], **kwargs) -> TrainingResult:
        """Pre-deployment training on the initial dataset."""

    @abstractmethod
    def _predict(self, table: Table) -> tuple[np.ndarray, np.ndarray]:
        """Serve the chunk as prediction queries: (predictions, labels)."""

    @abstractmethod
    def _observe(self, table: Table, chunk_index: int) -> None:
        """Consume the chunk as training data."""

    @property
    @abstractmethod
    def model(self) -> LinearSGDModel:
        """The currently deployed model."""

    @abstractmethod
    def _current_cost(self) -> float:
        """Cumulative cost units so far."""

    @abstractmethod
    def _finalize(self, result: DeploymentResult) -> None:
        """Fill approach-specific counters/breakdowns into ``result``."""

    # ------------------------------------------------------------------
    # Checkpoint/recovery hooks (override to support checkpointing)
    # ------------------------------------------------------------------
    def _artifacts(self) -> Tuple[Pipeline, LinearSGDModel, Optimizer]:
        """The deployed (pipeline, model, optimizer) triple."""
        raise ReliabilityError(
            f"{self.approach!r} deployment does not support "
            f"checkpointing"
        )

    def _install_artifacts(
        self,
        pipeline: Pipeline,
        model: LinearSGDModel,
        optimizer: Optimizer,
    ) -> None:
        """Replace the deployed artifacts with checkpointed ones."""
        raise ReliabilityError(
            f"{self.approach!r} deployment does not support recovery"
        )

    def _checkpoint_state(self) -> Dict[str, Any]:
        """Approach-specific mutable state to checkpoint."""
        return {}

    def _restore_state(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`_checkpoint_state`."""

    def _chunk_store(self) -> Optional[ChunkStorage]:
        """The chunk storage to spill/restore (``None`` when stateless)."""
        return None

    def _wire_reliability(self, data_manager) -> None:
        """Attach fault injection / retries to a data manager.

        Subclasses call this after building their
        :class:`~repro.data.manager.DataManager` so ``storage.read``
        faults fire on raw-chunk reads and transient ones are retried.
        """
        injector = self.reliability.injector
        if len(injector.plan):
            data_manager.storage.fault_injector = injector
        data_manager.retrier = self.reliability.retrier

    # ------------------------------------------------------------------
    # The prequential loop
    # ------------------------------------------------------------------
    def run(self, stream: Iterable[Table]) -> DeploymentResult:
        """Process the deployment stream test-then-train.

        Chunks that come out of the serving path empty (every row
        filtered as anomalous) still feed training but contribute no
        prequential measurement for that step; the previous cumulative
        value is carried forward so the histories stay aligned with
        chunk indices.
        """
        return self._run_loop(stream, resume=None)

    def recover(self, stream: Iterable[Table]) -> DeploymentResult:
        """Resume an interrupted run from the latest valid checkpoint.

        The deployment must have been constructed with the same
        configuration (and ``checkpoint=`` option) as the crashed run —
        but **not** ``initial_fit``: all fitted state comes from the
        checkpoint. ``stream`` must be the same deterministic stream
        the crashed run consumed; the already-processed prefix is
        regenerated and discarded, and processing resumes at the saved
        cursor. The completed result is byte-identical (predictions,
        cost totals, telemetry counters) to an uninterrupted run.
        """
        store = self.reliability.store
        if store is None:
            raise ReliabilityError(
                "recover() requires the deployment to be constructed "
                "with a checkpoint= option"
            )
        checkpoint = store.load_latest()
        if checkpoint.approach != self.approach:
            raise ReliabilityError(
                f"checkpoint was written by a "
                f"{checkpoint.approach!r} deployment; this one is "
                f"{self.approach!r}"
            )
        return self._run_loop(stream, resume=checkpoint)

    def _run_loop(
        self,
        stream: Iterable[Table],
        resume: Optional[PlatformCheckpoint],
    ) -> DeploymentResult:
        result = DeploymentResult(approach=self.approach)
        iterator = iter(stream)
        chunk_index = 0
        if resume is not None:
            self._restore_checkpoint(resume, result)
            self.reliability.mark_recovered(resume)
            self.reliability.skip_chunks(iterator, resume.cursor)
            chunk_index = resume.cursor
        while True:
            try:
                table = self.reliability.read_chunk(iterator)
            except StopIteration:
                break
            predictions, labels = self._predict(table)
            chunk_error: Optional[float] = None
            if len(labels):
                error_sum = self._chunk_error(predictions, labels)
                self.prequential.add_chunk(error_sum, len(labels))
                chunk_error = error_sum / len(labels)
            result.error_history.append(self.prequential.value())
            if self.telemetry.enabled:
                # Point (not span): the per-chunk quality signal the
                # health monitor windows, kept out of the span stream
                # so profile digests are unaffected.
                self.telemetry.tracer.point(
                    names.PLATFORM_CHUNK,
                    chunk=chunk_index,
                    rows=int(len(labels)),
                    error=chunk_error,
                    cumulative=self.prequential.value(),
                )
            self._observe(table, chunk_index)
            result.cost_history.append(self._current_cost())
            if self.reliability.due(chunk_index + 1):
                self._write_checkpoint(chunk_index + 1, result)
            chunk_index += 1
        self._finalize(result)
        result.recovery = self.reliability.recovery
        if self.telemetry.enabled:
            self.telemetry.flush_metrics()
            result.telemetry = self.telemetry
        return result

    def _write_checkpoint(
        self, cursor: int, result: DeploymentResult
    ) -> None:
        # begin_checkpoint() increments the written counter *before*
        # the metrics capture below so the checkpoint's own write is
        # part of the state it saves (telemetry byte-identity across
        # recovery).
        self.reliability.begin_checkpoint()
        pipeline, model, optimizer = self._artifacts()
        state: Dict[str, Any] = {
            "prequential": self.prequential.state_dict(),
            "error_history": list(result.error_history),
            "cost_history": list(result.cost_history),
            "metrics": (
                self.telemetry.metrics.state_dict()
                if self.telemetry.enabled
                else None
            ),
            "monitor": (
                self.telemetry.monitor.state_dict()
                if self.telemetry.enabled
                and self.telemetry.monitor is not None
                else None
            ),
            "lineage": (
                self.telemetry.ledger.state_dict()
                if self.telemetry.enabled
                and self.telemetry.ledger is not None
                else None
            ),
            "deployment": self._checkpoint_state(),
        }
        checkpoint = PlatformCheckpoint(
            cursor=cursor,
            approach=self.approach,
            bundle=DeploymentBundle(
                pipeline=pipeline, model=model, optimizer=optimizer
            ),
            state=state,
        )
        self.reliability.store.write(
            checkpoint, storage=self._chunk_store()
        )
        self.reliability.last_checkpoint_cursor = cursor

    def _restore_checkpoint(
        self, checkpoint: PlatformCheckpoint, result: DeploymentResult
    ) -> None:
        bundle = checkpoint.bundle
        self._install_artifacts(
            bundle.pipeline, bundle.model, bundle.optimizer
        )
        state = checkpoint.state
        self.prequential.load_state_dict(state["prequential"])
        result.error_history = list(state["error_history"])
        result.cost_history = list(state["cost_history"])
        if state.get("metrics") is not None and self.telemetry.enabled:
            self.telemetry.metrics.load_state_dict(state["metrics"])
        if (
            state.get("monitor") is not None
            and self.telemetry.enabled
            and self.telemetry.monitor is not None
        ):
            self.telemetry.monitor.load_state_dict(state["monitor"])
        if (
            state.get("lineage") is not None
            and self.telemetry.enabled
            and self.telemetry.ledger is not None
        ):
            self.telemetry.ledger.load_state_dict(state["lineage"])
        storage = self._chunk_store()
        if storage is not None and checkpoint.manifest is not None:
            self.reliability.store.restore_storage(
                storage, checkpoint.manifest
            )
        self._restore_state(state["deployment"])

    def _chunk_error(
        self, predictions: np.ndarray, labels: np.ndarray
    ) -> float:
        if self.metric == "classification":
            return float(np.sum(predictions != labels))
        residual = predictions - labels
        return float(np.sum(residual * residual))
