"""Deployment base class: the prequential test-then-train loop.

All three approaches share the same outer loop (§5.1's deployment
process): for every arriving chunk, first answer it as prediction
queries (test), then use it as training data (train). Subclasses only
differ in what "train" means:

* online — one online SGD step;
* periodical — online step + periodic full retraining;
* continuous — online step + scheduled proactive training.

The loop records, after every chunk, the cumulative prequential error
and the cumulative deployment cost — exactly the two series plotted in
Figure 4 of the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.data.table import Table
from repro.exceptions import ValidationError
from repro.execution.cost import CostBreakdown
from repro.ml.metrics import PrequentialTracker
from repro.ml.models.base import LinearSGDModel
from repro.ml.sgd import TrainingResult
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry


@dataclass
class DeploymentResult:
    """Everything a deployment run produced.

    ``error_history[i]`` / ``cost_history[i]`` are the cumulative
    prequential error and cumulative cost after chunk ``i`` — the
    Figure 4 series. ``counters`` holds event counts (online updates,
    proactive trainings, retrainings).
    """

    approach: str
    error_history: List[float] = field(default_factory=list)
    cost_history: List[float] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    cost_breakdown: Optional[CostBreakdown] = None
    wall_seconds: float = 0.0
    #: Virtual-clock duration of each training event beyond the online
    #: updates (proactive trainings or full retrainings). §5.5 of the
    #: paper compares these: long retrainings leave the served model
    #: stale, sub-second proactive trainings do not.
    training_durations: List[float] = field(default_factory=list)
    #: The run's telemetry bundle (``None`` when telemetry was not
    #: enabled): structured events, metrics, and ``.summary()``.
    telemetry: Optional[Telemetry] = None

    @property
    def chunks_processed(self) -> int:
        return len(self.error_history)

    @property
    def final_error(self) -> float:
        """Cumulative prequential error at the end of the deployment."""
        if not self.error_history:
            raise ValidationError("deployment processed no chunks")
        return self.error_history[-1]

    @property
    def average_error(self) -> float:
        """Mean of the cumulative-error curve (paper's comparisons)."""
        if not self.error_history:
            raise ValidationError("deployment processed no chunks")
        return float(np.mean(self.error_history))

    @property
    def total_cost(self) -> float:
        """Cumulative deployment cost at the end (cost units)."""
        if not self.cost_history:
            raise ValidationError("deployment processed no chunks")
        return self.cost_history[-1]

    @property
    def average_training_duration(self) -> float:
        """Mean duration of a training event (0 when none ran).

        For the continuous approach this is the per-instance proactive
        training time; for the periodical/threshold baselines, the
        per-retraining time — the model-staleness window of §5.5.
        """
        if not self.training_durations:
            return 0.0
        return float(np.mean(self.training_durations))

    @property
    def max_training_duration(self) -> float:
        """Longest single training event (worst-case staleness)."""
        if not self.training_durations:
            return 0.0
        return float(max(self.training_durations))


class Deployment(ABC):
    """Shared prequential loop for the three deployment approaches.

    Parameters
    ----------
    metric:
        ``"classification"`` — prequential misclassification rate
        (URL); or ``"regression"`` — prequential RMSE in the model's
        (log) target space, i.e. RMSLE for the Taxi setup.
    telemetry:
        Optional observability bundle; subclasses thread it through
        their engines and platforms. The finished
        :class:`DeploymentResult` carries it back to the caller.
    """

    #: Set by subclasses; used in reports and figures.
    approach: str = "base"

    def __init__(
        self,
        metric: str = "classification",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if metric not in ("classification", "regression"):
            raise ValidationError(
                f"metric must be 'classification' or 'regression', "
                f"got {metric!r}"
            )
        self.metric = metric
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.prequential = PrequentialTracker(
            kind="rate" if metric == "classification" else "rmse"
        )

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @abstractmethod
    def initial_fit(self, tables: List[Table], **kwargs) -> TrainingResult:
        """Pre-deployment training on the initial dataset."""

    @abstractmethod
    def _predict(self, table: Table) -> tuple[np.ndarray, np.ndarray]:
        """Serve the chunk as prediction queries: (predictions, labels)."""

    @abstractmethod
    def _observe(self, table: Table, chunk_index: int) -> None:
        """Consume the chunk as training data."""

    @property
    @abstractmethod
    def model(self) -> LinearSGDModel:
        """The currently deployed model."""

    @abstractmethod
    def _current_cost(self) -> float:
        """Cumulative cost units so far."""

    @abstractmethod
    def _finalize(self, result: DeploymentResult) -> None:
        """Fill approach-specific counters/breakdowns into ``result``."""

    # ------------------------------------------------------------------
    # The prequential loop
    # ------------------------------------------------------------------
    def run(self, stream: Iterable[Table]) -> DeploymentResult:
        """Process the deployment stream test-then-train.

        Chunks that come out of the serving path empty (every row
        filtered as anomalous) still feed training but contribute no
        prequential measurement for that step; the previous cumulative
        value is carried forward so the histories stay aligned with
        chunk indices.
        """
        result = DeploymentResult(approach=self.approach)
        for chunk_index, table in enumerate(stream):
            predictions, labels = self._predict(table)
            if len(labels):
                error_sum = self._chunk_error(predictions, labels)
                self.prequential.add_chunk(error_sum, len(labels))
            result.error_history.append(self.prequential.value())
            self._observe(table, chunk_index)
            result.cost_history.append(self._current_cost())
        self._finalize(result)
        if self.telemetry.enabled:
            self.telemetry.flush_metrics()
            result.telemetry = self.telemetry
        return result

    def _chunk_error(
        self, predictions: np.ndarray, labels: np.ndarray
    ) -> float:
        if self.metric == "classification":
            return float(np.sum(predictions != labels))
        residual = predictions - labels
        return float(np.sum(residual * residual))
