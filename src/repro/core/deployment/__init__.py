"""The three deployment approaches compared in Experiment 1 (§5.2)."""

from repro.core.deployment.base import Deployment, DeploymentResult
from repro.core.deployment.continuous import ContinuousDeployment
from repro.core.deployment.online import OnlineDeployment
from repro.core.deployment.periodical import PeriodicalDeployment
from repro.core.deployment.threshold import ThresholdRetrainingDeployment

__all__ = [
    "Deployment",
    "DeploymentResult",
    "OnlineDeployment",
    "PeriodicalDeployment",
    "ContinuousDeployment",
    "ThresholdRetrainingDeployment",
]
