"""The assembled continuous-deployment platform (Figure 3).

:class:`ContinuousDeploymentPlatform` wires the five architecture
components — pipeline manager, data manager, scheduler, proactive
trainer, execution engine — from a
:class:`~repro.core.config.ContinuousConfig`. It exposes the two
operations a deployment environment needs:

* :meth:`predict` — answer a batch of prediction queries;
* :meth:`observe` — ingest a batch of training data, run the online
  update, and fire proactive training when the scheduler says so.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.config import ContinuousConfig, ScheduleConfig
from repro.core.pipeline_manager import PipelineManager
from repro.core.proactive import ProactiveOutcome, ProactiveTrainer
from repro.core.scheduler import (
    DynamicScheduler,
    Scheduler,
    StaticScheduler,
)
from repro.data.manager import DataManager
from repro.data.sampling import make_sampler
from repro.data.storage import ChunkStorage
from repro.data.table import Table
from repro.exceptions import ReliabilityError
from repro.execution.cost import CostModel
from repro.obs import names
from repro.execution.engine import LocalExecutionEngine
from repro.ml.models.base import LinearSGDModel
from repro.ml.optim.base import Optimizer
from repro.ml.sgd import TrainingResult
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.persistence import DeploymentBundle
from repro.pipeline.fingerprint import pipeline_fingerprint
from repro.pipeline.pipeline import Pipeline
from repro.reliability.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    PlatformCheckpoint,
    as_store,
)
from repro.reliability.faults import FaultInjector, FaultPlan
from repro.reliability.retry import Retrier, RetryPolicy
from repro.utils.rng import SeedLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.registry import ModelRegistry, VersionInfo


def build_scheduler(config: ScheduleConfig) -> Scheduler:
    """Construct the scheduler described by ``config``."""
    if config.kind == "static":
        return StaticScheduler(config.interval_chunks)
    return DynamicScheduler(
        slack=config.slack, initial_interval=config.initial_interval
    )


class ContinuousDeploymentPlatform:
    """Continuous deployment of one pipeline + model.

    Parameters
    ----------
    pipeline, model, optimizer:
        The deployed artifacts (shared mutable state — the platform
        updates them in place).
    config:
        Deployment hyperparameters (§2.2's first group).
    cost_model:
        Optional cost-model prices for the execution engine.
    seed:
        Controls the sampling randomness.
    telemetry:
        Optional observability bundle, threaded through the engine
        (operation spans), storage (eviction counters), data manager
        (cache/sampler telemetry), and this platform (observe and
        proactive-training spans, scheduler decision events).
    registry:
        Optional :class:`~repro.serving.registry.ModelRegistry`.
        When attached, every proactive-training outcome is snapshotted
        into the registry as a *candidate* version with full lineage
        (parent = current live version, chunks observed, virtual-clock
        training cost, final objective) — the feed a staged rollout
        promotes from.
    checkpoint:
        Optional checkpointing (a directory, a
        :class:`~repro.reliability.checkpoint.CheckpointConfig`, or a
        prebuilt store). When set, :meth:`observe` writes a full
        platform checkpoint every ``cadence_chunks`` chunks and
        :meth:`recover` can rebuild the platform after a crash.
    fault_plan:
        Optional deterministic fault injection (a
        :class:`~repro.reliability.faults.FaultPlan`, or a shared
        :class:`~repro.reliability.faults.FaultInjector` when the
        caller owns the occurrence counting); raw-chunk reads fire the
        ``storage.read`` site, checkpoint writes ``checkpoint.write``.
    retry:
        Optional :class:`~repro.reliability.retry.RetryPolicy` (or
        prebuilt :class:`~repro.reliability.retry.Retrier`) masking
        transient storage/checkpoint faults.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        model: LinearSGDModel,
        optimizer: Optimizer,
        config: Optional[ContinuousConfig] = None,
        cost_model: Optional[CostModel] = None,
        seed: SeedLike = None,
        telemetry: Optional[Telemetry] = None,
        registry: Optional["ModelRegistry"] = None,
        checkpoint: Union[
            CheckpointStore, CheckpointConfig, str, None
        ] = None,
        fault_plan: Union[FaultPlan, FaultInjector, None] = None,
        retry: Union[RetryPolicy, Retrier, None] = None,
        lineage_scope: Optional[str] = None,
    ) -> None:
        self.config = config if config is not None else ContinuousConfig()
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        if isinstance(fault_plan, FaultInjector):
            self.fault_injector = fault_plan
        else:
            self.fault_injector = FaultInjector(
                fault_plan, self.telemetry
            )
        if isinstance(retry, Retrier):
            self.retrier: Optional[Retrier] = retry
        elif retry is not None:
            self.retrier = Retrier(retry, self.telemetry)
        else:
            self.retrier = None
        armed = (
            self.fault_injector
            if len(self.fault_injector.plan)
            else None
        )
        sampler = make_sampler(
            self.config.sampler,
            window_size=self.config.window_size,
            half_life=self.config.half_life,
        )
        storage = ChunkStorage(
            max_materialized=self.config.max_materialized_chunks,
            metrics=(
                self.telemetry.metrics if self.telemetry.enabled else None
            ),
            fault_injector=armed,
        )
        self.engine = LocalExecutionEngine(
            cost_model, telemetry=self.telemetry
        )
        self.data_manager = DataManager(
            storage=storage,
            sampler=sampler,
            seed=seed,
            telemetry=self.telemetry,
            retrier=self.retrier,
        )
        self.checkpoint_store = as_store(
            checkpoint,
            telemetry=self.telemetry,
            fault_injector=armed,
            retrier=self.retrier,
        )
        self.manager = PipelineManager(
            pipeline=pipeline,
            model=model,
            optimizer=optimizer,
            data_manager=self.data_manager,
            engine=self.engine,
        )
        self.scheduler = build_scheduler(self.config.schedule)
        self.proactive = ProactiveTrainer(self.manager.trainer, self.engine)
        self.proactive_outcomes: List[ProactiveOutcome] = []
        self.registry = registry
        self.registered_versions: List["VersionInfo"] = []
        self._chunk_index = -1
        #: Namespace for this platform's lineage nodes (a fleet sets
        #: the tenant name so chunk timestamps cannot collide).
        self.lineage_scope = lineage_scope
        #: Node id of the most recent training event the attached
        #: ledger recorded (``None`` without a ledger).
        self.last_training_event: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> Pipeline:
        return self.manager.pipeline

    @property
    def model(self) -> LinearSGDModel:
        return self.manager.model

    @property
    def chunks_observed(self) -> int:
        return self._chunk_index + 1

    # ------------------------------------------------------------------
    def initial_fit(
        self,
        tables: List[Table],
        batch_size: Optional[int] = None,
        max_iterations: int = 200,
        tolerance: float = 1e-4,
        seed: SeedLike = None,
        store: bool = False,
    ) -> TrainingResult:
        """Pre-deployment training (delegates to the pipeline manager)."""
        ledger = self.telemetry.ledger
        if ledger is not None and store:
            # Stored initial chunks participate in sampling later, so
            # they need lineage nodes; ingest assigns timestamps
            # sequentially from next_timestamp.
            base = self.data_manager.next_timestamp
            for offset, table in enumerate(tables):
                ledger.record_chunk(
                    base + offset,
                    table.digest(),
                    table.num_rows,
                    scope=self.lineage_scope,
                )
        return self.manager.initial_fit(
            tables,
            batch_size=batch_size,
            max_iterations=max_iterations,
            tolerance=tolerance,
            seed=seed,
            store=store,
        )

    def predict(self, table: Table) -> Tuple[np.ndarray, np.ndarray]:
        """Answer prediction queries; informs the dynamic scheduler."""
        before = self.engine.total_cost()
        predictions, labels = self.manager.answer_queries(table)
        self.scheduler.record_predictions(
            count=len(predictions),
            duration=self.engine.total_cost() - before,
        )
        return predictions, labels

    def observe(self, table: Table) -> Optional[ProactiveOutcome]:
        """Ingest a training chunk; maybe run a proactive training.

        Returns the :class:`ProactiveOutcome` when a proactive training
        fired for this chunk, else ``None``.
        """
        self._chunk_index += 1
        tracer = self.telemetry.tracer
        with tracer.span(
            names.PLATFORM_OBSERVE,
            chunk=self._chunk_index,
            rows=table.num_rows,
        ):
            raw, features = self.manager.process_training_chunk(
                table,
                online_statistics=self.config.online_statistics,
                store=True,
            )
            ledger = self.telemetry.ledger
            if ledger is not None:
                ledger.record_chunk(
                    raw.timestamp,
                    table.digest(),
                    table.num_rows,
                    scope=self.lineage_scope,
                )
            if self.config.online_update and features.num_rows:
                self.manager.online_step(
                    features, self.config.online_batch_rows
                )
            now = self.engine.total_cost()
            fired = self.scheduler.should_train(self._chunk_index, now)
            tracer.point(
                names.SCHEDULER_DECISION,
                chunk=self._chunk_index,
                fired=fired,
                now=now,
            )
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    names.SCHEDULER_FIRED if fired else names.SCHEDULER_SKIPPED
                ).inc()
            outcome = (
                self._run_proactive_training() if fired else None
            )
        if (
            self.checkpoint_store is not None
            and self.chunks_observed % self.checkpoint_store.cadence
            == 0
        ):
            self.checkpoint()
        return outcome

    def train_now(self) -> ProactiveOutcome:
        """Run one proactive training outside the scheduler's control.

        The fleet orchestrator disables the per-platform schedule
        (a huge static interval) and drives training through this
        entry point when the fleet scheduler grants the tenant a
        slot. Identical to a scheduler-fired training: the outcome is
        recorded, the scheduler's EWMA sees the duration, and an
        attached registry receives the candidate snapshot.
        """
        return self._run_proactive_training()

    def _run_proactive_training(self) -> ProactiveOutcome:
        with self.telemetry.tracer.span(
            names.PLATFORM_PROACTIVE_TRAINING, chunk=self._chunk_index
        ) as span:
            started_at = self.engine.total_cost()
            samples = self.manager.sample_for_training(
                self.config.sample_size_chunks,
                recompute_statistics=not self.config.online_statistics,
            )
            outcome = self.proactive.run(samples)
            duration = self.engine.total_cost() - started_at
            # Report the *full* duration (sampling + re-materialization
            # + SGD) to the scheduler — that is the T of formula (6).
            self.scheduler.record_training(started_at, duration)
            full_outcome = ProactiveOutcome(
                objective=outcome.objective,
                rows=outcome.rows,
                chunks=outcome.chunks,
                chunks_materialized=outcome.chunks_materialized,
                started_at=started_at,
                duration=duration,
            )
            self.proactive_outcomes.append(full_outcome)
            span.set(
                chunks=outcome.chunks,
                materialized=outcome.chunks_materialized,
                rows=outcome.rows,
                objective=outcome.objective,
            )
            if self.telemetry.enabled:
                self.telemetry.metrics.observe(
                    names.PROACTIVE_DURATION, duration
                )
            if self.telemetry.ledger is not None:
                self._record_training_lineage(samples, full_outcome)
            if self.registry is not None:
                self._register_candidate(full_outcome)
            return full_outcome

    def _record_training_lineage(
        self, samples, outcome: ProactiveOutcome
    ) -> None:
        """Record this SGD burst in the attached provenance ledger.

        Each sampled chunk's weight is its fraction of the burst's
        training rows — the number blame queries aggregate. The
        pipeline's component fingerprints are recorded first
        (content-addressed, so unchanged components dedup to one
        node).
        """
        ledger = self.telemetry.ledger
        components = [
            ledger.record_component(fingerprint)
            for fingerprint in pipeline_fingerprint(
                self.manager.pipeline
            )
        ]
        total_rows = sum(
            sample.chunk.num_rows for sample in samples
        )
        chunks = []
        for sample in samples:
            node = ledger.chunk_id(
                sample.timestamp, self.lineage_scope
            )
            weight = (
                sample.chunk.num_rows / total_rows
                if total_rows
                else 0.0
            )
            chunks.append((node, weight))
        self.last_training_event = ledger.record_training(
            chunks,
            components,
            rows=outcome.rows,
            objective=outcome.objective,
            scope=self.lineage_scope,
        )

    def _register_candidate(self, outcome: ProactiveOutcome) -> None:
        """Snapshot the freshly-trained state as a registry candidate."""
        info = self.registry.register(
            self.manager.pipeline,
            self.manager.model,
            self.manager.optimizer,
            chunks_observed=self.chunks_observed,
            training_cost=outcome.duration,
            metrics={
                "objective": outcome.objective,
                "rows_trained": outcome.rows,
            },
            lineage_event=self.last_training_event,
        )
        self.registered_versions.append(info)
        self.telemetry.tracer.point(
            names.PLATFORM_REGISTER_CANDIDATE,
            version=info.version,
            parent=info.parent,
            chunk=self._chunk_index,
        )

    # ------------------------------------------------------------------
    # Checkpointing and recovery
    # ------------------------------------------------------------------
    def install_artifacts(
        self,
        pipeline: Pipeline,
        model: LinearSGDModel,
        optimizer: Optimizer,
    ) -> None:
        """Swap the deployed artifacts (crash recovery / rollback).

        Rebuilds the proactive trainer so it trains the new
        model/optimizer pair; its instance counter carries over.
        """
        self.manager.replace_artifacts(pipeline, model, optimizer)
        instances = self.proactive.instances_run
        self.proactive = ProactiveTrainer(
            self.manager.trainer, self.engine
        )
        self.proactive.instances_run = instances

    def state_dict(self) -> Dict[str, Any]:
        """Every mutable thing outside the artifact bundle and storage.

        Storage contents are captured by the checkpoint store's
        manifest/spill mechanism; artifacts by the
        :class:`~repro.persistence.DeploymentBundle`. This covers the
        rest: stream position, scheduler (EWMA) state, sampler RNG and
        μ accounting, the cost-model clock, and proactive-training
        history.
        """
        return {
            "chunk_index": self._chunk_index,
            "scheduler": self.scheduler.state_dict(),
            "data_manager": self.data_manager.state_dict(),
            "cost": self.engine.tracker.state_dict(),
            "proactive_outcomes": list(self.proactive_outcomes),
            "proactive_instances": self.proactive.instances_run,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._chunk_index = int(state["chunk_index"])
        self.scheduler.load_state_dict(state["scheduler"])
        self.data_manager.load_state_dict(state["data_manager"])
        self.engine.tracker.load_state_dict(state["cost"])
        self.proactive_outcomes = list(state["proactive_outcomes"])
        self.proactive.instances_run = int(
            state["proactive_instances"]
        )

    def checkpoint(self) -> Path:
        """Write a full platform checkpoint now; returns its path."""
        if self.checkpoint_store is None:
            raise ReliabilityError(
                "platform was constructed without a checkpoint= option"
            )
        # The written counter increments before the metrics capture so
        # the checkpoint's own write is part of the state it saves.
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                names.RELIABILITY_CHECKPOINTS_WRITTEN
            ).inc()
        state = self.state_dict()
        if self.telemetry.enabled:
            state["metrics"] = self.telemetry.metrics.state_dict()
        if self.telemetry.ledger is not None:
            state["lineage"] = self.telemetry.ledger.state_dict()
        checkpoint = PlatformCheckpoint(
            cursor=self.chunks_observed,
            approach="platform",
            bundle=DeploymentBundle(
                pipeline=self.manager.pipeline,
                model=self.manager.model,
                optimizer=self.manager.optimizer,
            ),
            state=state,
        )
        return self.checkpoint_store.write(
            checkpoint, storage=self.data_manager.storage
        )

    @classmethod
    def recover(
        cls,
        checkpoint: Union[CheckpointStore, CheckpointConfig, str],
        config: Optional[ContinuousConfig] = None,
        cost_model: Optional[CostModel] = None,
        telemetry: Optional[Telemetry] = None,
        registry: Optional["ModelRegistry"] = None,
        fault_plan: Union[FaultPlan, FaultInjector, None] = None,
        retry: Union[RetryPolicy, Retrier, None] = None,
    ) -> "ContinuousDeploymentPlatform":
        """Rebuild a platform from the latest valid checkpoint.

        Falls back to older checkpoints when the newest fails its
        checksum. ``config``/``cost_model`` must match the crashed
        platform's (configuration is not checkpointed — state is).
        The caller resumes feeding :meth:`predict`/:meth:`observe`
        from the saved cursor (``chunks_observed``); the continuation
        is byte-identical to an uninterrupted run.
        """
        store = as_store(checkpoint, telemetry=telemetry)
        saved = store.load_latest()
        platform = cls(
            saved.bundle.pipeline,
            saved.bundle.model,
            saved.bundle.optimizer,
            config=config,
            cost_model=cost_model,
            telemetry=telemetry,
            registry=registry,
            checkpoint=store,
            fault_plan=fault_plan,
            retry=retry,
        )
        if saved.manifest is not None:
            store.restore_storage(
                platform.data_manager.storage, saved.manifest
            )
        metrics_state = saved.state.get("metrics")
        if metrics_state is not None and platform.telemetry.enabled:
            platform.telemetry.metrics.load_state_dict(metrics_state)
        lineage_state = saved.state.get("lineage")
        if (
            lineage_state is not None
            and platform.telemetry.ledger is not None
        ):
            platform.telemetry.ledger.load_state_dict(lineage_state)
        platform.load_state_dict(saved.state)
        platform.telemetry.tracer.point(
            names.RELIABILITY_RECOVERED,
            cursor=saved.cursor,
            approach=saved.approach,
        )
        return platform

    def __repr__(self) -> str:
        return (
            f"ContinuousDeploymentPlatform(chunks={self.chunks_observed}, "
            f"proactive_runs={len(self.proactive_outcomes)})"
        )
