"""Pipeline manager (§4.3) — the platform's central component.

Owns the deployed pipeline and model and mediates every data movement:

* training chunks take the *online* path (``update`` then
  ``transform`` per component — online statistics computation) and the
  resulting feature chunks go to the data manager for storage;
* prediction queries take the *transform-only* path through the very
  same components, then the model scores them (train/serve
  consistency);
* proactive training asks the data manager for a sample, supplying the
  re-materialization callback for evicted chunks;
* periodical retraining replays the stored raw history through the
  pipeline and runs a full SGD training, warm-started or cold.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.data.chunk import FeatureChunk, RawChunk
from repro.data.manager import DataManager, SampledChunk, SampleRequest
from repro.data.table import Table
from repro.execution.engine import LocalExecutionEngine
from repro.exceptions import PipelineError
from repro.ml.models.base import LinearSGDModel
from repro.ml.optim.base import Optimizer
from repro.ml.sgd import SGDTrainer, TrainingResult
from repro.pipeline.component import Features, union_features
from repro.pipeline.pipeline import Pipeline


class PipelineManager:
    """Wires pipeline, model, optimizer, data manager, and engine.

    Parameters
    ----------
    pipeline:
        The deployed preprocessing pipeline.
    model:
        The deployed model (updated in place).
    optimizer:
        SGD update rule; shared by online updates, proactive training,
        and retraining so its state is one continuous stream.
    data_manager:
        Chunk storage and sampling front-end.
    engine:
        Execution engine (cost accounting + wall clock).
    """

    def __init__(
        self,
        pipeline: Pipeline,
        model: LinearSGDModel,
        optimizer: Optimizer,
        data_manager: DataManager,
        engine: LocalExecutionEngine,
    ) -> None:
        self.pipeline = pipeline
        self.model = model
        self.optimizer = optimizer
        self.data_manager = data_manager
        self.engine = engine
        self.trainer = SGDTrainer(model, optimizer)

    def replace_artifacts(
        self,
        pipeline: Pipeline,
        model: LinearSGDModel,
        optimizer: Optimizer,
    ) -> None:
        """Swap in a different (pipeline, model, optimizer) triple.

        Used by crash recovery (installing checkpointed artifacts) and
        rollbacks. The trainer is rebuilt so it references the new
        model/optimizer pair; anything else holding a reference to the
        manager keeps working unchanged.
        """
        self.pipeline = pipeline
        self.model = model
        self.optimizer = optimizer
        self.trainer = SGDTrainer(model, optimizer)

    # ------------------------------------------------------------------
    # Initial training (pre-deployment)
    # ------------------------------------------------------------------
    def initial_fit(
        self,
        tables: List[Table],
        batch_size: Optional[int] = None,
        max_iterations: int = 200,
        tolerance: float = 1e-4,
        seed=None,
        store: bool = False,
    ) -> TrainingResult:
        """Fit pipeline statistics and train the initial model.

        Every table takes the online path (fitting statistics), the
        features are unioned, and a full SGD run trains the model —
        the paper's batch-gradient initial training. With ``store``
        the chunks also enter the data manager (so deployment starts
        with the initial data as history, as in the paper).
        """
        if not tables:
            raise PipelineError("initial_fit needs at least one table")
        parts: List[Features] = []
        for table in tables:
            if store:
                raw = self.data_manager.ingest(table)
                features = self.engine.online_pass(self.pipeline, table)
                self._store_features(raw, features)
            else:
                features = self.engine.online_pass(self.pipeline, table)
            parts.append(features)
        batch = union_features(parts)
        return self.engine.train_full(
            self.trainer,
            batch.matrix,
            batch.labels,
            batch_size=batch_size,
            max_iterations=max_iterations,
            tolerance=tolerance,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Deployment-time training data
    # ------------------------------------------------------------------
    def process_training_chunk(
        self,
        table: Table,
        online_statistics: bool = True,
        store: bool = True,
    ) -> Tuple[RawChunk, Features]:
        """Ingest one raw training chunk and preprocess it.

        With ``online_statistics`` the chunk takes the online path and
        the statistics of every stateful component advance; without it
        (the NoOptimization ablation) only the transform runs. With
        ``store`` the resulting feature chunk is materialized in the
        data manager.
        """
        raw = self.data_manager.ingest(table)
        if online_statistics:
            features = self.engine.online_pass(self.pipeline, table)
        else:
            features = self.engine.transform_only(self.pipeline, table)
        if store:
            self._store_features(raw, features)
        return raw, features

    def _store_features(self, raw: RawChunk, features: Features) -> None:
        chunk = FeatureChunk(
            timestamp=raw.timestamp,
            raw_reference=raw.timestamp,
            features=features.matrix,
            labels=features.labels,
        )
        self.data_manager.store_features(chunk)

    # ------------------------------------------------------------------
    # Online model update
    # ------------------------------------------------------------------
    def online_step(
        self, features: Features, batch_rows: Optional[int] = None
    ) -> float:
        """Online SGD on a freshly arrived chunk.

        ``batch_rows=None`` takes one mini-batch step over the whole
        chunk. ``batch_rows=k`` consumes the chunk in consecutive
        slices of ``k`` rows, one SGD step each — ``k=1`` is classic
        point-at-a-time online gradient descent, the noisy baseline
        the paper's online deployment uses ("visits every incoming
        training data point only once"). Returns the last objective.
        """
        if batch_rows is None or batch_rows >= features.num_rows:
            return self.engine.train_step(
                self.trainer, features.matrix, features.labels
            )
        if batch_rows < 1:
            raise PipelineError(
                f"batch_rows must be >= 1, got {batch_rows}"
            )
        objective = 0.0
        for start in range(0, features.num_rows, batch_rows):
            stop = start + batch_rows
            objective = self.engine.train_step(
                self.trainer,
                features.matrix[start:stop],
                features.labels[start:stop],
            )
        return objective

    # ------------------------------------------------------------------
    # Prediction serving
    # ------------------------------------------------------------------
    def answer_queries(
        self, table: Table
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Serve a batch of prediction queries.

        Returns ``(predictions, true_labels)`` for the surviving rows
        (row filters may drop anomalies), enabling prequential
        evaluation by the caller.
        """
        features = self.engine.transform_only(self.pipeline, table)
        predictions = self.engine.predict(self.model, features.matrix)
        return predictions, np.asarray(features.labels)

    # ------------------------------------------------------------------
    # Proactive training support
    # ------------------------------------------------------------------
    def sample_for_training(
        self,
        sample_size: int,
        recompute_statistics: bool = False,
    ) -> List[SampledChunk]:
        """Draw a proactive-training sample, re-materializing as needed.

        Re-materialization reads the raw chunk from (simulated) disk
        and re-runs the pipeline transform. With
        ``recompute_statistics`` (the NoOptimization ablation) a
        statistics scan per stateful component is charged as well,
        modelling the paper's "recomputes the required statistics of
        every component by scanning the data".
        """

        def materialize(raw: RawChunk) -> FeatureChunk:
            self.engine.read_chunk(raw.table.num_values, "rematerialize")
            if recompute_statistics:
                for component in self.pipeline.stateful_components:
                    self.engine.tracker.charge_statistics(
                        raw.table.num_values,
                        f"recompute:{component.name}",
                    )
            features = self.engine.transform_only(self.pipeline, raw.table)
            return FeatureChunk(
                timestamp=raw.timestamp,
                raw_reference=raw.timestamp,
                features=features.matrix,
                labels=features.labels,
            )

        return self.data_manager.sample(
            SampleRequest(size=sample_size), materialize
        )

    # ------------------------------------------------------------------
    # Periodical retraining (baseline)
    # ------------------------------------------------------------------
    def full_retrain(
        self,
        batch_size: Optional[int] = None,
        max_iterations: int = 200,
        tolerance: float = 1e-4,
        warm_start: bool = True,
        seed=None,
    ) -> TrainingResult:
        """Retrain on the entire stored raw history (§5.2 baseline).

        Every stored raw chunk is read back from (simulated) disk and
        re-transformed — the repeated preprocessing that dominates the
        periodical approach's cost. With ``warm_start`` the current
        pipeline statistics, model weights, and optimizer state carry
        over (TFX-style); without it everything resets and statistics
        are recomputed from scratch over the history.
        """
        timestamps = self.data_manager.storage.raw_timestamps
        if not timestamps:
            raise PipelineError("no stored history to retrain on")
        if not warm_start:
            self.pipeline.reset()
            self.model.reset()
            self.optimizer.reset()
        parts: List[Features] = []
        for timestamp in timestamps:
            raw = self.data_manager.storage.get_raw(timestamp)
            self.engine.read_chunk(raw.table.num_values, "retrain_read")
            if warm_start:
                features = self.engine.transform_only(
                    self.pipeline, raw.table
                )
            else:
                features = self.engine.online_pass(
                    self.pipeline, raw.table
                )
            parts.append(features)
        batch = union_features(parts)
        return self.engine.train_full(
            self.trainer,
            batch.matrix,
            batch.labels,
            batch_size=batch_size,
            max_iterations=max_iterations,
            tolerance=tolerance,
            seed=seed,
        )

