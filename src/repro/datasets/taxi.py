"""Synthetic taxi-trip stream (stand-in for the NYC TLC trip records).

The real dataset: 280M trips, Feb-2015 … Jun-2016, one chunk per hour.
Its distribution is known to stay static over time (§5.3), so this
generator is stationary: a fixed ground-truth model maps trip features
to log-duration, and chunks differ only through sampling noise and
calendar position.

Trips are generated around Manhattan-ish coordinates. The true
log-duration is (approximately) linear in the features the paper's
pipeline extracts — haversine distance, hour of day, day of week —
plus noise, so the linear-regression model is well-specified. A
configurable fraction of trips is anomalous (absurd durations or
zero-distance), giving the anomaly detector its paper-mandated job
(trips > 22 hours, < 10 seconds, or with zero distance are filtered).

:func:`make_taxi_pipeline` mirrors the paper's Taxi pipeline:
input parser (trip duration) → feature extractor (haversine, bearing,
hour, weekday) → anomaly detector → standard scaler → assembler
(→ linear regression on ``log1p(duration)``, RMSLE metric).
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.data.table import Table
from repro.pipeline.components.anomaly import AnomalyFilter
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.extractor import (
    ColumnDifference,
    ColumnExtractor,
    DayOfWeekExtractor,
    HourOfDayExtractor,
    SECONDS_PER_HOUR,
)
from repro.pipeline.components.geo import (
    bearing_component,
    haversine_component,
    haversine_distance,
)
from repro.pipeline.components.scaler import StandardScaler
from repro.pipeline.pipeline import Pipeline
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive_int

#: Manhattan-ish coordinate box.
LAT_CENTER, LON_CENTER = 40.75, -73.98
COORD_SPREAD = 0.05

#: Anomaly-filter thresholds from the paper (§5.1).
MAX_TRIP_SECONDS = 22 * 3600
MIN_TRIP_SECONDS = 10

#: Feature columns the Taxi pipeline feeds the regression model
#: (11 features, the paper's Taxi dimensionality).
TAXI_FEATURE_COLUMNS = (
    "distance_km",
    "bearing_deg",
    "hour_of_day",
    "day_of_week",
    "passenger_count",
    "pickup_lat",
    "pickup_lon",
    "dropoff_lat",
    "dropoff_lon",
    "delta_lat",
    "delta_lon",
)


class TaxiStreamGenerator:
    """Generates hourly chunks of synthetic taxi trips.

    Parameters
    ----------
    num_chunks:
        Deployment-stream length (one chunk = one hour of trips).
    rows_per_chunk:
        Trips per hourly chunk.
    anomaly_rate:
        Fraction of trips made anomalous (over-long, instant, or
        zero-distance) for the filter to drop.
    noise_std:
        Std of the Gaussian noise on the true log-duration.
    start_epoch:
        POSIX seconds of chunk 0's hour.
    seed:
        Generator seed.
    """

    def __init__(
        self,
        num_chunks: int = 400,
        rows_per_chunk: int = 80,
        anomaly_rate: float = 0.02,
        noise_std: float = 0.25,
        start_epoch: float = 1_422_748_800.0,  # 2015-02-01 00:00 UTC
        seed: SeedLike = 0,
    ) -> None:
        self.num_chunks = check_positive_int(num_chunks, "num_chunks")
        self.rows_per_chunk = check_positive_int(
            rows_per_chunk, "rows_per_chunk"
        )
        self.anomaly_rate = check_fraction(anomaly_rate, "anomaly_rate")
        self.noise_std = float(noise_std)
        self.start_epoch = float(start_epoch)
        root = ensure_rng(seed)
        self._chunk_seeds = root.integers(
            0, 2**63 - 1, size=self.num_chunks
        )
        self._initial_seed = int(root.integers(0, 2**63 - 1))

    # ------------------------------------------------------------------
    # Ground truth: log1p(duration_seconds) as a function of features.
    # Stationary coefficients — the concept never drifts.
    # ------------------------------------------------------------------
    _BASE_LOG_DURATION = 5.6        # ~270 s for a zero-distance ride
    _LOG_PER_KM = 0.22              # longer trips take longer
    _LOG_PER_HOUR = 0.012           # later hours slightly slower
    _LOG_PER_WEEKDAY = -0.015       # weekends slightly faster
    _LOG_PER_PASSENGER = 0.005

    def true_log_duration(
        self,
        distance_km: np.ndarray,
        hour: np.ndarray,
        weekday: np.ndarray,
        passengers: np.ndarray,
    ) -> np.ndarray:
        """Noise-free ground truth in ``log1p`` space."""
        return (
            self._BASE_LOG_DURATION
            + self._LOG_PER_KM * distance_km
            + self._LOG_PER_HOUR * hour
            + self._LOG_PER_WEEKDAY * weekday
            + self._LOG_PER_PASSENGER * passengers
        )

    # ------------------------------------------------------------------
    def initial_data(self, num_rows: int = 800) -> List[Table]:
        """The "January 2015" initial training data (one big table)."""
        rng = ensure_rng(self._initial_seed)
        # Initial data spans the month before the stream starts.
        epoch = self.start_epoch - 30 * 24 * SECONDS_PER_HOUR
        return [self._make_trips(rng, num_rows, epoch, spread_hours=720)]

    def chunk(self, chunk_index: int) -> Table:
        """Deterministically generate hourly chunk ``chunk_index``."""
        if not 0 <= chunk_index < self.num_chunks:
            raise ValueError(
                f"chunk_index {chunk_index} outside [0, {self.num_chunks})"
            )
        rng = ensure_rng(int(self._chunk_seeds[chunk_index]))
        epoch = self.start_epoch + chunk_index * SECONDS_PER_HOUR
        return self._make_trips(
            rng, self.rows_per_chunk, epoch, spread_hours=1
        )

    def stream(self) -> Iterator[Table]:
        """The full deployment stream in timestamp order."""
        for chunk_index in range(self.num_chunks):
            yield self.chunk(chunk_index)

    # ------------------------------------------------------------------
    def _make_trips(
        self,
        rng: np.random.Generator,
        num_rows: int,
        epoch: float,
        spread_hours: float,
    ) -> Table:
        pickup_lat = LAT_CENTER + rng.normal(0, COORD_SPREAD, num_rows)
        pickup_lon = LON_CENTER + rng.normal(0, COORD_SPREAD, num_rows)
        dropoff_lat = LAT_CENTER + rng.normal(0, COORD_SPREAD, num_rows)
        dropoff_lon = LON_CENTER + rng.normal(0, COORD_SPREAD, num_rows)
        passengers = rng.integers(1, 7, num_rows).astype(np.float64)
        pickup_time = epoch + rng.uniform(
            0, spread_hours * SECONDS_PER_HOUR, num_rows
        )

        distance = haversine_distance(
            pickup_lat, pickup_lon, dropoff_lat, dropoff_lon
        )
        hour = np.floor(pickup_time % 86_400 / SECONDS_PER_HOUR)
        weekday = (np.floor(pickup_time / 86_400) + 3) % 7
        log_duration = self.true_log_duration(
            distance, hour, weekday, passengers
        ) + rng.normal(0, self.noise_std, num_rows)
        duration = np.expm1(log_duration)

        # Inject anomalies: over-long trips, instant trips, and
        # zero-distance trips (car never moved).
        anomalous = rng.random(num_rows) < self.anomaly_rate
        kind = rng.integers(0, 3, num_rows)
        over_long = anomalous & (kind == 0)
        instant = anomalous & (kind == 1)
        parked = anomalous & (kind == 2)
        duration = np.where(
            over_long, MAX_TRIP_SECONDS + rng.uniform(1, 1e5, num_rows),
            duration,
        )
        duration = np.where(
            instant, rng.uniform(0, MIN_TRIP_SECONDS - 1, num_rows),
            duration,
        )
        dropoff_lat = np.where(parked, pickup_lat, dropoff_lat)
        dropoff_lon = np.where(parked, pickup_lon, dropoff_lon)

        return Table(
            {
                "pickup_datetime": pickup_time,
                "dropoff_datetime": pickup_time + duration,
                "pickup_lat": pickup_lat,
                "pickup_lon": pickup_lon,
                "dropoff_lat": dropoff_lat,
                "dropoff_lon": dropoff_lon,
                "passenger_count": passengers,
            }
        )


def make_taxi_pipeline() -> Pipeline:
    """The paper's Taxi pipeline, terminal assembler included.

    The model (linear regression on ``log1p(duration)``) is built by
    the caller; the assembler already emits labels in log space, so
    RMSE on the model output *is* the RMSLE of the raw predictions.
    """
    return Pipeline(
        [
            ColumnDifference(
                minuend="dropoff_datetime",
                subtrahend="pickup_datetime",
                output="trip_duration",
                name="input_parser",
            ),
            haversine_component(
                "pickup_lat", "pickup_lon", "dropoff_lat", "dropoff_lon",
                name="haversine",
            ),
            bearing_component(
                "pickup_lat", "pickup_lon", "dropoff_lat", "dropoff_lon",
                name="bearing",
            ),
            HourOfDayExtractor("pickup_datetime", name="hour"),
            DayOfWeekExtractor("pickup_datetime", name="weekday"),
            _delta_component("pickup_lat", "dropoff_lat", "delta_lat"),
            _delta_component("pickup_lon", "dropoff_lon", "delta_lon"),
            _anomaly_detector(),
            StandardScaler(TAXI_FEATURE_COLUMNS, name="scaler"),
            FeatureAssembler(
                feature_columns=TAXI_FEATURE_COLUMNS,
                label_column="trip_duration",
                label_transform=np.log1p,
                name="assembler",
            ),
        ]
    )


def _column_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise a - b (module-level so pipelines stay picklable)."""
    return np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)


def _delta_component(origin: str, destination: str, output: str):
    return ColumnExtractor(
        inputs=[destination, origin],
        function=_column_difference,
        output=output,
        name=output,
    )


def _keep_plausible_trips(table: Table) -> np.ndarray:
    """Keep-mask for the paper's anomaly rules (module-level so the
    assembled pipeline stays picklable)."""
    duration = np.asarray(table.column("trip_duration"))
    distance = np.asarray(table.column("distance_km"))
    return (
        (duration >= MIN_TRIP_SECONDS)
        & (duration <= MAX_TRIP_SECONDS)
        & (distance > 0.0)
    )


def _anomaly_detector() -> AnomalyFilter:
    """Drop trips > 22 h, < 10 s, or with zero distance (§5.1)."""
    return AnomalyFilter(_keep_plausible_trips, name="anomaly_detector")
