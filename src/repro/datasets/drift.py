"""Concept-drift schedules for synthetic streams.

A schedule perturbs a generator's ground-truth weight vector once per
chunk. :class:`GradualDrift` models the URL dataset's slow change in
underlying characteristics (§5.3 of the paper); :class:`AbruptDrift`
models sudden regime shifts (useful for the drift-detection extension
benches); :class:`NoDrift` models the Taxi dataset's stationarity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_non_negative


class DriftSchedule(ABC):
    """Mutates a ground-truth weight vector as the stream advances."""

    @abstractmethod
    def apply(
        self,
        weights: np.ndarray,
        chunk_index: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return the (possibly new) weights for ``chunk_index``.

        Must not mutate ``weights`` in place.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoDrift(DriftSchedule):
    """Stationary concept: weights never change."""

    def apply(
        self,
        weights: np.ndarray,
        chunk_index: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return weights


class GradualDrift(DriftSchedule):
    """Random-walk drift: ``w ← w + rate · ε``, ``ε ~ N(0, I)``.

    ``rate`` controls the per-chunk step; the expected weight change
    after *k* chunks is ``rate · √k`` per coordinate, so the concept
    moves steadily without jumps.
    """

    def __init__(self, rate: float = 0.01) -> None:
        self.rate = check_non_negative(rate, "rate")

    def apply(
        self,
        weights: np.ndarray,
        chunk_index: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return weights + self.rate * rng.standard_normal(weights.shape)

    def __repr__(self) -> str:
        return f"GradualDrift(rate={self.rate})"


class AbruptDrift(DriftSchedule):
    """Sudden concept shifts at chosen chunk indices.

    At each index in ``at_chunks`` a fraction ``magnitude`` of the
    weight mass is replaced with fresh random values.
    """

    def __init__(
        self, at_chunks: Sequence[int], magnitude: float = 1.0
    ) -> None:
        if not at_chunks:
            raise ValidationError("AbruptDrift needs at least one index")
        if any(index < 0 for index in at_chunks):
            raise ValidationError("drift indices must be >= 0")
        if not 0.0 < magnitude <= 1.0:
            raise ValidationError(
                f"magnitude must be in (0, 1], got {magnitude}"
            )
        self.at_chunks = frozenset(int(index) for index in at_chunks)
        self.magnitude = float(magnitude)

    def apply(
        self,
        weights: np.ndarray,
        chunk_index: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if chunk_index not in self.at_chunks:
            return weights
        fresh = rng.standard_normal(weights.shape)
        return (1.0 - self.magnitude) * weights + self.magnitude * fresh

    def __repr__(self) -> str:
        return (
            f"AbruptDrift(at_chunks={sorted(self.at_chunks)}, "
            f"magnitude={self.magnitude})"
        )
