"""Synthetic URL-like stream (stand-in for Ma et al.'s URL dataset).

The real dataset: 2.4M URLs over 121 days, ~3.2M sparse features,
binary malicious/legitimate labels, with *new features appearing over
time* and gradually changing characteristics (§5.3). This generator
reproduces those properties at laptop scale:

* sparse rows, emitted as svmlight-format text lines (so the pipeline
  genuinely parses raw records);
* a feature-index space that **grows** by ``new_features_per_chunk``
  each chunk — late features only ever occur in late chunks;
* a ground-truth linear concept whose weights drift per a
  :class:`~repro.datasets.drift.DriftSchedule` (gradual by default);
* missing values (``nan`` tokens) at a configurable rate, giving the
  imputer real work;
* label noise, so no approach reaches zero error.

The default pipeline (:func:`make_url_pipeline`) mirrors the paper's:
input parser → missing-value imputer → standard scaler → feature
hasher → (linear SVM, built by the caller).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.data.table import Table
from repro.datasets.drift import DriftSchedule, GradualDrift
from repro.exceptions import ValidationError
from repro.pipeline.components.hasher import FeatureHasher
from repro.pipeline.components.imputer import SparseMeanImputer
from repro.pipeline.components.parser import SvmLightParser
from repro.pipeline.components.scaler import SparseStandardScaler
from repro.pipeline.pipeline import Pipeline
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive_int


class URLStreamGenerator:
    """Generates the synthetic URL stream chunk by chunk.

    Parameters
    ----------
    num_chunks:
        Deployment-stream length (the paper uses 12,000; scale down).
    rows_per_chunk:
        URLs per chunk.
    base_features:
        Feature indices available from chunk 0.
    new_features_per_chunk:
        Fresh indices added to the universe every chunk (the growing
        feature space).
    active_per_row:
        Non-zero features per URL row.
    missing_rate:
        Probability an emitted value is ``nan`` (missing measurement).
    label_noise:
        Probability a label is flipped.
    drift:
        Weight-drift schedule (gradual by default).
    recent_feature_bias:
        Probability that an active feature is drawn from the
        ``recent_pool`` newest indices instead of uniformly from all
        available ones. Real URL tokens behave this way — once a new
        token (campaign, domain, …) appears it occurs frequently — and
        this is what makes recent history genuinely more informative
        (the premise of time-based sampling, §5.3).
    recent_pool:
        Size of the "newest indices" pool the bias draws from.
    seed:
        Generator seed (the stream is fully deterministic given it).
    """

    def __init__(
        self,
        num_chunks: int = 600,
        rows_per_chunk: int = 50,
        base_features: int = 400,
        new_features_per_chunk: int = 2,
        active_per_row: int = 15,
        missing_rate: float = 0.05,
        label_noise: float = 0.05,
        drift: Optional[DriftSchedule] = None,
        recent_feature_bias: float = 0.3,
        recent_pool: int = 100,
        seed: SeedLike = 0,
    ) -> None:
        self.num_chunks = check_positive_int(num_chunks, "num_chunks")
        self.rows_per_chunk = check_positive_int(
            rows_per_chunk, "rows_per_chunk"
        )
        self.base_features = check_positive_int(
            base_features, "base_features"
        )
        if new_features_per_chunk < 0:
            raise ValidationError(
                f"new_features_per_chunk must be >= 0, "
                f"got {new_features_per_chunk}"
            )
        self.new_features_per_chunk = int(new_features_per_chunk)
        self.active_per_row = check_positive_int(
            active_per_row, "active_per_row"
        )
        self.missing_rate = check_fraction(missing_rate, "missing_rate")
        self.label_noise = check_fraction(label_noise, "label_noise")
        self.recent_feature_bias = check_fraction(
            recent_feature_bias, "recent_feature_bias"
        )
        self.recent_pool = check_positive_int(recent_pool, "recent_pool")
        self.drift = drift if drift is not None else GradualDrift(0.02)
        self._seed_rng = ensure_rng(seed)
        # Pre-draw the full ground-truth weight universe so feature i
        # has a stable "birth weight"; drift then perturbs a copy.
        self._universe = self.base_features + (
            self.new_features_per_chunk * self.num_chunks
        )
        self._birth_weights = self._seed_rng.standard_normal(
            self._universe
        )
        self._bias = float(self._seed_rng.standard_normal() * 0.1)
        self._chunk_seeds = self._seed_rng.integers(
            0, 2**63 - 1, size=self.num_chunks
        )
        self._initial_seed = int(
            self._seed_rng.integers(0, 2**63 - 1)
        )
        # Rolling drift-replay cache (see _weights_at).
        self._drift_weights = self._birth_weights.copy()
        self._drift_rng = ensure_rng(int(self._chunk_seeds[0]) ^ 0x5EED)
        self._drift_next = 0

    # ------------------------------------------------------------------
    @property
    def feature_universe(self) -> int:
        """Total number of distinct feature indices the stream can emit."""
        return self._universe

    def available_features(self, chunk_index: int) -> int:
        """Indices in existence at ``chunk_index`` (grows linearly)."""
        if not 0 <= chunk_index < self.num_chunks:
            raise ValidationError(
                f"chunk_index {chunk_index} outside "
                f"[0, {self.num_chunks})"
            )
        return self.base_features + (
            self.new_features_per_chunk * chunk_index
        )

    # ------------------------------------------------------------------
    def initial_data(self, num_rows: int = 500) -> List[Table]:
        """The "day 0" training data: pre-drift, base features only."""
        rng = ensure_rng(self._initial_seed)
        weights = self._birth_weights
        table = self._make_rows(
            rng, num_rows, self.base_features, weights
        )
        return [table]

    def chunk(self, chunk_index: int) -> Table:
        """Deterministically generate deployment chunk ``chunk_index``."""
        available = self.available_features(chunk_index)
        rng = ensure_rng(int(self._chunk_seeds[chunk_index]))
        weights = self._weights_at(chunk_index)
        return self._make_rows(
            rng, self.rows_per_chunk, available, weights
        )

    def stream(self) -> Iterator[Table]:
        """The full deployment stream, chunk 0 first."""
        for chunk_index in range(self.num_chunks):
            yield self.chunk(chunk_index)

    # ------------------------------------------------------------------
    def _weights_at(self, chunk_index: int) -> np.ndarray:
        """Ground-truth weights after ``chunk_index + 1`` drift steps.

        Drift is replayed from the birth weights with a dedicated RNG,
        so ``chunk(i)`` is deterministic regardless of call order. A
        rolling cache makes in-order access (the common streaming
        case) O(1) drift steps per chunk; random access restarts the
        replay only when jumping backwards.
        """
        if self._drift_next > chunk_index:
            self._drift_weights = self._birth_weights.copy()
            self._drift_rng = ensure_rng(
                int(self._chunk_seeds[0]) ^ 0x5EED
            )
            self._drift_next = 0
        while self._drift_next <= chunk_index:
            self._drift_weights = self.drift.apply(
                self._drift_weights, self._drift_next, self._drift_rng
            )
            self._drift_next += 1
        return self._drift_weights

    def _make_rows(
        self,
        rng: np.random.Generator,
        num_rows: int,
        available: int,
        weights: np.ndarray,
    ) -> Table:
        active = min(self.active_per_row, available)
        pool_start = max(0, available - self.recent_pool)
        lines = np.empty(num_rows, dtype=object)
        for row in range(num_rows):
            indices = self._draw_indices(
                rng, available, active, pool_start
            )
            values = np.abs(rng.standard_normal(active)) + 0.1
            score = float(values @ weights[indices]) + self._bias
            label = 1.0 if score >= 0 else -1.0
            if rng.random() < self.label_noise:
                label = -label
            tokens = [f"{int(label)}"]
            for index, value in zip(indices, values):
                if rng.random() < self.missing_rate:
                    tokens.append(f"{index}:nan")
                else:
                    tokens.append(f"{index}:{value:.6f}")
            lines[row] = " ".join(tokens)
        return Table({"line": lines})

    def _draw_indices(
        self,
        rng: np.random.Generator,
        available: int,
        active: int,
        pool_start: int,
    ) -> np.ndarray:
        """Active feature indices for one row.

        A ``recent_feature_bias`` fraction of the draws comes from the
        newest ``recent_pool`` indices; the rest is uniform over all
        available indices. Duplicates are merged (a row never lists an
        index twice).
        """
        recent_count = int(
            rng.binomial(active, self.recent_feature_bias)
        )
        recent_count = min(recent_count, available - pool_start)
        chosen = set()
        if recent_count:
            chosen.update(
                int(i)
                for i in rng.choice(
                    np.arange(pool_start, available),
                    size=recent_count,
                    replace=False,
                )
            )
        while len(chosen) < active:
            chosen.add(int(rng.integers(0, available)))
        return np.fromiter(chosen, dtype=np.int64)


def make_url_pipeline(hash_features: int = 1024) -> Pipeline:
    """The paper's URL pipeline: parse → impute → scale → hash.

    The terminal SVM model is constructed separately (it needs the
    hashed dimensionality); see
    :func:`repro.experiments.common.build_url_model`.
    """
    return Pipeline(
        [
            SvmLightParser(name="input_parser"),
            SparseMeanImputer(name="imputer"),
            SparseStandardScaler(name="scaler"),
            FeatureHasher(num_features=hash_features, name="hasher"),
        ]
    )
