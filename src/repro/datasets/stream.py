"""Chunked-stream utilities."""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, List

from repro.data.table import Table
from repro.exceptions import ValidationError


def chunk_table(table: Table, rows_per_chunk: int) -> List[Table]:
    """Split a table into consecutive chunks of ``rows_per_chunk`` rows.

    The last chunk may be short; an empty table yields no chunks. This
    is the discretization step (§3, stage 1) for batch-shaped inputs.
    """
    if rows_per_chunk < 1:
        raise ValidationError(
            f"rows_per_chunk must be >= 1, got {rows_per_chunk}"
        )
    chunks = []
    for start in range(0, table.num_rows, rows_per_chunk):
        indices = range(start, min(start + rows_per_chunk, table.num_rows))
        chunks.append(table.take(list(indices)))
    return chunks


def take(stream: Iterable[Table], count: int) -> Iterator[Table]:
    """Yield at most ``count`` chunks from a stream."""
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    return islice(iter(stream), count)
