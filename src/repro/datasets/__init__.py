"""Synthetic datasets standing in for the paper's URL and Taxi data.

The real datasets (Ma et al.'s malicious-URL stream; NYC TLC trip
records) are not redistributable/offline-available, so these
generators produce streams that exercise the same pipeline code paths
and the same statistical phenomena the paper's experiments rely on:

* :mod:`repro.datasets.url` — sparse, high-dimensional, *gradually
  drifting* binary-classification stream with missing values and a
  growing feature space (the paper notes the URL data gains new
  features over time, which is why time-based sampling wins there).
* :mod:`repro.datasets.taxi` — dense trip-record regression stream
  with a *stationary* distribution and injected anomalies (so the
  anomaly filter has work to do, and sampling strategies tie).
"""

from repro.datasets.drift import (
    AbruptDrift,
    DriftSchedule,
    GradualDrift,
    NoDrift,
)
from repro.datasets.stream import chunk_table, take
from repro.datasets.taxi import TaxiStreamGenerator, make_taxi_pipeline
from repro.datasets.url import URLStreamGenerator, make_url_pipeline

__all__ = [
    "DriftSchedule",
    "NoDrift",
    "GradualDrift",
    "AbruptDrift",
    "URLStreamGenerator",
    "make_url_pipeline",
    "TaxiStreamGenerator",
    "make_taxi_pipeline",
    "chunk_table",
    "take",
]
