"""Deterministic fault injection for reliability testing.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each
addressing one *occurrence* of one *site* — e.g. "the 12th
``stream.read``". Sites are plain strings fired by the instrumented
code paths:

* ``stream.read`` — pulling the next chunk from the deployment stream
  (fired by the prequential loop before the source is read);
* ``storage.read`` — reading a raw chunk back from (simulated) disk
  for re-materialization or retraining;
* ``checkpoint.write`` — persisting a platform checkpoint.

Three fault kinds exist: ``crash`` (a :class:`SimulatedCrash`, fatal —
the recovery path is the fix), ``io_error`` (a :class:`TransientFault`,
an ``OSError`` subclass — a retry policy can mask it), and ``corrupt``
(the next written blob has one byte flipped — checksum verification
catches it on load).

Everything is deterministic: a plan is either spelled out explicitly
or derived from a seed via :meth:`FaultPlan.seeded`, and occurrence
counting makes the same plan hit the same operations on every
invocation. Plans are *per process incarnation* — a crash fault that
fired before a recovery does not replay after it (the recovered
process runs with whatever plan its harness passes, typically none),
mirroring how a real transient crash does not repeat deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReliabilityError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs import names
from repro.reliability import sites
from repro.utils.rng import SeedLike, ensure_rng

#: The sites the platform instruments (see
#: :mod:`repro.reliability.sites`, the canonical vocabulary).
KNOWN_SITES = sites.KNOWN_SITES

#: Valid fault kinds.
KINDS = ("crash", "io_error", "corrupt")


class SimulatedCrash(ReliabilityError):
    """An injected fatal fault: the process would have died here."""


class TransientFault(ReliabilityError, OSError):
    """An injected transient I/O fault; retry policies may mask it."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: the ``occurrence``-th hit of ``site``.

    ``occurrence`` is 1-based: ``FaultSpec("stream.read", 3, "crash")``
    crashes the third time the stream is read.
    """

    site: str
    occurrence: int
    kind: str

    def __post_init__(self) -> None:
        if self.occurrence < 1:
            raise ReliabilityError(
                f"occurrence must be >= 1, got {self.occurrence}"
            )
        if self.kind not in KINDS:
            raise ReliabilityError(
                f"kind must be one of {KINDS}, got {self.kind!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for spec in self.specs:
            key = (spec.site, spec.occurrence)
            if key in seen:
                raise ReliabilityError(
                    f"duplicate fault at {spec.site!r} "
                    f"occurrence {spec.occurrence}"
                )
            seen.add(key)

    @staticmethod
    def of(*specs: FaultSpec) -> "FaultPlan":
        """Plan from explicit specs."""
        return FaultPlan(specs=tuple(specs))

    @staticmethod
    def crash_at(site: str, occurrence: int) -> "FaultPlan":
        """Single-crash plan (the kill-at-chunk-k harness)."""
        return FaultPlan.of(FaultSpec(site, occurrence, "crash"))

    @staticmethod
    def seeded(
        seed: SeedLike,
        count: int,
        sites: Sequence[str] = KNOWN_SITES,
        kinds: Sequence[str] = KINDS,
        max_occurrence: int = 50,
    ) -> "FaultPlan":
        """Derive ``count`` faults deterministically from ``seed``.

        The same seed always yields the same plan (sites, occurrences,
        and kinds), which is what makes fault-injection experiments
        repeatable end to end.
        """
        if count < 0:
            raise ReliabilityError(f"count must be >= 0, got {count}")
        if not sites or not kinds:
            raise ReliabilityError("sites and kinds must be non-empty")
        rng = ensure_rng(seed)
        specs: List[FaultSpec] = []
        used = set()
        while len(specs) < count:
            site = sites[int(rng.integers(len(sites)))]
            occurrence = int(rng.integers(1, max_occurrence + 1))
            if (site, occurrence) in used:
                continue
            used.add((site, occurrence))
            kind = kinds[int(rng.integers(len(kinds)))]
            specs.append(FaultSpec(site, occurrence, kind))
        return FaultPlan(specs=tuple(specs))

    def for_site(self, site: str) -> Dict[int, str]:
        """Map occurrence -> kind for one site."""
        return {
            spec.occurrence: spec.kind
            for spec in self.specs
            if spec.site == site
        }

    def __len__(self) -> int:
        return len(self.specs)


@dataclass
class FiredFault:
    """Record of one injected fault (for assertions and reports)."""

    site: str
    occurrence: int
    kind: str


class FaultInjector:
    """Counts site hits and raises/corrupts according to a plan.

    One injector instruments one process incarnation; share it between
    the components of a run (stream loop, storage, checkpoint store)
    so occurrence counts are global, the way a real run experiences
    faults.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self._hits: Dict[str, int] = {}
        self._by_site: Dict[str, Dict[int, str]] = {}
        for spec in self.plan.specs:
            self._by_site.setdefault(spec.site, {})[
                spec.occurrence
            ] = spec.kind
        #: Faults that actually fired, in order.
        self.fired: List[FiredFault] = []

    def hits(self, site: str) -> int:
        """Times ``site`` has been hit so far."""
        return self._hits.get(site, 0)

    def fire(self, site: str) -> None:
        """Register one hit of ``site``; raise if a fault is armed.

        ``crash`` raises :class:`SimulatedCrash`; ``io_error`` raises
        :class:`TransientFault`; ``corrupt`` does nothing here — it is
        consumed by :meth:`corrupt` on the next written blob.
        """
        count = self._hits.get(site, 0) + 1
        self._hits[site] = count
        kind = self._by_site.get(site, {}).get(count)
        if kind is None or kind == "corrupt":
            return
        self._record(site, count, kind)
        if kind == "crash":
            raise SimulatedCrash(
                f"injected crash at {site!r} occurrence {count}"
            )
        raise TransientFault(
            f"injected transient I/O error at {site!r} "
            f"occurrence {count}"
        )

    def corrupt(self, site: str, blob: bytes) -> bytes:
        """Flip one byte of ``blob`` when a corrupt fault is armed.

        Call this *after* :meth:`fire` for the same hit: it consults
        the occurrence count that :meth:`fire` just assigned. Returns
        the blob unchanged when no corruption is scheduled.
        """
        count = self._hits.get(site, 0)
        kind = self._by_site.get(site, {}).get(count)
        if kind != "corrupt" or not blob:
            return blob
        self._record(site, count, kind)
        index = len(blob) // 2
        mutated = bytearray(blob)
        mutated[index] ^= 0xFF
        return bytes(mutated)

    def _record(self, site: str, occurrence: int, kind: str) -> None:
        self.fired.append(FiredFault(site, occurrence, kind))
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                names.RELIABILITY_FAULTS_INJECTED
            ).inc()
            self.telemetry.tracer.point(
                names.RELIABILITY_FAULT,
                site=site,
                occurrence=occurrence,
                kind=kind,
            )


#: Shared no-op injector (empty plan); lets call sites skip None checks.
NULL_INJECTOR = FaultInjector()
