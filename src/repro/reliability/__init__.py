"""Reliability layer: checkpointing, crash recovery, fault injection.

The continuous-training platform of the paper is a long-running
process; this package makes its state **durable** and its failure
behaviour **testable**:

* :mod:`repro.reliability.checkpoint` — full-platform checkpoints
  (pipeline/model/optimizer bundle + scheduler, sampler RNG, cost, and
  drift state + the materialization-cache manifest) written atomically
  on a cadence with keep-last-K retention;
* :mod:`repro.reliability.faults` — deterministic fault injection
  (crash / transient I/O error / corrupt byte) addressed by site and
  occurrence count;
* :mod:`repro.reliability.retry` — bounded exponential backoff with
  deterministic jitter for transient faults;
* :mod:`repro.reliability.runtime` — the per-run glue threaded through
  the deployment loop.

The headline invariant (proved by the golden recovery tests): kill the
platform after chunk *k*, recover from the latest checkpoint, and the
completed run's predictions, cost-model totals, and telemetry counters
are **byte-identical** to a run that was never interrupted.
"""

from repro.reliability.checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointConfig,
    CheckpointStore,
    PlatformCheckpoint,
    as_store,
)
from repro.reliability.faults import (
    KINDS,
    KNOWN_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FiredFault,
    NULL_INJECTOR,
    SimulatedCrash,
    TransientFault,
)
from repro.reliability.retry import (
    DEFAULT_RETRYABLE,
    Retrier,
    RetryExhausted,
    RetryPolicy,
)
from repro.reliability.runtime import RecoveryInfo, ReliabilityRuntime
from repro.reliability.sites import (
    CHECKPOINT_WRITE,
    STORAGE_READ,
    STREAM_READ,
    is_known_site,
)

__all__ = [
    "CHECKPOINT_WRITE",
    "STORAGE_READ",
    "STREAM_READ",
    "is_known_site",
    "CHECKPOINT_MAGIC",
    "CheckpointConfig",
    "CheckpointStore",
    "PlatformCheckpoint",
    "as_store",
    "KINDS",
    "KNOWN_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "NULL_INJECTOR",
    "SimulatedCrash",
    "TransientFault",
    "DEFAULT_RETRYABLE",
    "Retrier",
    "RetryExhausted",
    "RetryPolicy",
    "RecoveryInfo",
    "ReliabilityRuntime",
]
