"""Platform checkpoints: capture, atomic persistence, bounded retention.

A :class:`PlatformCheckpoint` extends the
:class:`~repro.persistence.DeploymentBundle` (pipeline + model +
optimizer) with everything else a run mutates: the stream cursor,
component state dicts (scheduler, sampler RNG, cost tracker, drift
detectors, …), the materialization-cache manifest, and (for telemetry
byte-identity) the metrics-registry state.

A :class:`CheckpointStore` owns one checkpoint directory::

    <dir>/ckpt-00000012.ckpt        checksummed envelope (see
                                    repro.persistence.seal_envelope)
    <dir>/ckpt-00000012.refs.json   chunk files this checkpoint needs
    <dir>/chunks/raw-00000003.pkl   spilled raw chunk payload
    <dir>/chunks/feat-00000003-<digest>.pkl
                                    spilled feature payload

Checkpoint files are written atomically (staged + ``os.replace``) on a
configurable cadence and pruned to the newest ``keep`` (the shared
:func:`~repro.persistence.select_prunable` policy). Chunk payloads are
content-immutable, written once, and garbage-collected when no
retained checkpoint references them.

Feature payloads *must* be persisted rather than re-derived: a
materialized chunk embeds the pipeline statistics as of its ingest
time, so re-running today's pipeline over the raw chunk would produce
different bytes — and different downstream training results — than the
uninterrupted run. The manifest stores ids; the payload files store
the arrays; recovery reassembles the exact cache.

Loading falls back: :meth:`CheckpointStore.load_latest` walks
checkpoints newest-first and skips any that fail their checksum, so a
corrupted latest checkpoint degrades recovery to the previous one
instead of failing it.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.data.chunk import ChunkStub, FeatureChunk, RawChunk
from repro.exceptions import ReliabilityError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs import names
from repro.persistence import (
    DeploymentBundle,
    PathLike,
    PersistenceError,
    atomic_write_bytes,
    open_envelope,
    seal_envelope,
    select_prunable,
)
from repro.reliability.faults import FaultInjector
from repro.reliability.retry import Retrier
from repro.reliability.sites import CHECKPOINT_WRITE
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # import cycle: data.storage fires sites from here
    from repro.data.storage import ChunkStorage

#: File magic identifying a platform checkpoint.
CHECKPOINT_MAGIC = b"REPRO-CKPT-1\n"

#: File magic identifying a spilled chunk payload.
CHUNK_MAGIC = b"REPRO-CHUNK-1\n"


@dataclass(frozen=True)
class CheckpointConfig:
    """Where, how often, and how many checkpoints to keep."""

    directory: PathLike
    cadence_chunks: int = 10
    keep: int = 3

    def __post_init__(self) -> None:
        check_positive_int(self.cadence_chunks, "cadence_chunks")
        check_positive_int(self.keep, "keep")


@dataclass
class PlatformCheckpoint:
    """All run state at one stream position.

    ``cursor`` is the number of stream chunks fully processed;
    recovery resumes reading at exactly that offset. ``state`` nests
    the component state dicts (shape owned by whoever wrote the
    checkpoint — the deployment loop or the platform); ``manifest`` is
    the storage manifest when the run has chunk storage.
    """

    cursor: int
    approach: str
    bundle: DeploymentBundle
    state: Dict[str, Any] = field(default_factory=dict)
    manifest: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.cursor < 0:
            raise ReliabilityError(
                f"cursor must be >= 0, got {self.cursor}"
            )


def as_store(
    checkpoint: Union[
        "CheckpointStore", CheckpointConfig, PathLike, None
    ],
    telemetry: Optional[Telemetry] = None,
    fault_injector: Optional[FaultInjector] = None,
    retrier: Optional[Retrier] = None,
) -> Optional["CheckpointStore"]:
    """Normalize a ``checkpoint=`` option into a store (or ``None``).

    Accepts an existing store, a :class:`CheckpointConfig`, or a bare
    directory path (default cadence/retention).
    """
    if checkpoint is None:
        return None
    if isinstance(checkpoint, CheckpointStore):
        return checkpoint
    if not isinstance(checkpoint, CheckpointConfig):
        checkpoint = CheckpointConfig(directory=checkpoint)
    return CheckpointStore(
        checkpoint,
        telemetry=telemetry,
        fault_injector=fault_injector,
        retrier=retrier,
    )


class CheckpointStore:
    """One checkpoint directory: write, load-with-fallback, prune."""

    def __init__(
        self,
        config: Union[CheckpointConfig, PathLike],
        telemetry: Optional[Telemetry] = None,
        fault_injector: Optional[FaultInjector] = None,
        retrier: Optional[Retrier] = None,
    ) -> None:
        if not isinstance(config, CheckpointConfig):
            config = CheckpointConfig(directory=config)
        self.config = config
        self.directory = Path(config.directory)
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.fault_injector = fault_injector
        self.retrier = retrier
        # Spill cache: timestamp -> (weakref to the FeatureChunk whose
        # payload is on disk, its file name). Feature payloads are
        # immutable objects — re-materialization after an eviction
        # builds a *new* chunk (with today's pipeline statistics), so
        # identity is exactly the right cache key. Saves re-pickling
        # every materialized chunk on every checkpoint just to learn a
        # digest that is already on disk.
        self._spilled_features: Dict[
            int, Tuple["weakref.ref", str]
        ] = {}

    @property
    def cadence(self) -> int:
        return self.config.cadence_chunks

    @property
    def keep(self) -> int:
        return self.config.keep

    @property
    def chunks_directory(self) -> Path:
        return self.directory / "chunks"

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(
        self,
        checkpoint: PlatformCheckpoint,
        storage: Optional[ChunkStorage] = None,
    ) -> Path:
        """Persist a checkpoint atomically; returns its path.

        With ``storage``, the cache manifest is captured into the
        checkpoint and any not-yet-spilled chunk payloads are written
        to the ``chunks/`` area first (append-only: payloads are
        immutable, so existing files are reused). The refs sidecar
        lands before the checkpoint file so retention GC always knows
        what a checkpoint needs. Old checkpoints beyond ``keep`` are
        pruned afterwards.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        refs: List[str] = []
        if storage is not None:
            checkpoint.manifest, refs = self._spill_storage(storage)
        name = f"ckpt-{checkpoint.cursor:08d}"
        atomic_write_bytes(
            self.directory / f"{name}.refs.json",
            json.dumps(
                {"cursor": checkpoint.cursor, "chunks": refs}
            ).encode(),
        )
        blob = seal_envelope(checkpoint, CHECKPOINT_MAGIC)
        path = self.directory / f"{name}.ckpt"

        def attempt() -> Path:
            if self.fault_injector is not None:
                self.fault_injector.fire(CHECKPOINT_WRITE)
                data = self.fault_injector.corrupt(
                    CHECKPOINT_WRITE, blob
                )
            else:
                data = blob
            return atomic_write_bytes(path, data)

        if self.retrier is not None:
            self.retrier.call(attempt, site=CHECKPOINT_WRITE)
        else:
            attempt()
        if self.telemetry.enabled:
            self.telemetry.tracer.point(
                names.RELIABILITY_CHECKPOINT_WRITTEN,
                cursor=checkpoint.cursor,
                bytes=len(blob),
                path=str(path),
            )
        self.prune()
        return path

    def _spill_storage(
        self, storage: ChunkStorage
    ) -> Tuple[Dict[str, Any], List[str]]:
        """Capture the manifest and spill missing payload files."""
        manifest = storage.manifest()
        refs: List[str] = []
        self.chunks_directory.mkdir(parents=True, exist_ok=True)
        for timestamp in manifest["raw"]:
            name = f"raw-{timestamp:08d}.pkl"
            target = self.chunks_directory / name
            if not target.exists():
                blob = seal_envelope(
                    storage.peek_raw(timestamp), CHUNK_MAGIC
                )
                atomic_write_bytes(target, blob)
            refs.append(name)
        for entry in manifest["features"]:
            if not entry["materialized"]:
                continue
            timestamp = entry["timestamp"]
            chunk = storage.peek_features(timestamp)
            cached = self._spilled_features.get(timestamp)
            if cached is not None and cached[0]() is chunk:
                name = cached[1]
            else:
                blob = seal_envelope(chunk, CHUNK_MAGIC)
                digest = hashlib.sha256(blob).hexdigest()[:16]
                name = f"feat-{timestamp:08d}-{digest}.pkl"
                target = self.chunks_directory / name
                if not target.exists():
                    atomic_write_bytes(target, blob)
                self._spilled_features[timestamp] = (
                    weakref.ref(chunk),
                    name,
                )
            entry["payload_file"] = name
            refs.append(name)
        return manifest, refs

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def checkpoints(self) -> List[Path]:
        """Checkpoint files, oldest (lowest cursor) first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("ckpt-*.ckpt"))

    def load(self, path: PathLike) -> PlatformCheckpoint:
        """Load and verify one checkpoint file."""
        path = Path(path)
        try:
            blob = path.read_bytes()
        except OSError as error:
            raise PersistenceError(
                f"cannot read checkpoint {path}: {error}"
            ) from error
        checkpoint = open_envelope(
            blob, CHECKPOINT_MAGIC, source=str(path)
        )
        if not isinstance(checkpoint, PlatformCheckpoint):
            raise PersistenceError(
                f"{path} does not contain a PlatformCheckpoint"
            )
        return checkpoint

    def load_latest(self) -> PlatformCheckpoint:
        """Newest checkpoint that passes verification.

        Corrupted or truncated checkpoints are skipped (with a
        ``reliability.checkpoint_corrupt`` trace point), falling back
        to older ones; :class:`~repro.exceptions.ReliabilityError` when
        none survive.
        """
        paths = self.checkpoints()
        for path in reversed(paths):
            try:
                return self.load(path)
            except PersistenceError as error:
                if self.telemetry.enabled:
                    self.telemetry.tracer.point(
                        names.RELIABILITY_CHECKPOINT_CORRUPT,
                        path=str(path),
                        error=str(error),
                    )
        raise ReliabilityError(
            f"no valid checkpoint under {self.directory} "
            f"({len(paths)} file(s) inspected)"
        )

    # ------------------------------------------------------------------
    # Storage reassembly
    # ------------------------------------------------------------------
    def restore_storage(
        self, storage: ChunkStorage, manifest: Dict[str, Any]
    ) -> None:
        """Rebuild a :class:`ChunkStorage` from a checkpoint manifest."""
        raw: List[RawChunk] = [
            self._load_chunk(f"raw-{timestamp:08d}.pkl")
            for timestamp in manifest["raw"]
        ]
        features: List[Union[FeatureChunk, ChunkStub]] = []
        for entry in manifest["features"]:
            if entry["materialized"]:
                features.append(
                    self._load_chunk(entry["payload_file"])
                )
            else:
                features.append(
                    ChunkStub(
                        timestamp=entry["timestamp"],
                        raw_reference=entry["raw_reference"],
                    )
                )
        storage.restore(raw, features, manifest["stats"])

    def _load_chunk(self, name: str):
        path = self.chunks_directory / name
        try:
            blob = path.read_bytes()
        except OSError as error:
            raise ReliabilityError(
                f"checkpoint references missing chunk payload "
                f"{path}: {error}"
            ) from error
        return open_envelope(blob, CHUNK_MAGIC, source=str(path))

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(self) -> List[Path]:
        """Keep the newest ``keep`` checkpoints; GC orphaned payloads.

        Chunk-payload GC is conservative: it only runs when every
        retained checkpoint has a refs sidecar (otherwise nothing can
        be proven unreferenced).
        """
        paths = self.checkpoints()
        dropped = select_prunable(paths, self.keep)
        for path in dropped:
            path.unlink(missing_ok=True)
            self._refs_path(path).unlink(missing_ok=True)
        retained = [p for p in paths if p not in dropped]
        referenced: Set[str] = set()
        for path in retained:
            refs_path = self._refs_path(path)
            try:
                payload = json.loads(refs_path.read_text())
            except (OSError, ValueError):
                return dropped  # conservative: skip chunk GC
            referenced.update(payload.get("chunks", []))
        if self.chunks_directory.is_dir():
            # sorted: deterministic unlink order (reprolint REP010).
            for orphan in sorted(self.chunks_directory.iterdir()):
                if (
                    orphan.name not in referenced
                    and not orphan.name.endswith(".tmp")
                ):
                    orphan.unlink(missing_ok=True)
        # Stale refs sidecars whose checkpoint is gone.
        for refs_path in sorted(self.directory.glob("ckpt-*.refs.json")):
            ckpt = refs_path.with_name(
                refs_path.name.replace(".refs.json", ".ckpt")
            )
            if not ckpt.exists():
                refs_path.unlink(missing_ok=True)
        return dropped

    @staticmethod
    def _refs_path(checkpoint_path: Path) -> Path:
        return checkpoint_path.with_name(
            checkpoint_path.stem + ".refs.json"
        )

    def __repr__(self) -> str:
        return (
            f"CheckpointStore({str(self.directory)!r}, "
            f"cadence={self.cadence}, keep={self.keep})"
        )
