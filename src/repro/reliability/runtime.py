"""Per-run reliability services for the deployment loop.

A :class:`ReliabilityRuntime` bundles the three reliability concerns a
prequential run threads through its hot loop:

* **guarded stream iteration** — every ``next()`` on the deployment
  stream fires the ``stream.read`` fault site and, when a retry policy
  is configured, transient faults are retried (the *next* occurrence of
  the site is a fresh draw, so a retry re-reads the same chunk);
* **cadence checkpointing** — after every ``cadence_chunks``-th chunk
  the runtime asks the deployment for its state and writes a
  :class:`~repro.reliability.checkpoint.PlatformCheckpoint`;
* **recovery bookkeeping** — when a run resumes from a checkpoint the
  runtime records a :class:`RecoveryInfo` that ends up on the
  :class:`~repro.core.deployment.base.DeploymentResult`.

Telemetry invariant: counters incremented *by* the reliability layer
for a checkpoint write happen **before** the metrics state is captured
into that checkpoint, so a recovered run's counters continue exactly
where the uninterrupted run's would be. Recovery itself is reported
through trace points and :class:`RecoveryInfo`, never counters — a
recovered run must finish with byte-identical counters to an
uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Union

from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs import names
from repro.reliability.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    PlatformCheckpoint,
    as_store,
)
from repro.reliability.faults import FaultInjector, FaultPlan
from repro.reliability.retry import Retrier, RetryPolicy
from repro.reliability.sites import STREAM_READ
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class RecoveryInfo:
    """How a run was resumed (attached to the deployment result)."""

    cursor: int
    approach: str
    redo_chunks: Optional[int] = None


class ReliabilityRuntime:
    """Fault injection, retries, and checkpoint cadence for one run."""

    def __init__(
        self,
        checkpoint: Union[
            CheckpointStore, CheckpointConfig, str, None
        ] = None,
        fault_plan: Union[FaultPlan, FaultInjector, None] = None,
        retry: Union[RetryPolicy, Retrier, None] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        if isinstance(fault_plan, FaultInjector):
            self.injector = fault_plan
        else:
            self.injector = FaultInjector(fault_plan, self.telemetry)
        if isinstance(retry, Retrier):
            self.retrier: Optional[Retrier] = retry
        elif retry is not None:
            self.retrier = Retrier(retry, self.telemetry)
        else:
            self.retrier = None
        self.store = as_store(
            checkpoint,
            telemetry=self.telemetry,
            fault_injector=(
                self.injector if len(self.injector.plan) else None
            ),
            retrier=self.retrier,
        )
        #: Cursor of the last checkpoint written this run (or ``None``).
        self.last_checkpoint_cursor: Optional[int] = None
        #: Set when the run was resumed from a checkpoint.
        self.recovery: Optional[RecoveryInfo] = None

    # ------------------------------------------------------------------
    # Stream guarding
    # ------------------------------------------------------------------
    def read_chunk(self, iterator: Iterator[Any]) -> Any:
        """``next(iterator)`` through the fault/retry machinery.

        The ``stream.read`` site fires *before* the underlying read, so
        a retried transient fault pulls the same chunk on its second
        attempt rather than skipping one. ``StopIteration`` passes
        through untouched (end of stream is not a fault).
        """
        if not len(self.injector.plan) and self.retrier is None:
            return next(iterator)

        def attempt() -> Any:
            self.injector.fire(STREAM_READ)
            return next(iterator)

        if self.retrier is None:
            return attempt()
        return self.retrier.call(
            attempt, site=STREAM_READ, retryable=self._retryable()
        )

    @staticmethod
    def _retryable():
        # StopIteration must never be swallowed by the retry loop; the
        # default retryable set (TransientFault/OSError) excludes it
        # already, so reuse it explicitly for clarity.
        from repro.reliability.retry import DEFAULT_RETRYABLE

        return DEFAULT_RETRYABLE

    @staticmethod
    def skip_chunks(iterator: Iterator[Any], count: int) -> None:
        """Consume ``count`` already-processed chunks after recovery.

        Deployment streams are deterministic seeded generators, so a
        recovered run rebuilds the pre-crash prefix by regenerating and
        discarding it — no fault sites fire (those chunks were already
        read successfully before the crash).
        """
        if count < 0:
            check_positive_int(count, "count")
        for _ in range(count):
            next(iterator)

    # ------------------------------------------------------------------
    # Checkpoint cadence
    # ------------------------------------------------------------------
    def due(self, cursor: int) -> bool:
        """True when a checkpoint should be written at ``cursor``."""
        return (
            self.store is not None
            and cursor > 0
            and cursor % self.store.cadence == 0
        )

    def begin_checkpoint(self) -> None:
        """Pre-capture accounting for an imminent checkpoint write.

        Must run *before* the metrics registry is captured into the
        checkpoint state so the written counter includes the checkpoint
        being written (keeping recovered-run counters byte-identical to
        the uninterrupted timeline).
        """
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                names.RELIABILITY_CHECKPOINTS_WRITTEN
            ).inc()

    def mark_recovered(self, checkpoint: PlatformCheckpoint) -> None:
        """Record that this run resumed from ``checkpoint``."""
        self.recovery = RecoveryInfo(
            cursor=checkpoint.cursor, approach=checkpoint.approach
        )
        if self.telemetry.enabled:
            self.telemetry.tracer.point(
                names.RELIABILITY_RECOVERED,
                cursor=checkpoint.cursor,
                approach=checkpoint.approach,
            )
