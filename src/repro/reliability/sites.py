"""The fault-injection site vocabulary — the single source of truth.

A *site* is a string naming one instrumented operation a
:class:`~repro.reliability.faults.FaultInjector` can interpose on.
Every site the platform fires is declared here as an importable
constant, and reprolint's REP006 rule checks that any site literal
reaching ``fire``/``corrupt``/``FaultSpec``/``crash_at`` is one of
them — a typo'd site would otherwise silently never fire and a fault
plan would silently never trigger.
"""

from __future__ import annotations

#: Pulling the next chunk from the deployment stream (fired by the
#: prequential loop before the source is read).
STREAM_READ = "stream.read"

#: Reading a raw chunk back from (simulated) disk for
#: re-materialization or retraining.
STORAGE_READ = "storage.read"

#: Persisting a platform checkpoint.
CHECKPOINT_WRITE = "checkpoint.write"

#: The sites the platform instruments, in firing-frequency order.
KNOWN_SITES = (STREAM_READ, STORAGE_READ, CHECKPOINT_WRITE)


def is_known_site(site: str) -> bool:
    """True when ``site`` names an instrumented operation."""
    return site in KNOWN_SITES
