"""Bounded exponential backoff with deterministic jitter.

A :class:`RetryPolicy` describes the schedule; a :class:`Retrier`
executes callables under it, retrying :class:`TransientFault` /
``OSError`` failures and re-raising everything else (including
:class:`~repro.reliability.faults.SimulatedCrash` — a crash is not
retryable by definition).

Delays are *virtual*: the platform's clock is the deterministic
cost-model clock, so the retrier records the backoff it would have
slept (``total_delay``) instead of sleeping wall time. Jitter comes
from a dedicated generator seeded through :mod:`repro.utils.rng`,
keeping retried runs bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.exceptions import ReliabilityError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs import names
from repro.reliability.faults import SimulatedCrash, TransientFault
from repro.utils.rng import SeedLike, ensure_rng

_T = TypeVar("_T")

#: Exception types a retrier considers transient by default.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    TransientFault,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff parameters.

    Attempt ``i`` (0-based) backs off ``min(base_delay * multiplier**i,
    max_delay)`` plus a uniform jitter in ``[0, jitter * delay]``. At
    most ``max_attempts`` calls run in total.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReliabilityError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReliabilityError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ReliabilityError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ReliabilityError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def backoff(self, attempt: int) -> float:
        """Deterministic (pre-jitter) delay after failed ``attempt``."""
        return min(
            self.base_delay * self.multiplier**attempt, self.max_delay
        )


class RetryExhausted(ReliabilityError):
    """Every attempt allowed by the policy failed."""


class Retrier:
    """Executes callables under a :class:`RetryPolicy`.

    Records ``reliability.retries`` / ``reliability.retries_exhausted``
    counters and accumulates the virtual backoff in
    :attr:`total_delay`.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self._rng = ensure_rng(self.policy.seed)
        #: Virtual seconds of backoff accumulated (never slept).
        self.total_delay = 0.0
        #: Number of retried (i.e. failed-then-reattempted) calls.
        self.retries = 0

    def call(
        self,
        fn: Callable[[], _T],
        site: str = "<unnamed>",
        retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
    ) -> _T:
        """Run ``fn``, retrying transient failures per the policy.

        :class:`SimulatedCrash` and non-``retryable`` exceptions
        propagate immediately; after ``max_attempts`` transient
        failures a :class:`RetryExhausted` chains the last one.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.policy.max_attempts):
            try:
                return fn()
            except SimulatedCrash:
                raise
            except retryable as error:
                last = error
                if attempt == self.policy.max_attempts - 1:
                    break
                delay = self.policy.backoff(attempt)
                delay += float(
                    self._rng.uniform(0.0, self.policy.jitter * delay)
                )
                self.total_delay += delay
                self.retries += 1
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        names.RELIABILITY_RETRIES
                    ).inc()
                    self.telemetry.tracer.point(
                        names.RELIABILITY_RETRY,
                        site=site,
                        attempt=attempt + 1,
                        delay=delay,
                    )
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                names.RELIABILITY_RETRIES_EXHAUSTED
            ).inc()
        raise RetryExhausted(
            f"{site!r} failed after {self.policy.max_attempts} "
            f"attempts: {last}"
        ) from last
