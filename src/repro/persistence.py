"""Deployment persistence: save and restore pipeline + model + optimizer.

The paper's platform deploys the *pipeline alongside the model* (§4.3)
and warm-starts from existing statistics, weights, and optimizer state
(§5.2). This module makes that state durable: a deployment bundle —
the fitted pipeline (with all component statistics), the model, and
the optimizer state — round-trips through a single file, so a platform
restart resumes exactly where it stopped (the conditional-independence
property of §3.3 guarantees the resumed training stream is identical).

Format: a pickle payload wrapped with a format tag, the library
version, and a SHA-256 checksum. Loading verifies the checksum and tag
before unpickling, so truncated or foreign files fail loudly instead
of deserialising garbage.

Writes are crash-safe: the blob is staged in a temporary file in the
destination directory, fsynced, and moved into place with
``os.replace`` — a process killed mid-write can never leave a
truncated bundle at the destination path (at worst a stray ``*.tmp``
file the next save ignores).

Security note — pickle executes code on load; only load bundles you
wrote. This mirrors every mainstream Python model store.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, TypeVar, Union

from repro.exceptions import ReproError
from repro.ml.models.base import LinearSGDModel
from repro.ml.optim.base import Optimizer
from repro.pipeline.pipeline import Pipeline

# Crash-safe write primitives live in repro.utils.fileio (the bottom
# of the subsystem layering); re-exported here because every bundle
# consumer historically imported them from this module.
from repro.utils.fileio import atomic_write_bytes, sweep_stale_tmp

#: Anything the filesystem accepts as a path.
PathLike = Union[str, "os.PathLike[str]"]

#: File magic identifying a deployment bundle.
MAGIC = b"REPRO-BUNDLE-1\n"

_T = TypeVar("_T")


class PersistenceError(ReproError):
    """A bundle file is malformed, corrupted, or incompatible."""


def select_prunable(items: Sequence[_T], keep: int) -> List[_T]:
    """Return the items to drop so only the last ``keep`` remain.

    ``items`` must be ordered oldest first; the newest ``keep`` entries
    survive. Shared keep-last-K policy for the serving registry's
    bundle GC and the reliability layer's checkpoint retention.
    """
    if keep < 0:
        raise PersistenceError(f"keep must be >= 0, got {keep}")
    return list(items[: max(len(items) - keep, 0)])


@dataclass
class DeploymentBundle:
    """The durable unit: everything needed to resume a deployment."""

    pipeline: Pipeline
    model: LinearSGDModel
    optimizer: Optimizer

    def __post_init__(self) -> None:
        if not isinstance(self.pipeline, Pipeline):
            raise PersistenceError(
                f"pipeline must be a Pipeline, got "
                f"{type(self.pipeline).__name__}"
            )
        if not isinstance(self.model, LinearSGDModel):
            raise PersistenceError(
                f"model must be a LinearSGDModel, got "
                f"{type(self.model).__name__}"
            )
        if not isinstance(self.optimizer, Optimizer):
            raise PersistenceError(
                f"optimizer must be an Optimizer, got "
                f"{type(self.optimizer).__name__}"
            )




def save_bundle(
    path: PathLike,
    pipeline: Pipeline,
    model: LinearSGDModel,
    optimizer: Optimizer,
) -> Path:
    """Write a deployment bundle to ``path`` and return the path.

    The payload is fully serialised in memory first (a serialisation
    failure never touches the filesystem) and lands on disk through
    :func:`atomic_write_bytes`, so a crash mid-write can never leave a
    truncated file that fails its checksum on restart.
    """
    bundle = DeploymentBundle(
        pipeline=pipeline, model=model, optimizer=optimizer
    )
    path = Path(path)
    return atomic_write_bytes(path, serialize_bundle(bundle))


def serialize_bundle(bundle: DeploymentBundle) -> bytes:
    """Serialise a bundle to the on-disk blob (magic + digest + pickle)."""
    buffer = io.BytesIO()
    pickle.dump(
        {
            "version": _library_version(),
            "bundle": bundle,
        },
        buffer,
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    payload = buffer.getvalue()
    digest = hashlib.sha256(payload).digest()
    return MAGIC + digest + payload


def seal_envelope(obj: object, magic: bytes) -> bytes:
    """Wrap any picklable object in a checksummed envelope.

    Same on-disk discipline as a deployment bundle — format magic,
    SHA-256 digest, then the pickle payload (which records the library
    version) — reused by the reliability layer for checkpoints and
    spilled chunk payloads.
    """
    buffer = io.BytesIO()
    pickle.dump(
        {"version": _library_version(), "payload": obj},
        buffer,
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    payload = buffer.getvalue()
    digest = hashlib.sha256(payload).digest()
    return magic + digest + payload


def open_envelope(
    blob: bytes, magic: bytes, source: str = "<memory>"
) -> object:
    """Verify and unwrap a :func:`seal_envelope` blob.

    Raises :class:`PersistenceError` on a bad magic tag, checksum
    mismatch (corruption/truncation), or library-version mismatch.
    """
    if not blob.startswith(magic):
        raise PersistenceError(
            f"{source} is not a {magic[:-1].decode()} envelope "
            f"(bad magic header)"
        )
    body = blob[len(magic):]
    if len(body) < 32:
        raise PersistenceError(f"{source} is truncated")
    digest, payload = body[:32], body[32:]
    if hashlib.sha256(payload).digest() != digest:
        raise PersistenceError(
            f"{source} failed its checksum (corrupted or truncated)"
        )
    try:
        envelope = pickle.loads(payload)
    except Exception as error:
        raise PersistenceError(
            f"{source} could not be deserialised: {error}"
        ) from error
    written_by = envelope.get("version")
    current = _library_version()
    if written_by != current:
        raise PersistenceError(
            f"{source} was written by repro {written_by!r} but this "
            f"library is repro {current!r}"
        )
    return envelope.get("payload")


def load_bundle(path: PathLike) -> DeploymentBundle:
    """Read a deployment bundle, verifying magic, checksum, and the
    library version it was written by."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise PersistenceError(
            f"cannot read bundle {path}: {error}"
        ) from error
    if not raw.startswith(MAGIC):
        raise PersistenceError(
            f"{path} is not a repro deployment bundle "
            f"(bad magic header)"
        )
    body = raw[len(MAGIC):]
    if len(body) < 32:
        raise PersistenceError(f"{path} is truncated")
    digest, payload = body[:32], body[32:]
    if hashlib.sha256(payload).digest() != digest:
        raise PersistenceError(
            f"{path} failed its checksum (corrupted or truncated)"
        )
    try:
        envelope = pickle.loads(payload)
    except Exception as error:
        raise PersistenceError(
            f"{path} could not be deserialised: {error}"
        ) from error
    written_by = envelope.get("version")
    current = _library_version()
    if written_by != current:
        raise PersistenceError(
            f"{path} was written by repro {written_by!r} but this "
            f"library is repro {current!r}; re-save the bundle with "
            f"the current version"
        )
    bundle = envelope.get("bundle")
    if not isinstance(bundle, DeploymentBundle):
        raise PersistenceError(
            f"{path} does not contain a DeploymentBundle"
        )
    return bundle


def bundle_checksum(path: PathLike) -> str:
    """Hex SHA-256 of a bundle's payload, read from the file header.

    Cheap (no unpickling): the digest is stored right after the magic
    tag. The serving registry records it as the version fingerprint.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            header = handle.read(len(MAGIC) + 32)
    except OSError as error:
        raise PersistenceError(
            f"cannot read bundle {path}: {error}"
        ) from error
    if not header.startswith(MAGIC) or len(header) < len(MAGIC) + 32:
        raise PersistenceError(
            f"{path} is not a repro deployment bundle "
            f"(bad magic header)"
        )
    return header[len(MAGIC):].hex()


def _library_version() -> str:
    from repro import __version__

    return __version__
