"""Deployment persistence: save and restore pipeline + model + optimizer.

The paper's platform deploys the *pipeline alongside the model* (§4.3)
and warm-starts from existing statistics, weights, and optimizer state
(§5.2). This module makes that state durable: a deployment bundle —
the fitted pipeline (with all component statistics), the model, and
the optimizer state — round-trips through a single file, so a platform
restart resumes exactly where it stopped (the conditional-independence
property of §3.3 guarantees the resumed training stream is identical).

Format: a pickle payload wrapped with a format tag, the library
version, and a SHA-256 checksum. Loading verifies the checksum and tag
before unpickling, so truncated or foreign files fail loudly instead
of deserialising garbage.

Security note — pickle executes code on load; only load bundles you
wrote. This mirrors every mainstream Python model store.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.exceptions import ReproError
from repro.ml.models.base import LinearSGDModel
from repro.ml.optim.base import Optimizer
from repro.pipeline.pipeline import Pipeline

#: File magic identifying a deployment bundle.
MAGIC = b"REPRO-BUNDLE-1\n"


class PersistenceError(ReproError):
    """A bundle file is malformed, corrupted, or incompatible."""


@dataclass
class DeploymentBundle:
    """The durable unit: everything needed to resume a deployment."""

    pipeline: Pipeline
    model: LinearSGDModel
    optimizer: Optimizer

    def __post_init__(self) -> None:
        if not isinstance(self.pipeline, Pipeline):
            raise PersistenceError(
                f"pipeline must be a Pipeline, got "
                f"{type(self.pipeline).__name__}"
            )
        if not isinstance(self.model, LinearSGDModel):
            raise PersistenceError(
                f"model must be a LinearSGDModel, got "
                f"{type(self.model).__name__}"
            )
        if not isinstance(self.optimizer, Optimizer):
            raise PersistenceError(
                f"optimizer must be an Optimizer, got "
                f"{type(self.optimizer).__name__}"
            )


def save_bundle(
    path: Union[str, Path],
    pipeline: Pipeline,
    model: LinearSGDModel,
    optimizer: Optimizer,
) -> Path:
    """Write a deployment bundle to ``path`` and return the path.

    The write is atomic-ish: the payload is fully serialised in memory
    first, so a serialisation failure never leaves a partial file.
    """
    bundle = DeploymentBundle(
        pipeline=pipeline, model=model, optimizer=optimizer
    )
    buffer = io.BytesIO()
    pickle.dump(
        {
            "version": _library_version(),
            "bundle": bundle,
        },
        buffer,
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    payload = buffer.getvalue()
    digest = hashlib.sha256(payload).digest()
    path = Path(path)
    path.write_bytes(MAGIC + digest + payload)
    return path


def load_bundle(path: Union[str, Path]) -> DeploymentBundle:
    """Read a deployment bundle, verifying magic and checksum."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise PersistenceError(
            f"cannot read bundle {path}: {error}"
        ) from error
    if not raw.startswith(MAGIC):
        raise PersistenceError(
            f"{path} is not a repro deployment bundle "
            f"(bad magic header)"
        )
    body = raw[len(MAGIC):]
    if len(body) < 32:
        raise PersistenceError(f"{path} is truncated")
    digest, payload = body[:32], body[32:]
    if hashlib.sha256(payload).digest() != digest:
        raise PersistenceError(
            f"{path} failed its checksum (corrupted or truncated)"
        )
    try:
        envelope = pickle.loads(payload)
    except Exception as error:
        raise PersistenceError(
            f"{path} could not be deserialised: {error}"
        ) from error
    bundle = envelope.get("bundle")
    if not isinstance(bundle, DeploymentBundle):
        raise PersistenceError(
            f"{path} does not contain a DeploymentBundle"
        )
    return bundle


def _library_version() -> str:
    from repro import __version__

    return __version__
