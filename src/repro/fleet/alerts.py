"""Monitor rules for fleet health: starvation and budget breach.

Attach via ``telemetry.attach_monitor(rules=fleet_rules(...))``. The
starvation rule is an absence watch on ``fleet.training`` — if no
tenant trains for a full silence budget of virtual cost, scheduling
has wedged (or the budget is zero) and the fleet is drifting stale.
The budget-breach rule fires when any tenant is found holding more
materialized bytes than its freshly assigned quota
(``fleet.overdraft`` points, emitted just before the orchestrator
evicts the excess).
"""

from __future__ import annotations

from typing import List

from repro.obs import names
from repro.obs.rules import AlertRule


def fleet_rules(training_silence: float = 50.0) -> List[AlertRule]:
    """The fleet rule pack.

    ``training_silence`` is the absence budget (virtual cost units)
    after which a quiet ``fleet.training`` signal means starvation;
    size it to a few epochs of typical fleet cost.
    """
    return [
        AlertRule(
            name="fleet-training-starved",
            signal=names.FLEET_TRAINING,
            kind="absence",
            stale_after=training_silence,
            severity="critical",
            category="fleet",
            description=(
                "no tenant has run proactive training for a full "
                "silence budget — the scheduler is starving the fleet"
            ),
        ),
        AlertRule(
            name="fleet-budget-breach",
            signal=names.FLEET_OVERDRAFT,
            kind="threshold",
            stat="count",
            op=">=",
            value=1.0,
            severity="warning",
            category="fleet",
            description=(
                "a tenant exceeded its materialization quota and had "
                "to be evicted down to budget"
            ),
        ),
    ]
