"""Tenant and fleet specifications (the fleet's declarative input).

A :class:`TenantSpec` names one deployment pipeline — which dataset
family it runs, its deployment strategy, drift profile, seed, and its
budget weight. A :class:`FleetSpec` is the full orchestrator input:
the tenant list plus the shared per-epoch budgets. Both round-trip
through plain JSON dicts (the CLI's ``--spec`` file format) and
validate eagerly with errors naming the offending field.
"""

from __future__ import annotations

import json
import math
from dataclasses import MISSING, asdict, dataclass, fields
from typing import Any, Dict, Mapping, Tuple

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive_int

#: Dataset families a tenant can run.
DATASETS = ("url", "taxi")

#: Deployment strategies: ``continuous`` tenants want proactive
#: training whenever triggers say so, ``periodic`` tenants want it on
#: a fixed staleness cadence, ``online`` tenants opted out (online SGD
#: updates only) — the scheduler gives them no urgency.
STRATEGIES = ("continuous", "periodic", "online")

#: Drift profiles for the tenant's data stream. Taxi streams are
#: stationary by construction and only accept ``stable``.
DRIFT_PROFILES = ("stable", "gradual", "abrupt")

#: Fleet scheduling policies.
POLICIES = ("fair_share", "round_robin")


def _check_choice(value: str, allowed: Tuple[str, ...], field_name: str) -> None:
    if value not in allowed:
        raise ValidationError(
            f"{field_name} must be one of {allowed}, got {value!r}"
        )


def _check_int(value: Any, field_name: str, minimum: int = 0) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValidationError(
            f"{field_name} must be an int, got {type(value).__name__}"
        )
    if value < minimum:
        raise ValidationError(
            f"{field_name} must be >= {minimum}, got {value}"
        )


def _from_mapping(cls, raw: Mapping[str, Any], what: str):
    """Shared dict -> dataclass path rejecting unknown keys by name."""
    if not isinstance(raw, Mapping):
        raise ValidationError(
            f"{what} must be a mapping, got {type(raw).__name__}"
        )
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ValidationError(
            f"unknown {what} field(s): {', '.join(unknown)}"
        )
    missing = sorted(
        f.name
        for f in fields(cls)
        if f.default is MISSING
        and f.default_factory is MISSING  # type: ignore[misc]
        and f.name not in raw
    )
    if missing:
        raise ValidationError(
            f"missing {what} field(s): {', '.join(missing)}"
        )
    return cls(**dict(raw))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: dataset, strategy, seed, and budget weight."""

    name: str
    dataset: str
    seed: int
    weight: float = 1.0
    strategy: str = "continuous"
    drift: str = "stable"
    #: Stream length (deployment chunks) for this tenant.
    chunks: int = 16
    #: Rows per stream chunk.
    rows: int = 12

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValidationError(
                f"name must be a non-empty string, got {self.name!r}"
            )
        _check_choice(self.dataset, DATASETS, "dataset")
        _check_choice(self.strategy, STRATEGIES, "strategy")
        _check_choice(self.drift, DRIFT_PROFILES, "drift")
        _check_int(self.seed, "seed", minimum=0)
        if (
            not isinstance(self.weight, (int, float))
            or isinstance(self.weight, bool)
            or not math.isfinite(self.weight)
            or self.weight <= 0
        ):
            raise ValidationError(
                f"weight must be a positive finite number, "
                f"got {self.weight!r}"
            )
        check_positive_int(self.chunks, "chunks")
        check_positive_int(self.rows, "rows")
        if self.dataset == "taxi" and self.drift != "stable":
            raise ValidationError(
                f"drift must be 'stable' for taxi tenants "
                f"(the stream is stationary), got {self.drift!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "TenantSpec":
        return _from_mapping(cls, raw, "TenantSpec")


@dataclass(frozen=True)
class FleetSpec:
    """The orchestrator input: tenants + shared per-epoch budgets."""

    tenants: Tuple[TenantSpec, ...]
    #: Proactive-training slots the scheduler hands out per epoch.
    train_slots: int = 4
    #: Fleet-level materialization cap (bytes), divided across tenants
    #: by weight every epoch.
    materialize_bytes: int = 262144
    #: Stream chunks each active tenant ingests per epoch.
    chunks_per_epoch: int = 1
    policy: str = "fair_share"
    seed: int = 0
    #: A training-eligible tenant unallocated for this many epochs is
    #: rescued by the starvation guard.
    starvation_epochs: int = 6
    #: Hard epoch cap; 0 = run until every stream is exhausted.
    max_epochs: int = 0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValidationError("tenants must name at least one tenant")
        tenants = tuple(
            TenantSpec.from_dict(t) if isinstance(t, Mapping) else t
            for t in self.tenants
        )
        for tenant in tenants:
            if not isinstance(tenant, TenantSpec):
                raise ValidationError(
                    f"tenants entries must be TenantSpec, got "
                    f"{type(tenant).__name__}"
                )
        object.__setattr__(self, "tenants", tenants)
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValidationError(
                f"tenants must have unique names; duplicated: "
                f"{', '.join(dupes)}"
            )
        check_positive_int(self.train_slots, "train_slots")
        check_positive_int(self.materialize_bytes, "materialize_bytes")
        check_positive_int(self.chunks_per_epoch, "chunks_per_epoch")
        _check_choice(self.policy, POLICIES, "policy")
        _check_int(self.seed, "seed", minimum=0)
        check_positive_int(self.starvation_epochs, "starvation_epochs")
        _check_int(self.max_epochs, "max_epochs", minimum=0)

    @property
    def num_tenants(self) -> int:
        return len(self.tenants)

    @property
    def total_weight(self) -> float:
        return float(sum(t.weight for t in self.tenants))

    @property
    def epochs(self) -> int:
        """Epochs a full run takes (stream length / ingest rate)."""
        longest = max(t.chunks for t in self.tenants)
        natural = -(-longest // self.chunks_per_epoch)
        if self.max_epochs:
            return min(natural, self.max_epochs)
        return natural

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["tenants"] = [t.to_dict() for t in self.tenants]
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FleetSpec":
        spec = _from_mapping(cls, dict(raw), "FleetSpec")
        return spec

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        try:
            raw = json.loads(text)
        except ValueError as error:
            raise ValidationError(
                f"fleet spec is not valid JSON: {error}"
            ) from error
        return cls.from_dict(raw)


#: Deterministic per-tenant knob cycles used by :func:`make_fleet`.
_DRIFT_CYCLE = ("gradual", "abrupt", "gradual", "stable")
_WEIGHT_CYCLE = (2.0, 1.0, 1.5, 0.5)
#: Taxi tenants rotate premium / budget / opted-out tiers.
_TAXI_WEIGHT_CYCLE = (2.0, 0.5, 1.0)


def make_fleet(
    num_tenants: int,
    seed: int = 0,
    policy: str = "fair_share",
    chunks: int = 16,
    rows: int = 12,
    train_slots: int = 0,
    materialize_bytes: int = 0,
    max_epochs: int = 0,
) -> FleetSpec:
    """A deterministic mixed URL/taxi fleet.

    Two of every three tenants run the drifting URL workload (drift
    profile and weight cycling deterministically, heavier weights on
    the faster-drifting tenants), the third runs the stationary taxi
    workload; every third taxi tenant opts out of proactive training
    (``online`` strategy). ``train_slots``/``materialize_bytes``
    default to ~1 slot per 4 tenants and ~24 KiB per tenant.
    """
    check_positive_int(num_tenants, "num_tenants")
    tenants = []
    for index in range(num_tenants):
        is_taxi = index % 3 == 2
        dataset = "taxi" if is_taxi else "url"
        drift = "stable" if is_taxi else _DRIFT_CYCLE[index % len(_DRIFT_CYCLE)]
        if is_taxi:
            # Taxi tenants cycle premium (2.0) / budget (0.5) tiers;
            # every third one opts out of fleet training entirely and
            # relies on its own online updates instead.
            tier = (index // 3) % len(_TAXI_WEIGHT_CYCLE)
            strategy = "online" if tier == 2 else "continuous"
            weight = _TAXI_WEIGHT_CYCLE[tier]
        else:
            strategy = "continuous"
            weight = _WEIGHT_CYCLE[index % len(_WEIGHT_CYCLE)]
        tenants.append(
            TenantSpec(
                name=f"{dataset}-{index:02d}",
                dataset=dataset,
                seed=seed * 1000 + 17 * index,
                weight=weight,
                strategy=strategy,
                drift=drift,
                chunks=chunks,
                rows=rows,
            )
        )
    return FleetSpec(
        tenants=tuple(tenants),
        # Scarce enough that tenants genuinely compete for slots, but
        # rich enough that a uniform share stays under the starvation
        # limit (a guard that binds every epoch would flatten the
        # policies into each other).
        train_slots=train_slots or max(2, num_tenants // 4),
        materialize_bytes=materialize_bytes or num_tenants * 24576,
        policy=policy,
        seed=seed,
        # With slots this scarce a uniform share means long gaps
        # between any one tenant's slots; a tight starvation limit
        # would rescue-storm the schedule back to round robin. Keep
        # the guard a genuine backstop.
        starvation_epochs=10,
        max_epochs=max_epochs,
    )
