"""Incremental statistics accumulators (Ganeti's ``Utils/Statistics``).

The fleet scheduler scores balance as the standard deviation of the
tenants' normalized resource shares. Recomputing that from scratch
after every single-slot grant would make an epoch O(slots x tenants);
these accumulators instead support Ganeti's *value replacement*
update — when one tenant's share changes, the aggregate is fixed up
in O(1) from ``(old, new)`` — so the scheduler can re-score the fleet
after every move (SNIPPETS.md snippet 2).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from repro.exceptions import ValidationError


class SumStatistics:
    """A running total with O(1) value replacement."""

    __slots__ = ("count", "total")

    def __init__(self, values: Iterable[float] = ()) -> None:
        values = [float(v) for v in values]
        self.count = len(values)
        self.total = float(sum(values))

    def value(self) -> float:
        return self.total

    def insert(self, value: float) -> None:
        self.count += 1
        self.total += float(value)

    def update(self, old: float, new: float) -> None:
        """Replace one tracked value: ``old`` leaves, ``new`` enters."""
        if self.count == 0:
            raise ValidationError(
                "cannot update an empty SumStatistics accumulator"
            )
        self.total += float(new) - float(old)

    def state_dict(self) -> Dict[str, float]:
        return {"count": self.count, "total": self.total}

    def load_state_dict(self, state: Dict[str, float]) -> None:
        self.count = int(state["count"])
        self.total = float(state["total"])


class StdDevStatistics:
    """Population standard deviation with O(1) value replacement.

    Tracks ``(count, sum, sum of squares)`` — the moments Ganeti's
    ``StdDevStatistics`` carries — so both inserting a fresh value and
    replacing an existing one are constant-time.
    """

    __slots__ = ("count", "total", "sumsq")

    def __init__(self, values: Iterable[float] = ()) -> None:
        values = [float(v) for v in values]
        self.count = len(values)
        self.total = float(sum(values))
        self.sumsq = float(sum(v * v for v in values))

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def value(self) -> float:
        """Population standard deviation of the tracked values."""
        if self.count == 0:
            return 0.0
        variance = self.sumsq / self.count - self.mean() ** 2
        # Guard the tiny negative residue floating-point subtraction
        # can leave when all values are (nearly) equal.
        return math.sqrt(max(variance, 0.0))

    def insert(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sumsq += value * value

    def update(self, old: float, new: float) -> None:
        """Replace one tracked value: ``old`` leaves, ``new`` enters."""
        if self.count == 0:
            raise ValidationError(
                "cannot update an empty StdDevStatistics accumulator"
            )
        old, new = float(old), float(new)
        self.total += new - old
        self.sumsq += new * new - old * old

    def state_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "sumsq": self.sumsq,
        }

    def load_state_dict(self, state: Dict[str, float]) -> None:
        self.count = int(state["count"])
        self.total = float(state["total"])
        self.sumsq = float(state["sumsq"])


def largest_remainder(
    weights: List[float], total: int
) -> List[int]:
    """Split integer ``total`` proportionally to ``weights``.

    Hamilton's method: floor the proportional quotas, then hand the
    leftover units to the largest fractional remainders (ties broken
    by lowest index, so the split is deterministic). The result always
    sums to exactly ``total``.
    """
    if total < 0:
        raise ValidationError(f"total must be >= 0, got {total}")
    if not weights:
        return []
    mass = float(sum(weights))
    if mass <= 0:
        raise ValidationError(
            f"weights must have positive mass, got sum {mass}"
        )
    quotas = [total * (w / mass) for w in weights]
    shares = [int(math.floor(q)) for q in quotas]
    leftover = total - sum(shares)
    order = sorted(
        range(len(weights)),
        key=lambda i: (-(quotas[i] - shares[i]), i),
    )
    for i in order[:leftover]:
        shares[i] += 1
    return shares
