"""The deterministic fleet scheduler: shared budgets, every epoch.

Each scheduling epoch the fleet has ``train_slots`` proactive-training
slots and ``materialize_bytes`` of materialization budget to divide
across tenants. Two policies:

* ``fair_share`` — stride scheduling over priorities
  ``weight x (1 + urgency)`` (urgency from the Modyn-style data
  triggers): every slot goes to the tenant with the smallest virtual
  pass value, whose pass then advances by ``1/priority``. This is the
  "highest imbalance first" move loop — the tenant furthest behind its
  weighted share is always served next — and a Ganeti-style
  :class:`~repro.fleet.stats.StdDevStatistics` accumulator re-scores
  the fleet's share spread in O(1) after every grant. A starvation
  guard then rescues any eligible tenant unallocated for
  ``starvation_epochs`` epochs by stealing a slot from the largest
  allocation. Materialization bytes split by weight via the largest
  remainder method (exact integer total).

* ``round_robin`` — the naive baseline: slots rotate cyclically over
  training-eligible tenants and bytes split evenly, both blind to
  weights, urgency, and drift (but not to a tenant's strategy
  opt-out, which binds every policy).

Determinism contract: allocation is a pure function of the signal
history (ties always break toward the lowest tenant index), so the
same spec + signals replay byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.fleet.spec import FleetSpec
from repro.fleet.stats import StdDevStatistics, largest_remainder
from repro.fleet.triggers import TenantSignals, TriggerPolicy


@dataclass(frozen=True)
class EpochAllocation:
    """One epoch's division of the shared budgets."""

    epoch: int
    #: Proactive-training slots per tenant; sums to the epoch budget.
    train_slots: Tuple[int, ...]
    #: Materialization byte quota per tenant; sums to the global cap.
    materialize_bytes: Tuple[int, ...]
    #: Tenant indices in training-execution order.
    order: Tuple[int, ...]
    #: The priorities the slots were granted under.
    priorities: Tuple[float, ...]
    #: Std-dev of cumulative weighted shares after this epoch.
    balance: float
    #: Tenants rescued by the starvation guard this epoch.
    rescued: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "train_slots": list(self.train_slots),
            "materialize_bytes": list(self.materialize_bytes),
            "order": list(self.order),
            "priorities": list(self.priorities),
            "balance": self.balance,
            "rescued": list(self.rescued),
        }


class FleetScheduler:
    """Allocates per-epoch budgets across the fleet's tenants."""

    def __init__(
        self,
        spec: FleetSpec,
        triggers: Optional[TriggerPolicy] = None,
    ) -> None:
        self.spec = spec
        self.triggers = (
            triggers if triggers is not None else TriggerPolicy()
        )
        count = spec.num_tenants
        # Derived from the immutable spec and never mutated after
        # construction; recovery rebuilds it here before
        # load_state_dict runs, so it needs no checkpoint slot.
        self._weights = [float(t.weight) for t in spec.tenants]  # repro: noqa[REP009]
        #: Stride-scheduling virtual pass value per tenant.
        self._passes = [0.0] * count
        #: Cumulative slots granted per tenant.
        self._granted = [0] * count
        self._rr_cursor = 0
        self._epoch = 0
        self._rescues = 0
        #: Incremental spread of cumulative weighted shares.
        self._shares = StdDevStatistics([0.0] * count)

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def rescues(self) -> int:
        return self._rescues

    def granted(self) -> List[int]:
        """Cumulative training slots granted per tenant."""
        return list(self._granted)

    def balance_score(self) -> float:
        """Current std-dev of cumulative ``granted/weight`` shares."""
        return self._shares.value()

    # ------------------------------------------------------------------
    def allocate(
        self, signals: Sequence[TenantSignals]
    ) -> EpochAllocation:
        """Divide this epoch's budgets; advances the scheduler state."""
        spec = self.spec
        if len(signals) != spec.num_tenants:
            raise ValidationError(
                f"expected {spec.num_tenants} tenant signals, "
                f"got {len(signals)}"
            )
        for index, sig in enumerate(signals):
            if sig.tenant != index:
                raise ValidationError(
                    f"signals[{index}] reports tenant {sig.tenant}; "
                    f"signals must arrive in tenant order"
                )
        if not any(sig.active for sig in signals):
            raise ValidationError(
                "cannot allocate an epoch with no active tenants"
            )
        if spec.policy == "round_robin":
            slots, order, priorities = self._round_robin(signals)
        else:
            slots, order, priorities = self._fair_share(signals)
        rescued = self._rescue_starving(signals, slots, priorities)
        if rescued:
            order = self._expand_order(slots)
        quotas = self._byte_quotas(signals)
        allocation = EpochAllocation(
            epoch=self._epoch,
            train_slots=tuple(slots),
            materialize_bytes=tuple(quotas),
            order=tuple(order),
            priorities=tuple(priorities),
            balance=self.balance_score(),
            rescued=tuple(rescued),
        )
        self._epoch += 1
        return allocation

    # ------------------------------------------------------------------
    def _priorities(
        self, signals: Sequence[TenantSignals]
    ) -> List[float]:
        """Fair-share priorities with a deterministic fallback chain.

        ``weight x (1 + urgency)`` for training-eligible tenants; when
        every tenant opted out, fall back to plain active weights so
        the epoch budget is still fully assigned (the invariant tests
        rely on allocations summing exactly to the budget).
        """
        priorities = [
            sig.weight * (1.0 + self.triggers.urgency(sig))
            if sig.wants_training
            else 0.0
            for sig in signals
        ]
        if not any(p > 0 for p in priorities):
            priorities = [
                sig.weight if sig.active else 0.0 for sig in signals
            ]
        return priorities

    def _fair_share(
        self, signals: Sequence[TenantSignals]
    ) -> Tuple[List[int], List[int], List[float]]:
        priorities = self._priorities(signals)
        slots = [0] * len(priorities)
        order: List[int] = []
        for _ in range(self.spec.train_slots):
            winner = min(
                (i for i, p in enumerate(priorities) if p > 0),
                key=lambda i: (self._passes[i], i),
            )
            slots[winner] += 1
            order.append(winner)
            self._passes[winner] += 1.0 / priorities[winner]
            self._grant(winner)
        return slots, order, priorities

    def _round_robin(
        self, signals: Sequence[TenantSignals]
    ) -> Tuple[List[int], List[int], List[float]]:
        """Cyclic rotation over training-eligible tenants.

        A tenant's strategy opt-out (``online``) binds every policy —
        round robin is blind to weights and urgency, not to consent.
        Falls back to all active tenants when nobody is eligible so
        the budget still sums exactly.
        """
        eligible = [
            i for i, sig in enumerate(signals) if sig.wants_training
        ]
        if not eligible:
            eligible = [
                i for i, sig in enumerate(signals) if sig.active
            ]
        priorities = [
            1.0 if i in set(eligible) else 0.0
            for i in range(len(signals))
        ]
        slots = [0] * len(signals)
        order: List[int] = []
        for step in range(self.spec.train_slots):
            winner = eligible[
                (self._rr_cursor + step) % len(eligible)
            ]
            slots[winner] += 1
            order.append(winner)
            self._grant(winner)
        self._rr_cursor = (
            self._rr_cursor + self.spec.train_slots
        ) % len(eligible)
        return slots, order, priorities

    def _grant(self, tenant: int) -> None:
        """Cumulative accounting + O(1) balance re-score for one slot."""
        old = self._granted[tenant] / self._weights[tenant]
        self._granted[tenant] += 1
        self._shares.update(
            old, self._granted[tenant] / self._weights[tenant]
        )

    def _ungrant(self, tenant: int) -> None:
        old = self._granted[tenant] / self._weights[tenant]
        self._granted[tenant] -= 1
        self._shares.update(
            old, self._granted[tenant] / self._weights[tenant]
        )

    def _rescue_starving(
        self,
        signals: Sequence[TenantSignals],
        slots: List[int],
        priorities: Sequence[float],
    ) -> List[int]:
        """Steal a slot from the largest allocation for each starving
        tenant (training-eligible, zero slots, stale past the limit).

        Donors are taken largest-allocation-first (ties toward the
        lowest index); a donor is never drained below one slot if it
        is itself at the starvation limit. Totals are preserved — a
        rescue moves a slot, never mints one.
        """
        rescued: List[int] = []
        starving = [
            i
            for i, sig in enumerate(signals)
            if sig.wants_training
            and slots[i] == 0
            and sig.staleness_epochs >= self.spec.starvation_epochs
        ]
        for tenant in starving:
            donors = sorted(
                (
                    d
                    for d in range(len(slots))
                    if d != tenant
                    and slots[d] > 0
                    and (
                        slots[d] > 1
                        or signals[d].staleness_epochs
                        < self.spec.starvation_epochs
                        or not signals[d].wants_training
                    )
                ),
                key=lambda d: (-slots[d], d),
            )
            if not donors:
                break
            donor = donors[0]
            slots[donor] -= 1
            slots[tenant] += 1
            self._ungrant(donor)
            self._grant(tenant)
            self._rescues += 1
            rescued.append(tenant)
        return rescued

    @staticmethod
    def _expand_order(slots: Sequence[int]) -> List[int]:
        order: List[int] = []
        for tenant, count in enumerate(slots):
            order.extend([tenant] * count)
        return order

    def _byte_quotas(
        self, signals: Sequence[TenantSignals]
    ) -> List[int]:
        """Weight-proportional byte quotas over the *active* tenants.

        ``round_robin`` stays naive (even split); exhausted tenants
        get a zero quota, releasing their materialized bytes back to
        the fleet. Quotas always sum to the global cap exactly.
        """
        active = [i for i, sig in enumerate(signals) if sig.active]
        if self.spec.policy == "round_robin":
            weights = [1.0] * len(active)
        else:
            weights = [signals[i].weight for i in active]
        split = largest_remainder(weights, self.spec.materialize_bytes)
        quotas = [0] * len(signals)
        for position, tenant in enumerate(active):
            quotas[tenant] = split[position]
        return quotas

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "passes": list(self._passes),
            "granted": list(self._granted),
            "rr_cursor": self._rr_cursor,
            "epoch": self._epoch,
            "rescues": self._rescues,
            "shares": self._shares.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._passes = [float(p) for p in state["passes"]]
        self._granted = [int(g) for g in state["granted"]]
        self._rr_cursor = int(state["rr_cursor"])
        self._epoch = int(state["epoch"])
        self._rescues = int(state["rescues"])
        self._shares.load_state_dict(state["shares"])

    def __repr__(self) -> str:
        return (
            f"FleetScheduler(policy={self.spec.policy!r}, "
            f"epoch={self._epoch}, "
            f"balance={self.balance_score():.4f})"
        )
