"""Multi-tenant fleet orchestration over shared bounded resources.

One :class:`~repro.fleet.orchestrator.FleetOrchestrator` runs dozens
of concurrent deployment pipelines (mixed URL/taxi tenants with
per-tenant seeds, strategies, and drift profiles) against shared
budgets: every scheduling epoch a deterministic
:class:`~repro.fleet.scheduler.FleetScheduler` divides the training
slots and materialization bytes across tenants, Ganeti-style balance
accumulators score the resulting spread, and Modyn-style data-centric
triggers (new-data volume, drift score, staleness) decide which
tenant trains next. Same spec + seed => byte-identical schedules and
BENCH trajectories.
"""

from repro.fleet.alerts import fleet_rules
from repro.fleet.orchestrator import FleetOrchestrator, FleetResult
from repro.fleet.scheduler import EpochAllocation, FleetScheduler
from repro.fleet.spec import (
    DATASETS,
    DRIFT_PROFILES,
    POLICIES,
    STRATEGIES,
    FleetSpec,
    TenantSpec,
    make_fleet,
)
from repro.fleet.stats import StdDevStatistics, SumStatistics
from repro.fleet.tenant import TenantRuntime
from repro.fleet.triggers import TenantSignals, TriggerPolicy

__all__ = [
    "DATASETS",
    "DRIFT_PROFILES",
    "POLICIES",
    "STRATEGIES",
    "EpochAllocation",
    "FleetOrchestrator",
    "FleetResult",
    "FleetScheduler",
    "FleetSpec",
    "StdDevStatistics",
    "SumStatistics",
    "TenantRuntime",
    "TenantSpec",
    "TenantSignals",
    "TriggerPolicy",
    "fleet_rules",
    "make_fleet",
]
