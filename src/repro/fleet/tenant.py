"""One fleet tenant: a full deployment platform, stepped cooperatively.

A :class:`TenantRuntime` owns everything one tenant needs — dataset
generator (seeded, with the spec's drift profile), pipeline + model +
optimizer, a :class:`~repro.core.platform.ContinuousDeploymentPlatform`
whose *own* proactive schedule is disabled (a huge static interval),
a prequential tracker, and optionally a per-tenant model registry.
The orchestrator interleaves tenants chunk by chunk: `ingest_chunk`
runs the prequential test-then-train step, ``train`` runs one
fleet-granted proactive training through the platform's
:meth:`~repro.core.platform.ContinuousDeploymentPlatform.train_now`
hook, and ``capture_state``/``restore_state`` ride the fleet
checkpoint so recovery is byte-identical.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterator, List, Optional

from repro.core.config import ContinuousConfig, ScheduleConfig
from repro.core.platform import ContinuousDeploymentPlatform
from repro.core.proactive import ProactiveOutcome
from repro.data.table import Table
from repro.datasets.drift import (
    AbruptDrift,
    DriftSchedule,
    GradualDrift,
    NoDrift,
)
from repro.datasets.taxi import (
    TAXI_FEATURE_COLUMNS,
    TaxiStreamGenerator,
    make_taxi_pipeline,
)
from repro.datasets.url import URLStreamGenerator, make_url_pipeline
from repro.exceptions import ConvergenceWarning
from repro.fleet.spec import TenantSpec
from repro.fleet.triggers import TenantSignals
from repro.ml.metrics import PrequentialTracker
from repro.ml.models.linear_regression import LinearRegression
from repro.ml.models.svm import LinearSVM
from repro.ml.optim import make_optimizer
from repro.ml.regularizers import L2
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.persistence import DeploymentBundle
from repro.serving.endpoint import ServingEndpoint
from repro.serving.registry import ModelRegistry

import numpy as np

#: Static interval large enough that the tenant's own scheduler never
#: fires — the fleet scheduler is the only source of training.
_NEVER = 10**6

#: Recent/previous window width (chunks) for the drift score.
_DRIFT_WINDOW = 3

#: Hashed feature width for fleet URL tenants (smaller than the exp1
#: bench scenario: dozens of tenants must fit one process comfortably,
#: but wide enough that the initial fit actually learns the concept).
_URL_HASH_DIM = 256

#: SGD iterations spent per fleet-granted training slot. A single
#: proactive-training instance is one mini-batch iteration (§3.3), so
#: a fleet slot grants a short burst — enough to visibly re-track a
#: drifted concept while keeping the slot the unit of accounting.
_TRAIN_BURST = 4


def _drift_schedule(spec: TenantSpec) -> DriftSchedule:
    # Drift strong enough that a tenant's error visibly climbs between
    # retrainings — the fleet's allocation decisions must have
    # observable consequences for the policy comparison to resolve.
    if spec.drift == "gradual":
        return GradualDrift(0.05)
    if spec.drift == "abrupt":
        return AbruptDrift([max(spec.chunks // 2, 1)], 0.8)
    return NoDrift()


class TenantRuntime:
    """One tenant's live deployment inside the fleet."""

    def __init__(
        self,
        index: int,
        spec: TenantSpec,
        telemetry: Optional[Telemetry] = None,
        registry_root: Optional[str] = None,
        fit: bool = True,
    ) -> None:
        self.index = index
        self.spec = spec
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.registry: Optional[ModelRegistry] = None
        if registry_root is not None:
            self.registry = ModelRegistry(
                f"{registry_root}/{spec.name}", telemetry=self.telemetry
            )
        # Training-strategy tenants adapt *only* through fleet-granted
        # proactive trainings (so the scheduler's allocation decisions
        # are what shapes their quality); ``online``-strategy tenants
        # instead adapt through per-chunk SGD and opt out of slots.
        config = ContinuousConfig(
            sample_size_chunks=6,
            schedule=ScheduleConfig(
                kind="static", interval_chunks=_NEVER
            ),
            sampler="time",
            half_life=max(spec.chunks // 8, 1),
            online_update=spec.strategy == "online",
        )
        if spec.dataset == "url":
            generator = URLStreamGenerator(
                num_chunks=spec.chunks,
                rows_per_chunk=spec.rows,
                base_features=200,
                new_features_per_chunk=2,
                drift=_drift_schedule(spec),
                seed=spec.seed,
            )
            pipeline = make_url_pipeline(hash_features=_URL_HASH_DIM)
            model = LinearSVM(_URL_HASH_DIM, regularizer=L2(1e-3))
            optimizer = make_optimizer("adam", learning_rate=0.05)
            self.metric = "classification"
            initial_rows, fit_iterations = 200, 160
            tracker_kind = "rate"
        else:
            generator = TaxiStreamGenerator(
                num_chunks=spec.chunks,
                rows_per_chunk=spec.rows,
                seed=spec.seed,
            )
            pipeline = make_taxi_pipeline()
            model = LinearRegression(
                len(TAXI_FEATURE_COLUMNS), regularizer=L2(1e-4)
            )
            optimizer = make_optimizer("rmsprop", learning_rate=0.05)
            self.metric = "regression"
            # Taxi tenants onboard cold: a deliberately short initial
            # fit, with fleet-granted training doing the convergence
            # work. Their per-slot RMSE gain is large, near-linear,
            # and low-noise — the cleanest signal the policy
            # comparison has.
            initial_rows, fit_iterations = 120, 30
            tracker_kind = "rmse"
        self.platform = ContinuousDeploymentPlatform(
            pipeline,
            model,
            optimizer,
            config=config,
            seed=spec.seed,
            telemetry=self.telemetry,
            registry=self.registry,
            lineage_scope=spec.name,
        )
        self.prequential = PrequentialTracker(kind=tracker_kind)
        self._stream: Iterator[Table] = iter(generator.stream())
        self.cursor = 0
        self.active = True
        self.new_rows = 0
        self.last_trained_epoch = -1
        self.trainings = 0
        #: Per-chunk mean error series feeding the drift score.
        self.chunk_errors: List[float] = []
        if fit:
            # Fleet tenants run deliberately short initial fits (the
            # online + proactive phases do the real work); convergence
            # warnings at this scale are expected noise.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                self.platform.initial_fit(
                    generator.initial_data(initial_rows),
                    max_iterations=fit_iterations,
                    tolerance=1e-4,
                    seed=spec.seed,
                )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    def total_cost(self) -> float:
        """This tenant's engine clock (its share of the fleet cost)."""
        return self.platform.engine.total_cost()

    # ------------------------------------------------------------------
    def ingest_chunk(self) -> bool:
        """One prequential test-then-train step on the next chunk.

        Returns ``False`` (and deactivates the tenant) when the
        stream is exhausted.
        """
        if not self.active:
            return False
        try:
            table = next(self._stream)
        except StopIteration:
            self.active = False
            return False
        predictions, labels = self.platform.predict(table)
        error_sum = self._chunk_error(predictions, labels)
        self.prequential.add_chunk(error_sum, len(labels))
        self.chunk_errors.append(error_sum / len(labels))
        self.platform.observe(table)
        self.cursor += 1
        self.new_rows += table.num_rows
        if self.cursor >= self.spec.chunks:
            # Deactivate eagerly (the generator is exhausted too) so
            # the scheduler never allocates an epoch of dead streams.
            self.active = False
        return True

    def _chunk_error(
        self, predictions: np.ndarray, labels: np.ndarray
    ) -> float:
        if self.metric == "classification":
            return float(np.sum(predictions != labels))
        residual = predictions - labels
        return float(np.sum(residual * residual))

    def train(self, epoch: int) -> Optional[ProactiveOutcome]:
        """Spend one fleet-granted training slot (a short SGD burst)."""
        if self.cursor == 0:
            return None
        outcome: Optional[ProactiveOutcome] = None
        for _ in range(_TRAIN_BURST):
            outcome = self.platform.train_now()
        self.trainings += 1
        self.last_trained_epoch = epoch
        self.new_rows = 0
        return outcome

    # ------------------------------------------------------------------
    def drift_score(self) -> float:
        """Recent-vs-previous prequential error inflation (>= 0)."""
        w = _DRIFT_WINDOW
        if len(self.chunk_errors) < 2 * w:
            return 0.0
        recent = sum(self.chunk_errors[-w:]) / w
        previous = sum(self.chunk_errors[-2 * w : -w]) / w
        if previous <= 1e-9:
            return 0.0
        return max(0.0, recent / previous - 1.0)

    def signals(self, epoch: int) -> TenantSignals:
        return TenantSignals(
            tenant=self.index,
            new_rows=self.new_rows,
            drift_score=self.drift_score(),
            staleness_epochs=epoch - self.last_trained_epoch,
            weight=self.spec.weight,
            strategy=self.spec.strategy,
            active=self.active,
        )

    def apply_quota(self, quota_bytes: int) -> Dict[str, int]:
        """Enforce this epoch's materialization quota.

        Returns the overdraft (bytes held beyond the fresh quota at
        enforcement time) and how many payloads were evicted for it.
        """
        storage = self.platform.data_manager.storage
        overdraft = max(0, storage.materialized_bytes - quota_bytes)
        evicted = storage.set_byte_budget(quota_bytes)
        return {"overdraft": overdraft, "evicted": evicted}

    # ------------------------------------------------------------------
    def endpoint(self, seed: int = 0) -> ServingEndpoint:
        """A serving endpoint over this tenant's registry."""
        if self.registry is None:
            from repro.exceptions import ValidationError

            raise ValidationError(
                f"tenant {self.name!r} has no registry (fleet was run "
                f"without registry_root)"
            )
        return ServingEndpoint(
            self.registry, seed=seed, telemetry=self.telemetry
        )

    # ------------------------------------------------------------------
    # Fleet checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, Any]:
        """Everything this tenant mutates, for the fleet checkpoint.

        Storage payloads ride inline (fleet tenants are small by
        construction); the artifact bundle is pickled by the
        checkpoint envelope like any platform checkpoint.
        """
        storage = self.platform.data_manager.storage
        return {
            "bundle": DeploymentBundle(
                pipeline=self.platform.manager.pipeline,
                model=self.platform.manager.model,
                optimizer=self.platform.manager.optimizer,
            ),
            "platform": self.platform.state_dict(),
            "storage": {
                "raw": [
                    storage.peek_raw(t) for t in storage.raw_timestamps
                ],
                "features": [
                    storage.peek_features(t)
                    for t in storage.feature_timestamps
                ],
                "stats": storage.manifest()["stats"],
            },
            "prequential": self.prequential.state_dict(),
            "cursor": self.cursor,
            "active": self.active,
            "new_rows": self.new_rows,
            "last_trained_epoch": self.last_trained_epoch,
            "trainings": self.trainings,
            "chunk_errors": list(self.chunk_errors),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Rebuild from :meth:`capture_state` (byte-identical resume).

        The stream iterator is regenerated by the constructor and
        fast-forwarded to the saved cursor here; generators are
        deterministic, so the skipped chunks are exactly the ones the
        crashed run consumed.
        """
        bundle: DeploymentBundle = state["bundle"]
        self.platform.install_artifacts(
            bundle.pipeline, bundle.model, bundle.optimizer
        )
        storage = self.platform.data_manager.storage
        storage.restore(
            state["storage"]["raw"],
            state["storage"]["features"],
            state["storage"]["stats"],
        )
        self.platform.load_state_dict(state["platform"])
        self.prequential.load_state_dict(state["prequential"])
        self.cursor = int(state["cursor"])
        self.active = bool(state["active"])
        self.new_rows = int(state["new_rows"])
        self.last_trained_epoch = int(state["last_trained_epoch"])
        self.trainings = int(state["trainings"])
        self.chunk_errors = [float(e) for e in state["chunk_errors"]]
        for _ in range(self.cursor):
            next(self._stream)

    def __repr__(self) -> str:
        return (
            f"TenantRuntime({self.name!r}, cursor={self.cursor}, "
            f"trainings={self.trainings})"
        )
