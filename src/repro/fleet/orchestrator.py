"""The fleet orchestrator: many pipelines, one clock, shared budgets.

:class:`FleetOrchestrator` steps dozens of tenant deployments
cooperatively on one shared :class:`~repro.traffic.simulate.VirtualClock`
(advanced to the *sum* of the tenants' engine costs, so fleet
telemetry timestamps reflect total work done). Every scheduling epoch
it:

1. snapshots each tenant's data signals (new rows, drift, staleness),
2. asks the :class:`~repro.fleet.scheduler.FleetScheduler` to divide
   the epoch's training slots and materialization bytes,
3. enforces the per-tenant byte quotas (evicting overdrafts),
4. lets every active tenant ingest its stream chunks (prequential
   test-then-train),
5. spends the granted training slots via each platform's
   :meth:`~repro.core.platform.ContinuousDeploymentPlatform.train_now`,
6. emits ``fleet.*`` telemetry and appends the allocation to the
   schedule log.

A fleet checkpoint (approach ``"fleet"``) nests every tenant's full
state plus the scheduler, schedule log, clock, and spec, so
:meth:`recover` resumes the whole fleet byte-identically — the spec
rides inside the checkpoint, no side files needed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import ReliabilityError
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.spec import FleetSpec
from repro.fleet.tenant import TenantRuntime
from repro.fleet.triggers import TriggerPolicy
from repro.obs import names
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.reliability.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    PlatformCheckpoint,
    as_store,
)
from repro.traffic.simulate import VirtualClock


def _canonical_digest(payload: Any) -> str:
    """SHA-256 over a canonical JSON rendering of ``payload``."""
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass
class FleetResult:
    """What a fleet run produced (everything deterministic)."""

    policy: str
    epochs: int
    tenants: List[str]
    weights: List[float]
    #: Final cumulative prequential error per tenant (0.0 when a
    #: tenant never saw a chunk).
    per_tenant_error: List[float]
    #: Weighted mean of the per-tenant errors — the headline exp8
    #: comparison number.
    aggregate_error: float
    trainings: List[int]
    rescues: int
    overdrafts: int
    total_cost: float
    schedule_log: List[Dict[str, Any]] = field(default_factory=list)
    digest: str = ""
    telemetry_digest: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "epochs": self.epochs,
            "tenants": self.tenants,
            "weights": self.weights,
            "per_tenant_error": self.per_tenant_error,
            "aggregate_error": self.aggregate_error,
            "trainings": self.trainings,
            "rescues": self.rescues,
            "overdrafts": self.overdrafts,
            "total_cost": self.total_cost,
            "digest": self.digest,
            "telemetry_digest": self.telemetry_digest,
        }


class FleetOrchestrator:
    """Runs one :class:`~repro.fleet.spec.FleetSpec` to completion."""

    def __init__(
        self,
        spec: FleetSpec,
        telemetry: Optional[Telemetry] = None,
        checkpoint: Union[
            CheckpointStore, CheckpointConfig, str, None
        ] = None,
        registry_root: Optional[str] = None,
        triggers: Optional[TriggerPolicy] = None,
    ) -> None:
        self.spec = spec
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.clock = VirtualClock()
        self.scheduler = FleetScheduler(spec, triggers)
        self.checkpoint_store = as_store(
            checkpoint, telemetry=self.telemetry
        )
        self.registry_root = registry_root
        self.tenants: List[TenantRuntime] = []
        self.schedule_log: List[Dict[str, Any]] = []
        self.epoch = 0
        self.overdrafts = 0

    # ------------------------------------------------------------------
    def setup(self, fit: bool = True) -> None:
        """Build (and optionally initial-fit) every tenant runtime.

        Rebinds the shared virtual clock to the telemetry tracer
        *after* tenant construction: each tenant engine binds its own
        clock when built, and the fleet clock must win.
        """
        if self.tenants:
            return
        for index, tenant_spec in enumerate(self.spec.tenants):
            self.tenants.append(
                TenantRuntime(
                    index,
                    tenant_spec,
                    telemetry=self.telemetry,
                    registry_root=self.registry_root,
                    fit=fit,
                )
            )
        if self.telemetry.enabled:
            self.telemetry.bind_clock(self.clock)
        self._sync_clock()

    def _sync_clock(self) -> None:
        self.clock.advance(
            sum(t.total_cost() for t in self.tenants)
        )

    def has_work(self) -> bool:
        """True while any stream has chunks and the epoch cap allows."""
        if not self.tenants:
            return True
        if self.spec.max_epochs and self.epoch >= self.spec.max_epochs:
            return False
        return any(t.active for t in self.tenants)

    # ------------------------------------------------------------------
    def run_epoch(self) -> Dict[str, Any]:
        """One scheduling epoch; returns the schedule-log entry."""
        self.setup()
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        signals = [t.signals(self.epoch) for t in self.tenants]
        allocation = self.scheduler.allocate(signals)
        # Quota enforcement precedes ingest so this epoch's writes are
        # bounded by this epoch's quotas.
        for tenant, quota in zip(
            self.tenants, allocation.materialize_bytes
        ):
            report = tenant.apply_quota(quota)
            if report["overdraft"]:
                self.overdrafts += 1
                tracer.point(
                    names.FLEET_OVERDRAFT,
                    tenant=tenant.name,
                    epoch=self.epoch,
                    bytes=report["overdraft"],
                    quota=quota,
                )
                if self.telemetry.enabled:
                    metrics.counter(names.FLEET_OVERDRAFTS).inc()
            if report["evicted"] and self.telemetry.enabled:
                metrics.counter(names.FLEET_EVICTIONS).inc(
                    report["evicted"]
                )
        for tenant in self.tenants:
            ingested = 0
            for _ in range(self.spec.chunks_per_epoch):
                if not tenant.ingest_chunk():
                    break
                ingested += 1
            self._sync_clock()
            if ingested:
                tracer.point(
                    names.FLEET_TENANT_CHUNK,
                    tenant=tenant.name,
                    cursor=tenant.cursor,
                    error=tenant.chunk_errors[-1],
                )
        trainings_run = 0
        for tenant_index in allocation.order:
            tenant = self.tenants[tenant_index]
            outcome = tenant.train(self.epoch)
            self._sync_clock()
            if outcome is None:
                continue
            trainings_run += 1
            tracer.point(
                names.FLEET_TRAINING,
                tenant=tenant.name,
                epoch=self.epoch,
                objective=outcome.objective,
                rows=outcome.rows,
            )
            if self.telemetry.enabled:
                metrics.counter(names.FLEET_TRAININGS).inc()
        aggregate = self.aggregate_error()
        active = sum(1 for t in self.tenants if t.active)
        if self.telemetry.enabled:
            metrics.gauge(names.FLEET_BALANCE).set(allocation.balance)
            metrics.gauge(names.FLEET_ACTIVE_TENANTS).set(active)
            metrics.gauge(names.FLEET_AGGREGATE_ERROR).set(aggregate)
            if allocation.rescued:
                metrics.counter(names.FLEET_RESCUES).inc(
                    len(allocation.rescued)
                )
        tracer.point(
            names.FLEET_EPOCH,
            epoch=self.epoch,
            balance=allocation.balance,
            aggregate_error=aggregate,
            trainings=trainings_run,
            active=active,
        )
        entry = allocation.to_dict()
        entry["aggregate_error"] = aggregate
        entry["cost"] = self.clock.now
        entry["active"] = active
        self.schedule_log.append(entry)
        self.epoch += 1
        if (
            self.checkpoint_store is not None
            and self.epoch % self.checkpoint_store.cadence == 0
        ):
            self.checkpoint()
        return entry

    def run(self) -> FleetResult:
        """Run every remaining epoch and summarize."""
        self.setup()
        while self.has_work():
            self.run_epoch()
        return self.result()

    # ------------------------------------------------------------------
    def aggregate_error(self) -> float:
        """Weighted mean of the tenants' cumulative prequential errors.

        Tenants that have not predicted yet contribute nothing (their
        weight is excluded), so the aggregate is always an average of
        real error values.
        """
        num = 0.0
        den = 0.0
        for tenant in self.tenants:
            if tenant.prequential.total_count:
                value = tenant.prequential.history[-1]
                num += tenant.spec.weight * value
                den += tenant.spec.weight
        return num / den if den else 0.0

    def digest(self) -> str:
        """SHA-256 over the run's deterministic trajectory.

        Covers the schedule log, every tenant's full prequential
        history and training count, and the final clock — the
        byte-identity contract exp8 and the CI smoke verify.
        """
        return _canonical_digest(
            {
                "schedule": self.schedule_log,
                "errors": [
                    t.prequential.history for t in self.tenants
                ],
                "trainings": [t.trainings for t in self.tenants],
                "cost": self.clock.now,
            }
        )

    def telemetry_digest(self) -> Optional[str]:
        """SHA-256 over the event stream (wall-clock fields dropped).

        ``None`` without live telemetry. Spans carry virtual-cost
        timestamps/durations and deterministic attrs; only ``wall_s``
        varies run to run, so it is excluded.
        """
        if not self.telemetry.enabled:
            return None
        events = [
            {k: v for k, v in event.items() if k != "wall_s"}
            for event in self.telemetry.events
        ]
        return _canonical_digest(
            {
                "events": events,
                "metrics": self.telemetry.metrics.snapshot(),
            }
        )

    def result(self) -> FleetResult:
        per_tenant = [
            t.prequential.history[-1] if t.prequential.total_count else 0.0
            for t in self.tenants
        ]
        return FleetResult(
            policy=self.spec.policy,
            epochs=self.epoch,
            tenants=[t.name for t in self.tenants],
            weights=[t.spec.weight for t in self.tenants],
            per_tenant_error=per_tenant,
            aggregate_error=self.aggregate_error(),
            trainings=[t.trainings for t in self.tenants],
            rescues=self.scheduler.rescues,
            overdrafts=self.overdrafts,
            total_cost=self.clock.now,
            schedule_log=list(self.schedule_log),
            digest=self.digest(),
            telemetry_digest=self.telemetry_digest(),
        )

    # ------------------------------------------------------------------
    # Checkpointing and recovery
    # ------------------------------------------------------------------
    def checkpoint(self) -> Path:
        """Write a fleet checkpoint (cursor = epochs completed)."""
        if self.checkpoint_store is None:
            raise ReliabilityError(
                "fleet was constructed without a checkpoint= option"
            )
        state: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "scheduler": self.scheduler.state_dict(),
            "schedule_log": list(self.schedule_log),
            "clock": self.clock.now,
            "epoch": self.epoch,
            "overdrafts": self.overdrafts,
            "tenants": [t.capture_state() for t in self.tenants],
        }
        if self.telemetry.enabled:
            state["metrics"] = self.telemetry.metrics.state_dict()
        if self.telemetry.ledger is not None:
            state["lineage"] = self.telemetry.ledger.state_dict()
        checkpoint = PlatformCheckpoint(
            cursor=self.epoch,
            approach="fleet",
            # The fleet has no single artifact bundle; every tenant's
            # bundle is nested in state["tenants"].
            bundle=None,
            state=state,
        )
        return self.checkpoint_store.write(checkpoint)

    @classmethod
    def recover(
        cls,
        checkpoint: Union[CheckpointStore, CheckpointConfig, str],
        telemetry: Optional[Telemetry] = None,
        registry_root: Optional[str] = None,
        triggers: Optional[TriggerPolicy] = None,
    ) -> "FleetOrchestrator":
        """Resume a whole fleet from its latest valid checkpoint.

        The spec rides inside the checkpoint, so a directory is all a
        recovery needs. Continuation is byte-identical to the
        uninterrupted run: tenants are rebuilt without initial
        training, their artifacts/storage/state restored, streams
        fast-forwarded, and the scheduler + schedule log + clock
        reinstated.
        """
        store = as_store(checkpoint, telemetry=telemetry)
        saved = store.load_latest()
        if saved.approach != "fleet":
            raise ReliabilityError(
                f"checkpoint holds approach {saved.approach!r}, "
                f"expected 'fleet'"
            )
        spec = FleetSpec.from_dict(saved.state["spec"])
        orchestrator = cls(
            spec,
            telemetry=telemetry,
            checkpoint=store,
            registry_root=registry_root,
            triggers=triggers,
        )
        orchestrator.setup(fit=False)
        for tenant, tenant_state in zip(
            orchestrator.tenants, saved.state["tenants"]
        ):
            tenant.restore_state(tenant_state)
        orchestrator.scheduler.load_state_dict(
            saved.state["scheduler"]
        )
        orchestrator.schedule_log = list(saved.state["schedule_log"])
        orchestrator.epoch = int(saved.state["epoch"])
        orchestrator.overdrafts = int(saved.state["overdrafts"])
        metrics_state = saved.state.get("metrics")
        if (
            metrics_state is not None
            and orchestrator.telemetry.enabled
        ):
            orchestrator.telemetry.metrics.load_state_dict(
                metrics_state
            )
        lineage_state = saved.state.get("lineage")
        if (
            lineage_state is not None
            and orchestrator.telemetry.ledger is not None
        ):
            orchestrator.telemetry.ledger.load_state_dict(lineage_state)
        orchestrator.clock.advance(float(saved.state["clock"]))
        orchestrator.telemetry.tracer.point(
            names.FLEET_RECOVERED,
            epoch=orchestrator.epoch,
            tenants=len(orchestrator.tenants),
        )
        return orchestrator

    @staticmethod
    def peek(
        checkpoint: Union[CheckpointStore, CheckpointConfig, str],
    ) -> Dict[str, Any]:
        """Cheap fleet status from the latest checkpoint (no rebuild)."""
        store = as_store(checkpoint)
        saved = store.load_latest()
        if saved.approach != "fleet":
            raise ReliabilityError(
                f"checkpoint holds approach {saved.approach!r}, "
                f"expected 'fleet'"
            )
        tenants = saved.state["tenants"]
        spec = saved.state["spec"]
        return {
            "epoch": saved.state["epoch"],
            "clock": saved.state["clock"],
            "policy": spec["policy"],
            "num_tenants": len(tenants),
            "active": sum(1 for t in tenants if t["active"]),
            "trainings": [t["trainings"] for t in tenants],
            "cursors": [t["cursor"] for t in tenants],
            "names": [t["name"] for t in spec["tenants"]],
            "overdrafts": saved.state["overdrafts"],
        }

    def __repr__(self) -> str:
        return (
            f"FleetOrchestrator(tenants={len(self.spec.tenants)}, "
            f"policy={self.spec.policy!r}, epoch={self.epoch})"
        )
