"""Data-centric training triggers (the Modyn idea).

Instead of every tenant retraining on a private timer, the fleet
decides *which* tenant trains next from what its data has been doing:
how many rows arrived since its last proactive training, how sharply
its recent prequential error moved, and how stale its model is. Each
signal maps to a dimensionless urgency score; the scheduler turns
``weight x (1 + urgency)`` into a priority.

Everything here is a pure function of the
:class:`TenantSignals` snapshot — no clocks, no RNG — so the same
fleet history always produces the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.fleet.spec import STRATEGIES


@dataclass(frozen=True)
class TenantSignals:
    """One tenant's per-epoch snapshot, as the scheduler sees it."""

    tenant: int
    #: Rows ingested since the tenant's last proactive training.
    new_rows: int
    #: Relative recent-vs-previous prequential error inflation
    #: (0 = flat or improving; 0.5 = recent errors 50% worse).
    drift_score: float
    #: Epochs since the tenant last trained (or since the run began).
    staleness_epochs: int
    #: Budget weight (copied from the spec; the scheduler works from
    #: signals alone so replays need nothing else).
    weight: float
    strategy: str = "continuous"
    #: False once the tenant's stream is exhausted.
    active: bool = True

    def __post_init__(self) -> None:
        if self.tenant < 0:
            raise ValidationError(
                f"tenant index must be >= 0, got {self.tenant}"
            )
        if self.strategy not in STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {STRATEGIES}, "
                f"got {self.strategy!r}"
            )
        if self.weight <= 0:
            raise ValidationError(
                f"weight must be > 0, got {self.weight}"
            )

    @property
    def wants_training(self) -> bool:
        """Training-eligible: active and not opted out (``online``)."""
        return self.active and self.strategy != "online"


@dataclass(frozen=True)
class TriggerPolicy:
    """How the three data signals combine into one urgency score.

    * volume: ``new_rows / volume_rows`` — a tenant sitting on a full
      sample's worth of unseen rows scores 1.
    * drift: ``drift_gain x drift_score`` — error inflation dominates
      when a concept actually moved.
    * staleness: ``staleness_epochs / staleness_epochs_norm`` — a slow
      ramp so quiet tenants still rotate through.

    ``periodic`` tenants ignore volume/drift and spike to
    ``periodic_urgency`` once ``periodic_epochs`` have passed since
    their last training.
    """

    volume_rows: int = 160
    drift_gain: float = 6.0
    staleness_epochs_norm: int = 8
    periodic_epochs: int = 4
    periodic_urgency: float = 4.0

    def __post_init__(self) -> None:
        if self.volume_rows < 1:
            raise ValidationError(
                f"volume_rows must be >= 1, got {self.volume_rows}"
            )
        if self.staleness_epochs_norm < 1:
            raise ValidationError(
                f"staleness_epochs_norm must be >= 1, "
                f"got {self.staleness_epochs_norm}"
            )
        if self.periodic_epochs < 1:
            raise ValidationError(
                f"periodic_epochs must be >= 1, "
                f"got {self.periodic_epochs}"
            )
        if self.drift_gain < 0 or self.periodic_urgency < 0:
            raise ValidationError(
                "drift_gain and periodic_urgency must be >= 0"
            )

    def urgency(self, signals: TenantSignals) -> float:
        """Dimensionless urgency >= 0; 0 for opted-out tenants."""
        if not signals.wants_training:
            return 0.0
        if signals.strategy == "periodic":
            if signals.staleness_epochs >= self.periodic_epochs:
                return self.periodic_urgency
            return 0.0
        volume = signals.new_rows / self.volume_rows
        drift = self.drift_gain * max(0.0, signals.drift_score)
        staleness = signals.staleness_epochs / self.staleness_epochs_norm
        return volume + drift + staleness
