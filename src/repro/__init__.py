"""``repro`` — Continuous Deployment of Machine Learning Pipelines.

A from-scratch reproduction of Derakhshan et al., EDBT 2019: a
platform that keeps deployed ML pipelines fresh by *proactive
training* (scheduled single SGD iterations over samples of the
history) instead of periodical full retraining, accelerated by online
statistics computation and dynamic materialization of preprocessed
feature chunks.

Quickstart::

    from repro import (
        ContinuousDeployment, ContinuousConfig,
        URLStreamGenerator, make_url_pipeline,
        LinearSVM, Adam, L2,
    )

    gen = URLStreamGenerator(num_chunks=100, seed=7)
    pipeline = make_url_pipeline(hash_features=256)
    model = LinearSVM(num_features=256, regularizer=L2(1e-3))
    deployment = ContinuousDeployment(
        pipeline, model, Adam(0.01),
        config=ContinuousConfig(sample_size_chunks=4),
        metric="classification", seed=7,
    )
    deployment.initial_fit(gen.initial_data())
    result = deployment.run(gen.stream())
    print(result.final_error, result.total_cost)
"""

from repro.core import (
    ContinuousConfig,
    ContinuousDeployment,
    ContinuousDeploymentPlatform,
    Deployment,
    DeploymentResult,
    DynamicScheduler,
    OnlineConfig,
    OnlineDeployment,
    PeriodicalConfig,
    PeriodicalDeployment,
    PipelineManager,
    ThresholdRetrainingDeployment,
    ProactiveTrainer,
    ScheduleConfig,
    Scheduler,
    StaticScheduler,
)
from repro.data import (
    ChunkStorage,
    DataManager,
    FeatureChunk,
    RawChunk,
    Table,
    TimeBasedSampler,
    UniformSampler,
    WindowBasedSampler,
)
from repro.datasets import (
    TaxiStreamGenerator,
    URLStreamGenerator,
    make_taxi_pipeline,
    make_url_pipeline,
)
from repro.execution import CostModel, CostTracker, LocalExecutionEngine
from repro.ml import (
    AdaDelta,
    AdaGrad,
    Adam,
    ConstantLR,
    L1,
    L2,
    LinearRegression,
    LinearSVM,
    LogisticRegression,
    Momentum,
    RMSProp,
    SGDTrainer,
)
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    Telemetry,
    Tracer,
    format_summary,
    summarize_trace,
)
from repro.pipeline import Pipeline, PipelineComponent
from repro.serving import (
    GateConfig,
    ModelRegistry,
    QualityGate,
    RolloutController,
    ServedBatch,
    ServingEndpoint,
    VersionInfo,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ContinuousDeploymentPlatform",
    "PipelineManager",
    "ProactiveTrainer",
    "Scheduler",
    "StaticScheduler",
    "DynamicScheduler",
    "Deployment",
    "DeploymentResult",
    "OnlineDeployment",
    "PeriodicalDeployment",
    "ContinuousDeployment",
    "ThresholdRetrainingDeployment",
    "ScheduleConfig",
    "OnlineConfig",
    "PeriodicalConfig",
    "ContinuousConfig",
    # data
    "Table",
    "RawChunk",
    "FeatureChunk",
    "ChunkStorage",
    "DataManager",
    "UniformSampler",
    "WindowBasedSampler",
    "TimeBasedSampler",
    # pipeline
    "Pipeline",
    "PipelineComponent",
    # ml
    "LinearSVM",
    "LinearRegression",
    "LogisticRegression",
    "SGDTrainer",
    "Adam",
    "RMSProp",
    "AdaDelta",
    "AdaGrad",
    "Momentum",
    "ConstantLR",
    "L1",
    "L2",
    # execution
    "CostModel",
    "CostTracker",
    "LocalExecutionEngine",
    # observability
    "Telemetry",
    "Tracer",
    "MetricsRegistry",
    "JsonlSink",
    "format_summary",
    "summarize_trace",
    # serving
    "ModelRegistry",
    "VersionInfo",
    "ServingEndpoint",
    "ServedBatch",
    "QualityGate",
    "GateConfig",
    "RolloutController",
    # datasets
    "URLStreamGenerator",
    "TaxiStreamGenerator",
    "make_url_pipeline",
    "make_taxi_pipeline",
]
