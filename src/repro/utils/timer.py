"""A tiny wall-clock timer used by the evaluation harness.

The deterministic cost model (:mod:`repro.execution.cost`) is the
primary cost source for experiments; this timer records real elapsed
time alongside it for sanity checks.
"""

from __future__ import annotations

import time


class Timer:
    """Accumulating stopwatch.

    Usage::

        timer = Timer()
        with timer:
            do_work()
        print(timer.elapsed)

    The timer can be re-entered; elapsed time accumulates across uses.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Timer is not running")
        delta = time.perf_counter() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"Timer(elapsed={self.elapsed:.6f}, {state})"
