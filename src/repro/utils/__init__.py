"""Shared utilities: RNG handling, validation helpers, timing."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
]
