"""Crash-safe file primitives shared across the persistence layers.

Every durable artifact in the system — deployment bundles
(:mod:`repro.persistence`), platform checkpoints
(:mod:`repro.reliability.checkpoint`), registry manifests
(:mod:`repro.serving.registry`), and benchmark baselines
(:mod:`repro.obs.baseline`) — goes through :func:`atomic_write_bytes`,
so a process killed mid-write can never leave a truncated file at the
destination path.

This lives in ``repro.utils`` (the bottom of the subsystem layering,
see DESIGN.md §14) precisely because its callers span otherwise
unrelated layers: keeping it low is what lets ``obs`` stay below
``persistence`` in the import DAG.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import List, Union

#: Anything the filesystem accepts as a path.
PathLike = Union[str, "os.PathLike[str]"]

__all__ = ["PathLike", "atomic_write_bytes", "sweep_stale_tmp"]


def atomic_write_bytes(path: PathLike, blob: bytes) -> Path:
    """Write ``blob`` to ``path`` atomically (temp file + rename).

    The bytes are staged in a temporary file in the destination
    directory, flushed and fsynced, then moved over ``path`` with
    ``os.replace`` — on POSIX an atomic rename. A crash at any point
    leaves either the previous file or no file, never a truncation.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    sweep_stale_tmp(path)
    return path


def sweep_stale_tmp(path: PathLike) -> List[Path]:
    """Delete stale ``*.tmp`` staging files left behind for ``path``.

    A writer killed between ``mkstemp`` and ``os.replace`` leaves its
    staging file (``<name>.<random>.tmp``) in the destination
    directory forever. Each successful :func:`atomic_write_bytes` to
    the same destination sweeps them. Only staging files for *this*
    destination name are touched, so concurrent writers to other paths
    in the directory are never disturbed. Returns the removed paths,
    in sorted order so the unlink sequence is deterministic.
    """
    path = Path(path)
    removed: List[Path] = []
    for stale in sorted(path.parent.glob(path.name + ".*.tmp")):
        try:
            stale.unlink()
        except OSError:
            continue
        removed.append(stale)
    return removed
