"""Random-number-generator plumbing.

Every stochastic object in the library accepts a ``seed`` argument that
may be ``None``, an integer, or a :class:`numpy.random.Generator`. This
module centralises the conversion so behaviour is uniform everywhere.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields an OS-seeded generator, an ``int`` a deterministic
    one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used when one seeded object constructs several stochastic children
    that must not share a stream (e.g. a dataset generator that owns a
    drift schedule and a noise source).
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1))
