"""Argument-validation helpers.

These raise :class:`repro.exceptions.ValidationError` with a message
naming the offending parameter, so configuration mistakes surface at
construction time rather than deep inside a deployment run.
"""

from __future__ import annotations

import math
from typing import Any

from repro.exceptions import ValidationError


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number > 0 and return it."""
    _check_real(value, name)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number >= 0 and return it."""
    _check_real(value, name)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    _check_real(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ValidationError(f"{name} must be an int, got {value!r}")
    if value < 1:
        raise ValidationError(f"{name} must be >= 1, got {value!r}")
    return int(value)


def _check_real(value: Any, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    if math.isnan(value) or math.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
