"""Loss functions for linear models.

Each loss works on the model's decision values ``z = Xw + b`` and the
targets ``y``, exposing the mean loss and the derivative ``dL/dz``
needed for the SGD chain rule (``grad_w = Xᵀ (dL/dz) / n``).

Classification losses (:class:`HingeLoss`, :class:`LogisticLoss`)
expect labels in {-1, +1}, the convention of the paper's SVM and
ad-click references.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ValidationError


class Loss(ABC):
    """A differentiable (a.e.) per-example loss on decision values."""

    #: Identifier used in configs and reports.
    name: str = "base"

    #: Whether the loss expects {-1, +1} labels.
    is_classification: bool = False

    @abstractmethod
    def value(self, decision: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abstractmethod
    def dvalue(self, decision: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Per-example derivative ``dL/dz`` (same shape as ``decision``)."""

    @staticmethod
    def _check(decision: np.ndarray, targets: np.ndarray) -> None:
        if decision.shape != targets.shape:
            raise ValidationError(
                f"decision shape {decision.shape} != targets shape "
                f"{targets.shape}"
            )
        if decision.size == 0:
            raise ValidationError("loss evaluated on an empty batch")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SquaredLoss(Loss):
    """Least squares: ``L = ½ (z − y)²`` — the paper's equation (1)."""

    name = "squared"

    def value(self, decision: np.ndarray, targets: np.ndarray) -> float:
        self._check(decision, targets)
        residual = decision - targets
        return float(0.5 * np.mean(residual * residual))

    def dvalue(self, decision: np.ndarray, targets: np.ndarray) -> np.ndarray:
        self._check(decision, targets)
        return decision - targets


class HingeLoss(Loss):
    """SVM hinge: ``L = max(0, 1 − y z)`` with labels in {-1, +1}."""

    name = "hinge"
    is_classification = True

    def value(self, decision: np.ndarray, targets: np.ndarray) -> float:
        self._check(decision, targets)
        margins = 1.0 - targets * decision
        return float(np.mean(np.maximum(margins, 0.0)))

    def dvalue(self, decision: np.ndarray, targets: np.ndarray) -> np.ndarray:
        self._check(decision, targets)
        active = (targets * decision) < 1.0
        return np.where(active, -targets, 0.0)


class LogisticLoss(Loss):
    """Logistic: ``L = log(1 + exp(−y z))`` with labels in {-1, +1}.

    Implemented with ``log1p``/clipped exponentials for numerical
    stability at extreme margins.
    """

    name = "logistic"
    is_classification = True

    def value(self, decision: np.ndarray, targets: np.ndarray) -> float:
        self._check(decision, targets)
        margins = targets * decision
        # log(1 + e^-m) computed stably for both signs of m.
        return float(
            np.mean(np.logaddexp(0.0, -margins))
        )

    def dvalue(self, decision: np.ndarray, targets: np.ndarray) -> np.ndarray:
        self._check(decision, targets)
        margins = targets * decision
        return -targets * sigmoid(-margins)


def sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(values, dtype=np.float64)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_vals = np.exp(values[~positive])
    out[~positive] = exp_vals / (1.0 + exp_vals)
    return out
