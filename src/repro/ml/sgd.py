"""Mini-batch SGD training loop (Algorithm 1 of the paper).

:class:`SGDTrainer` binds a model to an optimizer and provides two
entry points:

* :meth:`SGDTrainer.step` — **one** iteration of mini-batch SGD on a
  given batch. This is exactly what proactive training executes per
  trigger (§3.3): sample → gradient → optimizer update.
* :meth:`SGDTrainer.train` — a full training run: repeated iterations
  with random mini-batches until convergence or an iteration cap.
  Used for initial training and for the periodical baseline's
  retraining.

Because the optimizer owns all cross-iteration state, iterations are
conditionally independent given (model parameters, optimizer state) —
the property §3.3 uses to justify running them at arbitrary times.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConvergenceWarning, ValidationError
from repro.ml.models.base import LinearSGDModel, Matrix
from repro.ml.optim.base import Optimizer
from repro.utils.rng import SeedLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.execution.cost import CostTracker


@dataclass
class TrainingResult:
    """Outcome of a :meth:`SGDTrainer.train` run."""

    iterations: int
    converged: bool
    final_objective: float
    objective_history: List[float] = field(default_factory=list)


class SGDTrainer:
    """Mini-batch SGD driver for a :class:`LinearSGDModel`.

    Parameters
    ----------
    model:
        The model to train (updated in place).
    optimizer:
        Update rule; its state persists across calls, enabling warm
        starting and proactive training.
    """

    def __init__(self, model: LinearSGDModel, optimizer: Optimizer) -> None:
        self.model = model
        self.optimizer = optimizer

    # ------------------------------------------------------------------
    def step(
        self,
        features: Matrix,
        targets: np.ndarray,
        tracker: Optional["CostTracker"] = None,
    ) -> float:
        """One SGD iteration on the given batch; returns the objective.

        The batch *is* the mini-batch — sampling happens upstream (the
        data manager for proactive training, the chunk itself for the
        online update).
        """
        grad, objective = self.model.gradient(features, targets)
        new_params = self.optimizer.step(self.model.params_vector(), grad)
        self.model.set_params_vector(new_params)
        self.model.updates_applied += 1
        if tracker is not None:
            tracker.charge_training(_batch_values(features), "sgd_step")
        return objective

    def train(
        self,
        features: Matrix,
        targets: np.ndarray,
        batch_size: Optional[int] = None,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        seed: SeedLike = None,
        tracker: Optional["CostTracker"] = None,
    ) -> TrainingResult:
        """Run mini-batch SGD until convergence or ``max_iterations``.

        Parameters
        ----------
        batch_size:
            Mini-batch size; ``None`` uses the full batch each
            iteration (batch gradient descent, the paper's initial-
            training setting of sampling ratio 1.0).
        tolerance:
            Converged when the parameter-vector change (L2 norm,
            relative to ``1 + ‖params‖``) falls below this.
        """
        targets = np.asarray(targets, dtype=np.float64)
        count = features.shape[0]
        if count != len(targets):
            raise ValidationError(
                f"features have {count} rows, targets {len(targets)}"
            )
        if count == 0:
            raise ValidationError("cannot train on an empty dataset")
        if batch_size is not None and batch_size < 1:
            raise ValidationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if max_iterations < 1:
            raise ValidationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        rng = ensure_rng(seed)
        history: List[float] = []
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            if batch_size is None or batch_size >= count:
                batch_x, batch_y = features, targets
            else:
                chosen = rng.choice(count, size=batch_size, replace=False)
                batch_x = features[chosen]
                batch_y = targets[chosen]
            before = self.model.params_vector()
            objective = self.step(batch_x, batch_y, tracker)
            history.append(objective)
            after = self.model.params_vector()
            change = float(np.linalg.norm(after - before))
            scale = 1.0 + float(np.linalg.norm(after))
            if change / scale < tolerance:
                converged = True
                break
        if not converged:
            warnings.warn(
                f"SGD stopped at max_iterations={max_iterations} without "
                f"converging (tolerance={tolerance})",
                ConvergenceWarning,
                stacklevel=2,
            )
        return TrainingResult(
            iterations=iterations,
            converged=converged,
            final_objective=history[-1],
            objective_history=history,
        )


def _batch_values(features: Matrix) -> int:
    if sp.issparse(features):
        return int(features.nnz)
    return int(np.asarray(features).size)
