"""Base class for SGD-trainable linear models.

A linear model keeps a weight vector and intercept and exposes the
``update``-style gradient interface the paper requires of deployed
models (§4.4: "the machine learning model component of the deployed
pipeline must implement an update method, which is responsible for
computing the gradient").

Parameters are also exposed as a single packed vector
(``[weights…, intercept]``) so an :class:`~repro.ml.optim.Optimizer`
can treat the model as one coordinate array — which is exactly what the
per-coordinate adaptation methods need.

Feature matrices may be dense ``ndarray`` or ``scipy.sparse`` CSR; all
the algebra below works for both.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.losses import Loss
from repro.ml.regularizers import NoRegularizer, Regularizer
from repro.utils.validation import check_positive_int

Matrix = Union[np.ndarray, sp.csr_matrix]


class LinearSGDModel:
    """A linear model ``z = X w + b`` trained by (mini-batch) SGD.

    Parameters
    ----------
    num_features:
        Dimensionality of the weight vector. Fixed at construction —
        the pipelines guarantee a stable feature width (hashing /
        assembly), matching the deployment setting.
    loss:
        The per-example loss driving the gradient.
    regularizer:
        Penalty on the weights (never the intercept).
    fit_intercept:
        Learn a bias term (default true).
    """

    #: Task flavour, set by subclasses ("regression" / "classification").
    task: str = "regression"

    def __init__(
        self,
        num_features: int,
        loss: Loss,
        regularizer: Optional[Regularizer] = None,
        fit_intercept: bool = True,
    ) -> None:
        self.num_features = check_positive_int(num_features, "num_features")
        self.loss = loss
        self.regularizer = (
            regularizer if regularizer is not None else NoRegularizer()
        )
        self.fit_intercept = fit_intercept
        self.weights = np.zeros(self.num_features, dtype=np.float64)
        self.intercept = 0.0
        #: Number of SGD updates applied so far.
        self.updates_applied = 0

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def decision_function(self, features: Matrix) -> np.ndarray:
        """Raw decision values ``X w + b``.

        The dense path reduces each row independently (elementwise
        product, then a per-row sum) instead of calling BLAS ``X @ w``:
        gemv kernels block over *rows*, so the low bits of a row's
        score would depend on how many rows share the call — breaking
        the serving guarantee that a micro-batched prediction is
        bit-identical to the same row served alone. The per-row
        reduction order depends only on ``num_features``.
        """
        self._check_features(features)
        if sp.issparse(features):
            scores = features.dot(self.weights)
            scores = np.asarray(scores).ravel()
        else:
            dense = np.asarray(features, dtype=np.float64)
            scores = np.add.reduce(dense * self.weights, axis=1)
        return scores + self.intercept

    def predict(self, features: Matrix) -> np.ndarray:
        """Task-specific predictions; subclasses refine."""
        return self.decision_function(features)

    # ------------------------------------------------------------------
    # Training interface
    # ------------------------------------------------------------------
    def gradient(
        self, features: Matrix, targets: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Mean-gradient of loss+penalty on a batch, packed, plus loss.

        Returns ``(grad, objective)`` where ``grad`` has length
        ``num_features + 1`` when an intercept is fitted (intercept
        slot last, zero otherwise excluded) — aligned with
        :meth:`params_vector`.
        """
        targets = np.asarray(targets, dtype=np.float64)
        decision = self.decision_function(features)
        dloss = self.loss.dvalue(decision, targets)
        count = len(targets)
        if sp.issparse(features):
            grad_w = np.asarray(features.T.dot(dloss)).ravel() / count
        else:
            grad_w = (
                np.asarray(features, dtype=np.float64).T @ dloss
            ) / count
        grad_w = grad_w + self.regularizer.gradient(self.weights)
        objective = self.loss.value(decision, targets) + (
            self.regularizer.penalty(self.weights)
        )
        if self.fit_intercept:
            grad_b = float(dloss.mean())
            return np.concatenate([grad_w, [grad_b]]), objective
        return grad_w, objective

    def objective(self, features: Matrix, targets: np.ndarray) -> float:
        """Regularized loss on a batch (no gradient)."""
        targets = np.asarray(targets, dtype=np.float64)
        decision = self.decision_function(features)
        return self.loss.value(decision, targets) + (
            self.regularizer.penalty(self.weights)
        )

    # ------------------------------------------------------------------
    # Parameter packing (optimizer interface)
    # ------------------------------------------------------------------
    @property
    def num_params(self) -> int:
        return self.num_features + (1 if self.fit_intercept else 0)

    def params_vector(self) -> np.ndarray:
        """Packed parameters ``[w…, b?]`` (a copy)."""
        if self.fit_intercept:
            return np.concatenate([self.weights, [self.intercept]])
        return self.weights.copy()

    def set_params_vector(self, params: np.ndarray) -> None:
        """Install packed parameters produced by an optimizer step."""
        params = np.asarray(params, dtype=np.float64)
        if params.shape != (self.num_params,):
            raise ValidationError(
                f"expected {self.num_params} packed parameters, "
                f"got shape {params.shape}"
            )
        if self.fit_intercept:
            self.weights = params[:-1].copy()
            self.intercept = float(params[-1])
        else:
            self.weights = params.copy()

    # ------------------------------------------------------------------
    # Persistence / warm starting
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Deep copy of the learned state (for warm starting)."""
        return {
            "weights": self.weights.copy(),
            "intercept": self.intercept,
            "updates_applied": self.updates_applied,
        }

    def load_state_dict(self, payload: Dict[str, object]) -> None:
        weights = np.asarray(payload["weights"], dtype=np.float64)
        if weights.shape != (self.num_features,):
            raise ValidationError(
                f"state has {weights.shape} weights, expected "
                f"({self.num_features},)"
            )
        self.weights = weights.copy()
        self.intercept = float(payload["intercept"])
        self.updates_applied = int(payload["updates_applied"])

    def clone(self) -> "LinearSGDModel":
        """Fresh, untrained copy with the same configuration."""
        duplicate = copy.deepcopy(self)
        duplicate.weights = np.zeros(self.num_features, dtype=np.float64)
        duplicate.intercept = 0.0
        duplicate.updates_applied = 0
        return duplicate

    def reset(self) -> None:
        """Zero the parameters in place."""
        self.weights = np.zeros(self.num_features, dtype=np.float64)
        self.intercept = 0.0
        self.updates_applied = 0

    # ------------------------------------------------------------------
    def _check_features(self, features: Matrix) -> None:
        if features.ndim != 2:
            raise ValidationError(
                f"features must be 2-D, got shape {features.shape}"
            )
        if features.shape[1] != self.num_features:
            raise ValidationError(
                f"features have {features.shape[1]} columns, model "
                f"expects {self.num_features}"
            )

    def _require_trained(self) -> None:
        if self.updates_applied == 0:
            raise NotFittedError(
                f"{type(self).__name__} has never been updated"
            )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_features={self.num_features}, "
            f"loss={self.loss.name}, reg={self.regularizer.name}, "
            f"updates={self.updates_applied})"
        )
