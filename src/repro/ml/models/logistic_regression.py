"""Logistic regression with {-1, +1} labels."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.losses import LogisticLoss, sigmoid
from repro.ml.models.base import LinearSGDModel, Matrix
from repro.ml.regularizers import Regularizer


class LogisticRegression(LinearSGDModel):
    """Binary linear classifier on the logistic loss.

    ``predict`` returns hard labels in {-1, +1};
    ``predict_proba`` the probability of the +1 class.
    """

    task = "classification"

    def __init__(
        self,
        num_features: int,
        regularizer: Optional[Regularizer] = None,
        fit_intercept: bool = True,
    ) -> None:
        super().__init__(
            num_features=num_features,
            loss=LogisticLoss(),
            regularizer=regularizer,
            fit_intercept=fit_intercept,
        )

    def predict(self, features: Matrix) -> np.ndarray:
        decision = self.decision_function(features)
        return np.where(decision >= 0.0, 1.0, -1.0)

    def predict_proba(self, features: Matrix) -> np.ndarray:
        """P(label = +1) per row."""
        return sigmoid(self.decision_function(features))
