"""Matrix factorization by SGD (Koren, Bell & Volinsky 2009).

The paper lists matrix factorization among the SGD-trained model
families its platform accommodates (§2.1, citing [19]). This is the
classic biased MF: a rating is modelled as

    r̂(u, i) = μ + b_u + b_i + p_uᵀ q_i

and every observed rating performs one SGD update of the involved
user/item vectors and biases with L2 regularization — naturally
incremental, so it fits online updates and proactive training alike.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)


class MatrixFactorization:
    """Biased matrix factorization trained by per-rating SGD.

    Parameters
    ----------
    num_users, num_items:
        Fixed entity universes (ids in ``[0, num)``).
    num_factors:
        Latent dimensionality.
    learning_rate:
        SGD step size (classic constant rate).
    regularization:
        L2 strength on factors and biases.
    init_scale:
        Std of the factor initialisation.
    seed:
        Initialisation seed.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        num_factors: int = 16,
        learning_rate: float = 0.01,
        regularization: float = 0.02,
        init_scale: float = 0.1,
        seed: SeedLike = None,
    ) -> None:
        self.num_users = check_positive_int(num_users, "num_users")
        self.num_items = check_positive_int(num_items, "num_items")
        self.num_factors = check_positive_int(
            num_factors, "num_factors"
        )
        self.learning_rate = check_positive(
            learning_rate, "learning_rate"
        )
        self.regularization = check_non_negative(
            regularization, "regularization"
        )
        rng = ensure_rng(seed)
        self.user_factors = rng.normal(
            0.0, init_scale, (self.num_users, self.num_factors)
        )
        self.item_factors = rng.normal(
            0.0, init_scale, (self.num_items, self.num_factors)
        )
        self.user_bias = np.zeros(self.num_users)
        self.item_bias = np.zeros(self.num_items)
        self.global_bias = 0.0
        self.updates_applied = 0

    # ------------------------------------------------------------------
    def predict(
        self, users: np.ndarray, items: np.ndarray
    ) -> np.ndarray:
        """Predicted ratings for aligned (user, item) id arrays."""
        users, items = self._check_ids(users, items)
        interaction = np.sum(
            self.user_factors[users] * self.item_factors[items], axis=1
        )
        return (
            self.global_bias
            + self.user_bias[users]
            + self.item_bias[items]
            + interaction
        )

    def step(
        self,
        users: np.ndarray,
        items: np.ndarray,
        ratings: np.ndarray,
    ) -> float:
        """One SGD pass over the given ratings; returns the mean
        squared error *before* the updates."""
        users, items = self._check_ids(users, items)
        ratings = np.asarray(ratings, dtype=np.float64)
        if ratings.shape != users.shape:
            raise ValidationError(
                f"ratings shape {ratings.shape} != ids shape "
                f"{users.shape}"
            )
        if ratings.size == 0:
            raise ValidationError("cannot train on zero ratings")
        lr = self.learning_rate
        reg = self.regularization
        squared_error = 0.0
        for user, item, rating in zip(users, items, ratings):
            p = self.user_factors[user]
            q = self.item_factors[item]
            prediction = (
                self.global_bias
                + self.user_bias[user]
                + self.item_bias[item]
                + p @ q
            )
            error = rating - prediction
            squared_error += error * error
            self.global_bias += lr * error
            self.user_bias[user] += lr * (
                error - reg * self.user_bias[user]
            )
            self.item_bias[item] += lr * (
                error - reg * self.item_bias[item]
            )
            p_new = p + lr * (error * q - reg * p)
            q_new = q + lr * (error * p - reg * q)
            self.user_factors[user] = p_new
            self.item_factors[item] = q_new
        self.updates_applied += len(ratings)
        return squared_error / len(ratings)

    def fit(
        self,
        users: np.ndarray,
        items: np.ndarray,
        ratings: np.ndarray,
        epochs: int = 10,
        shuffle_seed: SeedLike = None,
    ) -> list:
        """Multiple shuffled SGD epochs; returns per-epoch MSE."""
        if epochs < 1:
            raise ValidationError(f"epochs must be >= 1, got {epochs}")
        rng = ensure_rng(shuffle_seed)
        users = np.asarray(users)
        items = np.asarray(items)
        ratings = np.asarray(ratings, dtype=np.float64)
        history = []
        for __ in range(epochs):
            order = rng.permutation(len(ratings))
            history.append(
                self.step(users[order], items[order], ratings[order])
            )
        return history

    def mse(
        self,
        users: np.ndarray,
        items: np.ndarray,
        ratings: np.ndarray,
    ) -> float:
        """Mean squared error on the given ratings (no updates)."""
        predictions = self.predict(users, items)
        ratings = np.asarray(ratings, dtype=np.float64)
        return float(np.mean((predictions - ratings) ** 2))

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "user_factors": self.user_factors.copy(),
            "item_factors": self.item_factors.copy(),
            "user_bias": self.user_bias.copy(),
            "item_bias": self.item_bias.copy(),
            "global_bias": self.global_bias,
            "updates_applied": self.updates_applied,
        }

    def load_state_dict(self, payload: Dict[str, object]) -> None:
        factors = np.asarray(payload["user_factors"])
        if factors.shape != self.user_factors.shape:
            raise ValidationError(
                f"state user_factors shape {factors.shape} != "
                f"{self.user_factors.shape}"
            )
        self.user_factors = factors.copy()
        self.item_factors = np.asarray(payload["item_factors"]).copy()
        self.user_bias = np.asarray(payload["user_bias"]).copy()
        self.item_bias = np.asarray(payload["item_bias"]).copy()
        self.global_bias = float(payload["global_bias"])
        self.updates_applied = int(payload["updates_applied"])

    # ------------------------------------------------------------------
    def _check_ids(self, users, items):
        users = np.asarray(users, dtype=np.intp)
        items = np.asarray(items, dtype=np.intp)
        if users.shape != items.shape or users.ndim != 1:
            raise ValidationError(
                f"users/items must be equal-length 1-D arrays, got "
                f"{users.shape} and {items.shape}"
            )
        if users.size and (
            users.min() < 0 or users.max() >= self.num_users
        ):
            raise ValidationError("user id out of range")
        if items.size and (
            items.min() < 0 or items.max() >= self.num_items
        ):
            raise ValidationError("item id out of range")
        return users, items

    def __repr__(self) -> str:
        return (
            f"MatrixFactorization(users={self.num_users}, "
            f"items={self.num_items}, factors={self.num_factors}, "
            f"updates={self.updates_applied})"
        )
