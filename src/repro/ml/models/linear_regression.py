"""Linear regression on squared loss (paper §2.1, equation (1)).

Used by the Taxi pipeline to predict ``log1p(trip duration)``; the
RMSLE evaluation metric then is simply RMSE in the model's output
space (see :func:`repro.ml.metrics.rmsle_from_log`).
"""

from __future__ import annotations

from typing import Optional

from repro.ml.losses import SquaredLoss
from repro.ml.models.base import LinearSGDModel, Matrix
from repro.ml.regularizers import Regularizer

import numpy as np


class LinearRegression(LinearSGDModel):
    """Least-squares linear model."""

    task = "regression"

    def __init__(
        self,
        num_features: int,
        regularizer: Optional[Regularizer] = None,
        fit_intercept: bool = True,
    ) -> None:
        super().__init__(
            num_features=num_features,
            loss=SquaredLoss(),
            regularizer=regularizer,
            fit_intercept=fit_intercept,
        )

    def predict(self, features: Matrix) -> np.ndarray:
        """Predicted targets (identical to the decision values)."""
        return self.decision_function(features)
