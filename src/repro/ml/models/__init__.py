"""Models trained by SGD.

Linear models (regression, logistic, SVM) share the
:class:`LinearSGDModel` interface the deployment platform drives;
:class:`OnlineKMeans` and :class:`MatrixFactorization` are the other
SGD-trained families §2.1 of the paper cites (clustering, recommender
factorization), provided as standalone incremental learners.
"""

from repro.ml.models.base import LinearSGDModel
from repro.ml.models.kmeans import OnlineKMeans
from repro.ml.models.linear_regression import LinearRegression
from repro.ml.models.logistic_regression import LogisticRegression
from repro.ml.models.matrix_factorization import MatrixFactorization
from repro.ml.models.svm import LinearSVM

__all__ = [
    "LinearSGDModel",
    "LinearRegression",
    "LogisticRegression",
    "LinearSVM",
    "OnlineKMeans",
    "MatrixFactorization",
]
