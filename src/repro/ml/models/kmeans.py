"""Online k-means clustering by SGD (Bottou & Bengio 1995).

The paper lists clustering among the SGD-trained model families its
platform accommodates (§2.1, citing [6]). This is the classic online
k-means: each point moves its nearest centroid by a per-centroid
learning rate ``1 / count`` — exactly the SGD update of the
quantization objective with the Bottou–Bengio step size, which makes
each centroid the running mean of the points assigned to it.

Seeding: the first ``seed_size`` points are buffered and centroids are
chosen from them by k-means++ (D² sampling), then the buffered points
are replayed as ordinary online updates. Plain take-the-first-k
seeding collapses badly when early points share a cluster; the short
buffer fixes that while keeping the learner a one-pass streamer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int


class OnlineKMeans:
    """Streaming k-means with buffered k-means++ seeding.

    Parameters
    ----------
    num_clusters:
        Number of centroids (k).
    num_features:
        Dimensionality of the points.
    seed_size:
        Points buffered before k-means++ seeding runs; defaults to
        ``10 * k`` (at least ``k``).
    seed:
        Seeds the k-means++ sampling.
    """

    def __init__(
        self,
        num_clusters: int,
        num_features: int,
        seed_size: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        self.num_clusters = check_positive_int(
            num_clusters, "num_clusters"
        )
        self.num_features = check_positive_int(
            num_features, "num_features"
        )
        if seed_size is None:
            seed_size = 10 * self.num_clusters
        if seed_size < self.num_clusters:
            raise ValidationError(
                f"seed_size must be >= num_clusters "
                f"({self.num_clusters}), got {seed_size}"
            )
        self.seed_size = int(seed_size)
        self._rng = ensure_rng(seed)
        self.centroids = np.zeros(
            (self.num_clusters, self.num_features), dtype=np.float64
        )
        self.counts = np.zeros(self.num_clusters, dtype=np.int64)
        self._buffer: List[np.ndarray] = []
        self._seeded = False

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """True once seeding has run (enough points were buffered)."""
        return self._seeded

    def partial_fit(self, points: np.ndarray) -> "OnlineKMeans":
        """Fold a batch of points into the clustering (one SGD pass)."""
        points = self._check_points(points)
        for point in points:
            if not self._seeded:
                self._buffer.append(point.copy())
                if len(self._buffer) >= self.seed_size:
                    self._seed_from_buffer()
                continue
            self._online_update(point)
        return self

    def _online_update(self, point: np.ndarray) -> None:
        winner = self._nearest(point)
        self.counts[winner] += 1
        rate = 1.0 / self.counts[winner]
        self.centroids[winner] += rate * (point - self.centroids[winner])

    def _seed_from_buffer(self) -> None:
        """k-means++ over the buffer, then replay it as updates."""
        buffered = np.asarray(self._buffer)
        self.centroids = _kmeans_plus_plus(
            buffered, self.num_clusters, self._rng
        )
        # Counts start at zero: the replay below makes each centroid
        # exactly the running mean of its assigned points.
        self.counts = np.zeros(self.num_clusters, dtype=np.int64)
        self._seeded = True
        for point in buffered:
            self._online_update(point)
        self._buffer = []

    # ------------------------------------------------------------------
    def predict(self, points: np.ndarray) -> np.ndarray:
        """Index of the nearest centroid per point."""
        self._require_fitted()
        points = self._check_points(points)
        return self._distances(points).argmin(axis=1)

    def inertia(self, points: np.ndarray) -> float:
        """Mean squared distance to the nearest centroid."""
        self._require_fitted()
        points = self._check_points(points)
        return float(self._distances(points).min(axis=1).mean())

    def _distances(self, points: np.ndarray) -> np.ndarray:
        deltas = points[:, None, :] - self.centroids[None, :, :]
        return np.sum(deltas * deltas, axis=2)

    def _nearest(self, point: np.ndarray) -> int:
        deltas = self.centroids - point
        return int(np.sum(deltas * deltas, axis=1).argmin())

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Deep copy of the clustering state."""
        return {
            "centroids": self.centroids.copy(),
            "counts": self.counts.copy(),
            "seeded": self._seeded,
            "buffer": [point.copy() for point in self._buffer],
        }

    def load_state_dict(self, payload: Dict[str, object]) -> None:
        centroids = np.asarray(payload["centroids"], dtype=np.float64)
        if centroids.shape != (self.num_clusters, self.num_features):
            raise ValidationError(
                f"state centroids have shape {centroids.shape}, "
                f"expected {(self.num_clusters, self.num_features)}"
            )
        self.centroids = centroids.copy()
        self.counts = np.asarray(payload["counts"], dtype=np.int64).copy()
        self._seeded = bool(payload["seeded"])
        self._buffer = [
            np.asarray(point, dtype=np.float64).copy()
            for point in payload["buffer"]
        ]

    # ------------------------------------------------------------------
    def _check_points(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.num_features:
            raise ValidationError(
                f"points must have shape (n, {self.num_features}), "
                f"got {points.shape}"
            )
        return points

    def _require_fitted(self) -> None:
        if not self._seeded:
            raise NotFittedError(
                f"OnlineKMeans has buffered {len(self._buffer)} of the "
                f"{self.seed_size} points needed for seeding"
            )

    def __repr__(self) -> str:
        return (
            f"OnlineKMeans(k={self.num_clusters}, "
            f"dim={self.num_features}, "
            f"points={int(self.counts.sum())}, "
            f"seeded={self._seeded})"
        )


def _kmeans_plus_plus(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ (D² sampling) initial centroids from ``points``."""
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    first = rng.integers(0, len(points))
    centroids[0] = points[first]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for index in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; reuse any.
            centroids[index] = points[rng.integers(0, len(points))]
            continue
        chosen = rng.choice(len(points), p=closest_sq / total)
        centroids[index] = points[chosen]
        distances = np.sum((points - centroids[index]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distances)
    return centroids
