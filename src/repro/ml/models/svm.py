"""Linear support vector machine (hinge loss).

The URL pipeline's model: a linear SVM trained by SGD on the hinge
loss with L2 regularization, as in MLlib's ``SVMWithSGD`` which the
paper's prototype used.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.losses import HingeLoss
from repro.ml.models.base import LinearSGDModel, Matrix
from repro.ml.regularizers import Regularizer


class LinearSVM(LinearSGDModel):
    """Binary linear SVM with {-1, +1} labels."""

    task = "classification"

    def __init__(
        self,
        num_features: int,
        regularizer: Optional[Regularizer] = None,
        fit_intercept: bool = True,
    ) -> None:
        super().__init__(
            num_features=num_features,
            loss=HingeLoss(),
            regularizer=regularizer,
            fit_intercept=fit_intercept,
        )

    def predict(self, features: Matrix) -> np.ndarray:
        """Hard labels in {-1, +1} (0 decision maps to +1)."""
        decision = self.decision_function(features)
        return np.where(decision >= 0.0, 1.0, -1.0)

    def margins(self, features: Matrix, targets: np.ndarray) -> np.ndarray:
        """Functional margins ``y · z`` (useful for diagnostics)."""
        targets = np.asarray(targets, dtype=np.float64)
        return targets * self.decision_function(features)
