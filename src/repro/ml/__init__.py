"""From-scratch SGD machine learning stack.

Linear models (SVM, linear and logistic regression) trained by
mini-batch stochastic gradient descent with the per-coordinate adaptive
learning rates the paper evaluates (Adam, RMSProp, AdaDelta), plus
Momentum/AdaGrad/constant for completeness. Everything accepts dense
``ndarray`` or sparse CSR feature matrices.
"""

from repro.ml.batch import (
    predict_batch,
    predict_batch_pairs,
    split_rows,
    stack_matrices,
)
from repro.ml.losses import HingeLoss, LogisticLoss, Loss, SquaredLoss
from repro.ml.metrics import (
    PrequentialTracker,
    accuracy,
    mean_absolute_error,
    mean_squared_error,
    misclassification_rate,
    rmsle,
    rmsle_from_log,
)
from repro.ml.models import (
    LinearRegression,
    LinearSGDModel,
    LinearSVM,
    LogisticRegression,
    MatrixFactorization,
    OnlineKMeans,
)
from repro.ml.optim import (
    AdaDelta,
    AdaGrad,
    Adam,
    ConstantLR,
    InverseScalingLR,
    Momentum,
    Optimizer,
    RMSProp,
    make_optimizer,
)
from repro.ml.regularizers import L1, L2, NoRegularizer, Regularizer
from repro.ml.sgd import SGDTrainer, TrainingResult

__all__ = [
    "Loss",
    "SquaredLoss",
    "HingeLoss",
    "LogisticLoss",
    "Regularizer",
    "L1",
    "L2",
    "NoRegularizer",
    "Optimizer",
    "ConstantLR",
    "InverseScalingLR",
    "Momentum",
    "AdaGrad",
    "RMSProp",
    "AdaDelta",
    "Adam",
    "make_optimizer",
    "LinearSGDModel",
    "LinearRegression",
    "LogisticRegression",
    "LinearSVM",
    "OnlineKMeans",
    "MatrixFactorization",
    "SGDTrainer",
    "TrainingResult",
    "predict_batch",
    "predict_batch_pairs",
    "split_rows",
    "stack_matrices",
    "misclassification_rate",
    "accuracy",
    "mean_squared_error",
    "mean_absolute_error",
    "rmsle",
    "rmsle_from_log",
    "PrequentialTracker",
]
