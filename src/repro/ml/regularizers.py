"""Weight regularizers.

Applied to the weight vector only — never the intercept — by the
models in :mod:`repro.ml.models`. The paper's hyperparameter grid
(Table 3) sweeps the L2 strength over {1e-2, 1e-3, 1e-4}.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_non_negative


class Regularizer(ABC):
    """Penalty term added to the loss, with its (sub)gradient."""

    name: str = "base"

    @abstractmethod
    def penalty(self, weights: np.ndarray) -> float:
        """Penalty value for ``weights``."""

    @abstractmethod
    def gradient(self, weights: np.ndarray) -> np.ndarray:
        """(Sub)gradient of the penalty at ``weights``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoRegularizer(Regularizer):
    """No penalty."""

    name = "none"

    def penalty(self, weights: np.ndarray) -> float:
        return 0.0

    def gradient(self, weights: np.ndarray) -> np.ndarray:
        return np.zeros_like(weights)


class L2(Regularizer):
    """Ridge penalty ``½ λ ‖w‖²`` with gradient ``λ w``."""

    name = "l2"

    def __init__(self, strength: float) -> None:
        self.strength = check_non_negative(strength, "strength")

    def penalty(self, weights: np.ndarray) -> float:
        return float(0.5 * self.strength * np.dot(weights, weights))

    def gradient(self, weights: np.ndarray) -> np.ndarray:
        return self.strength * weights

    def __repr__(self) -> str:
        return f"L2(strength={self.strength})"


class L1(Regularizer):
    """Lasso penalty ``λ ‖w‖₁`` with subgradient ``λ sign(w)``."""

    name = "l1"

    def __init__(self, strength: float) -> None:
        self.strength = check_non_negative(strength, "strength")

    def penalty(self, weights: np.ndarray) -> float:
        return float(self.strength * np.abs(weights).sum())

    def gradient(self, weights: np.ndarray) -> np.ndarray:
        return self.strength * np.sign(weights)

    def __repr__(self) -> str:
        return f"L1(strength={self.strength})"
