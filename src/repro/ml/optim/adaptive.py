"""Per-coordinate adaptive update rules: AdaGrad, RMSProp, AdaDelta, Adam.

These are the methods §2.1 of the paper highlights: each coordinate of
the weight vector gets its own effective learning rate, driven by the
history of that coordinate's gradients. Definitions follow the cited
originals (Duchi et al. 2011; Tieleman & Hinton 2012; Zeiler 2012;
Kingma & Ba 2014 — with Adam's bias correction).
"""

from __future__ import annotations

import numpy as np

from repro.ml.optim.base import Optimizer
from repro.utils.validation import check_fraction, check_positive


class AdaGrad(Optimizer):
    """AdaGrad: accumulate squared gradients, shrink step per coordinate.

    ``G ← G + g²``;  ``w ← w − η g / (√G + ε)``
    """

    name = "adagrad"

    def __init__(
        self, learning_rate: float = 0.01, epsilon: float = 1e-8
    ) -> None:
        super().__init__()
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.epsilon = check_positive(epsilon, "epsilon")

    def _update(self, grad: np.ndarray) -> np.ndarray:
        accumulator = self._ensure_array("sq_sum", grad)
        accumulator += grad * grad
        return (
            -self.learning_rate
            * grad
            / (np.sqrt(accumulator) + self.epsilon)
        )


class RMSProp(Optimizer):
    """RMSProp: exponential moving average of squared gradients.

    ``E[g²] ← ρ E[g²] + (1−ρ) g²``;
    ``w ← w − η g / √(E[g²] + ε)``
    """

    name = "rmsprop"

    def __init__(
        self,
        learning_rate: float = 0.01,
        rho: float = 0.9,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__()
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.rho = check_fraction(rho, "rho")
        self.epsilon = check_positive(epsilon, "epsilon")

    def _update(self, grad: np.ndarray) -> np.ndarray:
        average = self._ensure_array("sq_avg", grad)
        average *= self.rho
        average += (1.0 - self.rho) * grad * grad
        return (
            -self.learning_rate * grad / np.sqrt(average + self.epsilon)
        )


class AdaDelta(Optimizer):
    """AdaDelta: RMS-ratio updates, no global learning rate.

    ``E[g²] ← ρ E[g²] + (1−ρ) g²``;
    ``Δw = −(RMS[Δw] / RMS[g]) g``;
    ``E[Δw²] ← ρ E[Δw²] + (1−ρ) Δw²``
    """

    name = "adadelta"

    def __init__(self, rho: float = 0.95, epsilon: float = 1e-6) -> None:
        super().__init__()
        self.rho = check_fraction(rho, "rho")
        self.epsilon = check_positive(epsilon, "epsilon")

    def _update(self, grad: np.ndarray) -> np.ndarray:
        sq_avg = self._ensure_array("sq_avg", grad)
        delta_avg = self._ensure_array("delta_avg", grad)
        sq_avg *= self.rho
        sq_avg += (1.0 - self.rho) * grad * grad
        delta = (
            -np.sqrt(delta_avg + self.epsilon)
            / np.sqrt(sq_avg + self.epsilon)
            * grad
        )
        delta_avg *= self.rho
        delta_avg += (1.0 - self.rho) * delta * delta
        return delta


class Adam(Optimizer):
    """Adam: bias-corrected first and second moment estimates.

    ``m ← β₁ m + (1−β₁) g``;  ``v ← β₂ v + (1−β₂) g²``;
    ``w ← w − η m̂ / (√v̂ + ε)`` with ``m̂ = m/(1−β₁ᵗ)``,
    ``v̂ = v/(1−β₂ᵗ)``.
    """

    name = "adam"

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__()
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.beta1 = check_fraction(beta1, "beta1")
        self.beta2 = check_fraction(beta2, "beta2")
        self.epsilon = check_positive(epsilon, "epsilon")

    def _update(self, grad: np.ndarray) -> np.ndarray:
        first = self._ensure_array("m", grad)
        second = self._ensure_array("v", grad)
        step_index = self._bump_counter()
        first *= self.beta1
        first += (1.0 - self.beta1) * grad
        second *= self.beta2
        second += (1.0 - self.beta2) * grad * grad
        m_hat = first / (1.0 - self.beta1**step_index)
        v_hat = second / (1.0 - self.beta2**step_index)
        return (
            -self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        )
