"""Non-adaptive update rules: constant, inverse-scaling, momentum.

These are the "trivial approach" baselines of §2.1 (fixed or simply
decaying learning rates) plus classical momentum (Qian 1999), which the
paper cites among the adaptive-rate methods.
"""

from __future__ import annotations

import numpy as np

from repro.ml.optim.base import Optimizer
from repro.utils.validation import check_fraction, check_positive


class ConstantLR(Optimizer):
    """Plain SGD: ``w ← w − η g``."""

    name = "constant"

    def __init__(self, learning_rate: float = 0.01) -> None:
        super().__init__()
        self.learning_rate = check_positive(learning_rate, "learning_rate")

    def _update(self, grad: np.ndarray) -> np.ndarray:
        return -self.learning_rate * grad


class InverseScalingLR(Optimizer):
    """Decaying SGD: ``η_t = η₀ / t^power`` (§2.1's "decrease by a
    small factor after every iteration").
    """

    name = "inverse_scaling"

    def __init__(
        self, learning_rate: float = 0.01, power: float = 0.5
    ) -> None:
        super().__init__()
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.power = check_positive(power, "power")

    def _update(self, grad: np.ndarray) -> np.ndarray:
        step_index = self._bump_counter()
        eta = self.learning_rate / step_index**self.power
        return -eta * grad

    def current_learning_rate(self) -> float:
        """Learning rate the *next* step will use."""
        next_step = int(self._state.get("t", 0)) + 1
        return self.learning_rate / next_step**self.power


class Momentum(Optimizer):
    """Classical momentum: ``v ← β v − η g``; ``w ← w + v``."""

    name = "momentum"

    def __init__(
        self, learning_rate: float = 0.01, beta: float = 0.9
    ) -> None:
        super().__init__()
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.beta = check_fraction(beta, "beta")

    def _update(self, grad: np.ndarray) -> np.ndarray:
        velocity = self._ensure_array("velocity", grad)
        velocity *= self.beta
        velocity -= self.learning_rate * grad
        return velocity.copy()
