"""SGD update rules (learning-rate adaptation techniques).

The paper's proactive trainer "utilizes advanced learning rate
adaptation techniques such as Adam, Rmsprop, and AdaDelta" (§4.4); all
three adapt the learning rate *per coordinate*, which §2.1 argues is
essential for high-dimensional models. Momentum, AdaGrad, constant,
and inverse-scaling rules are provided for baselines and ablations.

Every optimizer keeps its state across calls, so warm starting
(periodical deployment) and proactive training (continuous deployment)
can both persist "the average of past gradients" exactly as the paper
describes.
"""

from types import MappingProxyType

from repro.ml.optim.adaptive import AdaDelta, AdaGrad, Adam, RMSProp
from repro.ml.optim.base import Optimizer
from repro.ml.optim.basic import ConstantLR, InverseScalingLR, Momentum

# Read-only so worker shards importing this module can never drift
# apart by mutating a shared registry (reprolint REP011).
_REGISTRY = MappingProxyType(
    {
        cls.name: cls
        for cls in (
            ConstantLR,
            InverseScalingLR,
            Momentum,
            AdaGrad,
            RMSProp,
            AdaDelta,
            Adam,
        )
    }
)


def make_optimizer(name: str, **hyperparameters) -> Optimizer:
    """Construct an optimizer by config name.

    Known names: ``constant``, ``inverse_scaling``, ``momentum``,
    ``adagrad``, ``rmsprop``, ``adadelta``, ``adam``. Keyword arguments
    are forwarded to the constructor.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(**hyperparameters)


__all__ = [
    "Optimizer",
    "ConstantLR",
    "InverseScalingLR",
    "Momentum",
    "AdaGrad",
    "RMSProp",
    "AdaDelta",
    "Adam",
    "make_optimizer",
]
