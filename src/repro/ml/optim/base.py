"""Optimizer base class with persistable state.

An :class:`Optimizer` turns a gradient into a parameter update. State
(moment estimates, squared-gradient accumulators, iteration counters)
lives on the optimizer so that:

* proactive training can run one SGD iteration at arbitrary times —
  iterations are conditionally independent given model parameters and
  optimizer state (§3.3 of the paper), and
* periodical retraining can warm-start by copying the optimizer state
  along with the model weights (§5.2, TFX-style warm starting).
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Any, Dict

import numpy as np

from repro.exceptions import ValidationError


class Optimizer(ABC):
    """Base class for SGD update rules.

    Subclasses implement :meth:`_update` returning the parameter
    *delta* for a gradient, and may allocate per-coordinate state via
    :meth:`_ensure_dim`.
    """

    #: Config/report identifier.
    name: str = "base"

    def __init__(self) -> None:
        self._state: Dict[str, Any] = {}
        self._dim: int | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Return updated parameters for one SGD iteration.

        ``params`` and ``grad`` must be 1-D and the same length; the
        input array is not mutated.
        """
        params = np.asarray(params, dtype=np.float64)
        grad = np.asarray(grad, dtype=np.float64)
        if params.ndim != 1 or grad.shape != params.shape:
            raise ValidationError(
                f"params shape {params.shape} and grad shape "
                f"{grad.shape} must be equal 1-D shapes"
            )
        if self._dim is None:
            self._dim = params.size
        elif params.size != self._dim:
            raise ValidationError(
                f"optimizer was sized for {self._dim} parameters, "
                f"got {params.size}"
            )
        return params + self._update(grad)

    def reset(self) -> None:
        """Drop all state (fresh optimizer, same hyperparameters)."""
        self._state = {}
        self._dim = None

    def state_dict(self) -> Dict[str, Any]:
        """Deep copy of the internal state, for warm starting."""
        return {
            "dim": self._dim,
            "state": copy.deepcopy(self._state),
        }

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if set(payload) != {"dim", "state"}:
            raise ValidationError(
                f"malformed optimizer state: keys {sorted(payload)}"
            )
        self._dim = payload["dim"]
        self._state = copy.deepcopy(payload["state"])

    def clone(self) -> "Optimizer":
        """A fresh optimizer with identical hyperparameters, no state."""
        duplicate = copy.deepcopy(self)
        duplicate.reset()
        return duplicate

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _update(self, grad: np.ndarray) -> np.ndarray:
        """Parameter delta (already negated) for this gradient."""

    def _ensure_array(self, key: str, like: np.ndarray) -> np.ndarray:
        """Get-or-create a zeroed state array shaped like ``like``."""
        array = self._state.get(key)
        if array is None:
            array = np.zeros_like(like, dtype=np.float64)
            self._state[key] = array
        return array

    def _bump_counter(self, key: str = "t") -> int:
        """Increment and return an integer state counter (from 1)."""
        value = int(self._state.get(key, 0)) + 1
        self._state[key] = value
        return value

    def __repr__(self) -> str:
        public = {
            k: v
            for k, v in vars(self).items()
            if not k.startswith("_")
        }
        arguments = ", ".join(f"{k}={v}" for k, v in sorted(public.items()))
        return f"{type(self).__name__}({arguments})"
