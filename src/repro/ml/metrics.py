"""Evaluation metrics and prequential error tracking.

The paper evaluates the URL model by misclassification rate and the
Taxi model by Root Mean Squared Logarithmic Error (RMSLE), and reports
the *cumulative prequential* error over the deployment (Dawid 1984):
each chunk is first used for testing, then for training, and the error
accumulates over all chunks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.exceptions import ValidationError


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValidationError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred "
            f"{y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValidationError("metric evaluated on empty arrays")
    return y_true, y_pred


def misclassification_rate(
    y_true: np.ndarray, y_pred: np.ndarray
) -> float:
    """Fraction of labels predicted incorrectly (URL metric)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true != y_pred))


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """1 − misclassification rate."""
    return 1.0 - misclassification_rate(y_true, y_pred)


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    residual = y_pred - y_true
    return float(np.mean(residual * residual))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_pred - y_true)))


def rmsle(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root Mean Squared Logarithmic Error on raw (>= 0) targets.

    ``sqrt(mean((log1p(pred) − log1p(true))²))`` — the Kaggle metric
    the Taxi pipeline optimizes. Negative predictions are clipped to 0
    (a negative duration is a model error, not a math error).
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    if np.any(y_true < 0):
        raise ValidationError("rmsle requires non-negative true targets")
    log_true = np.log1p(y_true)
    log_pred = np.log1p(np.maximum(y_pred, 0.0))
    return float(np.sqrt(np.mean((log_pred - log_true) ** 2)))


def rmsle_from_log(
    log_true: np.ndarray, log_pred: np.ndarray
) -> float:
    """RMSLE when both arrays are already in ``log1p`` space.

    The Taxi model trains on ``log1p(duration)``, so its RMSLE is plain
    RMSE in that space.
    """
    log_true, log_pred = _check_pair(log_true, log_pred)
    return float(np.sqrt(np.mean((log_pred - log_true) ** 2)))


@dataclass
class PrequentialTracker:
    """Cumulative prequential error over a deployment.

    Chunks report their per-chunk error *sum* and row count (for rate
    metrics, error sum = number of misclassified rows; for RMSLE, the
    sum of squared log errors). The cumulative value is then the
    error aggregated over every prediction made so far:

    * ``kind="rate"`` — cumulative error = total errors / total rows.
    * ``kind="rmse"`` — cumulative error = sqrt(total sq. error / rows).

    :attr:`history` records the cumulative value after every chunk —
    the series plotted in Figures 4(a)/4(c) of the paper.
    """

    kind: str = "rate"
    total_error: float = 0.0
    total_count: int = 0
    history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in ("rate", "rmse"):
            raise ValidationError(
                f"kind must be 'rate' or 'rmse', got {self.kind!r}"
            )

    def add_chunk(self, error_sum: float, count: int) -> float:
        """Record one chunk's error; returns the new cumulative value."""
        if count < 1:
            raise ValidationError(f"chunk count must be >= 1, got {count}")
        if error_sum < 0:
            raise ValidationError(
                f"error sum must be >= 0, got {error_sum}"
            )
        self.total_error += float(error_sum)
        self.total_count += int(count)
        self.history.append(self.value())
        return self.history[-1]

    def state_dict(self) -> dict:
        """Cumulative error state for checkpoint/recovery."""
        return {
            "kind": self.kind,
            "total_error": self.total_error,
            "total_count": self.total_count,
            "history": list(self.history),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if state["kind"] != self.kind:
            raise ValidationError(
                f"cannot restore a {state['kind']!r} tracker into a "
                f"{self.kind!r} tracker"
            )
        self.total_error = float(state["total_error"])
        self.total_count = int(state["total_count"])
        self.history = list(state["history"])

    def value(self) -> float:
        """Current cumulative prequential error."""
        if not self.total_count:
            return 0.0
        mean_error = self.total_error / self.total_count
        if self.kind == "rmse":
            return float(np.sqrt(mean_error))
        return float(mean_error)

    def average_over_time(self) -> float:
        """Mean of the cumulative-error curve (the paper's "average
        error rate" comparisons across deployment approaches)."""
        if not self.history:
            return 0.0
        return float(np.mean(self.history))
