"""Vectorized batch-predict paths: many feature blocks, one kernel.

Serving a request at a time pays the full Python/numpy dispatch
overhead per request — attribute checks, shape validation, a BLAS (or
sparse) kernel launch for a handful of rows. The micro-batching front
end (:mod:`repro.traffic`) amortizes that by stacking the feature
blocks of many queued requests and running the model's vectorized
``predict`` once, then splitting the result back per block.

The contract that makes this safe is **bit-identity**: every model in
:mod:`repro.ml` scores row ``i`` of a stacked matrix exactly as it
scores the same row alone, because every inference kernel here is
row-independent — sparse CSR row-dot, dense matrix-vector products,
per-row centroid distances, per-pair factor dots. ``predict_batch``
therefore returns, per input block, the byte-identical array the
per-block ``model.predict`` call would have produced (covered across
all model types by ``tests/ml/test_batch_predict.py``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.ml.models.base import Matrix

#: One stacked input: either a feature matrix or a 1-D id array.
Stackable = Union[np.ndarray, sp.csr_matrix]


def stack_matrices(matrices: Sequence[Matrix]) -> Matrix:
    """Vertically stack feature blocks (dense or sparse, not mixed).

    The stacked matrix's row ``i`` is byte-identical to the source
    row, so any row-independent kernel over the stack reproduces the
    per-block results exactly.
    """
    if not matrices:
        raise ValidationError("stack_matrices needs at least one block")
    sparse_flags = {bool(sp.issparse(m)) for m in matrices}
    if len(sparse_flags) > 1:
        raise ValidationError(
            "cannot stack a mix of sparse and dense feature blocks"
        )
    if len(matrices) == 1:
        return matrices[0]
    if sparse_flags.pop():
        return sp.vstack(matrices, format="csr")
    return np.vstack(matrices)


def split_rows(
    stacked: np.ndarray, counts: Sequence[int]
) -> List[np.ndarray]:
    """Split a stacked 1-D result array back into per-block arrays."""
    total = int(sum(counts))
    if len(stacked) != total:
        raise ValidationError(
            f"cannot split {len(stacked)} rows into blocks of "
            f"{list(counts)} (sum {total})"
        )
    out: List[np.ndarray] = []
    start = 0
    for count in counts:
        out.append(stacked[start:start + int(count)])
        start += int(count)
    return out


def predict_batch(model, matrices: Sequence[Matrix]) -> List[np.ndarray]:
    """One vectorized ``model.predict`` over many feature blocks.

    Works for every matrix-in model (:class:`LinearSGDModel`
    subclasses, :class:`OnlineKMeans`); the predictions are split back
    so entry ``i`` is bit-identical to ``model.predict(matrices[i])``.
    """
    counts = [int(m.shape[0]) for m in matrices]
    predictions = model.predict(stack_matrices(matrices))
    return split_rows(np.asarray(predictions), counts)


def predict_batch_pairs(
    model, pairs: Sequence[Tuple[np.ndarray, np.ndarray]]
) -> List[np.ndarray]:
    """Batched variant for pair-scoring models (matrix factorization).

    ``pairs`` holds aligned ``(users, items)`` id arrays per request;
    the ids are concatenated, scored in one vectorized call, and split
    back per request.
    """
    if not pairs:
        raise ValidationError(
            "predict_batch_pairs needs at least one (users, items) pair"
        )
    counts = [len(users) for users, _ in pairs]
    users = np.concatenate([np.asarray(u) for u, _ in pairs])
    items = np.concatenate([np.asarray(i) for _, i in pairs])
    return split_rows(np.asarray(model.predict(users, items)), counts)
