"""Drift Detection Method (DDM) — Gama et al., SBIA 2004.

Monitors a stream of Bernoulli error indicators (1 = misclassified).
With ``p_t`` the running error rate and ``s_t = sqrt(p_t(1-p_t)/t)``
its standard deviation, DDM tracks the minimum of ``p + s`` and
signals:

* WARNING when ``p_t + s_t >= p_min + warning_level * s_min``;
* DRIFT   when ``p_t + s_t >= p_min + drift_level * s_min``.

The classic levels are 2 and 3 standard deviations.
"""

from __future__ import annotations

import math

from repro.driftdetect.base import DriftDetector, DriftState
from repro.exceptions import ValidationError
from repro.utils.validation import check_positive, check_positive_int


class DDM(DriftDetector):
    """Drift Detection Method over binary error indicators.

    Parameters
    ----------
    warning_level, drift_level:
        Thresholds in units of ``s_min`` (defaults 2.0 / 3.0).
    minimum_observations:
        Observations required before any verdict other than STABLE
        (the statistic is meaningless for tiny ``t``).
    """

    def __init__(
        self,
        warning_level: float = 2.0,
        drift_level: float = 3.0,
        minimum_observations: int = 30,
    ) -> None:
        super().__init__()
        check_positive(warning_level, "warning_level")
        check_positive(drift_level, "drift_level")
        if drift_level <= warning_level:
            raise ValidationError(
                f"drift_level ({drift_level}) must exceed "
                f"warning_level ({warning_level})"
            )
        self.warning_level = float(warning_level)
        self.drift_level = float(drift_level)
        self.minimum_observations = check_positive_int(
            minimum_observations, "minimum_observations"
        )
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._error_sum = 0.0
        self._p_min = math.inf
        self._s_min = math.inf

    def _detector_state(self) -> dict:
        return {
            "count": self._count,
            "error_sum": self._error_sum,
            "p_min": self._p_min,
            "s_min": self._s_min,
        }

    def _load_detector_state(self, state: dict) -> None:
        self._count = int(state["count"])
        self._error_sum = float(state["error_sum"])
        self._p_min = float(state["p_min"])
        self._s_min = float(state["s_min"])

    def _update(self, error: float) -> DriftState:
        if error not in (0.0, 1.0):
            raise ValidationError(
                f"DDM expects binary error indicators, got {error}"
            )
        self._count += 1
        self._error_sum += error
        if self._count < self.minimum_observations:
            return DriftState.STABLE
        p = self._error_sum / self._count
        s = math.sqrt(max(p * (1.0 - p), 0.0) / self._count)
        if p + s <= self._p_min + self._s_min:
            self._p_min = p
            self._s_min = s
        level = p + s
        if level >= self._p_min + self.drift_level * self._s_min:
            return DriftState.DRIFT
        if level >= self._p_min + self.warning_level * self._s_min:
            return DriftState.WARNING
        return DriftState.STABLE

    @property
    def error_rate(self) -> float:
        """Running error rate since the last reset."""
        if not self._count:
            return 0.0
        return self._error_sum / self._count
