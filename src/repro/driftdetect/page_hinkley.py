"""Page–Hinkley test for upward change in a real-valued signal.

Tracks the cumulative deviation of observations from their running
mean, ``m_t = Σ (x_i − x̄_i − δ)``, and its running minimum ``M_t``;
drift is signalled when ``m_t − M_t > λ``. Suitable for regression
residual magnitudes as well as 0/1 error indicators.
"""

from __future__ import annotations

import math

from repro.driftdetect.base import DriftDetector, DriftState
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)


class PageHinkley(DriftDetector):
    """Page–Hinkley change detector (increase direction).

    Parameters
    ----------
    delta:
        Magnitude tolerance: deviations below ``delta`` never
        accumulate (guards against noise).
    threshold:
        The λ alarm threshold on the accumulated deviation. Larger
        values tolerate more change before alarming.
    minimum_observations:
        Observations required before a verdict other than STABLE.
    """

    def __init__(
        self,
        delta: float = 0.005,
        threshold: float = 1.0,
        minimum_observations: int = 30,
    ) -> None:
        super().__init__()
        self.delta = check_non_negative(delta, "delta")
        self.threshold = check_positive(threshold, "threshold")
        self.minimum_observations = check_positive_int(
            minimum_observations, "minimum_observations"
        )
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = math.inf

    def _detector_state(self) -> dict:
        return {
            "count": self._count,
            "mean": self._mean,
            "cumulative": self._cumulative,
            "minimum": self._minimum,
        }

    def _load_detector_state(self, state: dict) -> None:
        self._count = int(state["count"])
        self._mean = float(state["mean"])
        self._cumulative = float(state["cumulative"])
        self._minimum = float(state["minimum"])

    def _update(self, error: float) -> DriftState:
        self._count += 1
        # Running mean first (standard PH formulation).
        self._mean += (error - self._mean) / self._count
        self._cumulative += error - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._count < self.minimum_observations:
            return DriftState.STABLE
        if self._cumulative - self._minimum > self.threshold:
            return DriftState.DRIFT
        return DriftState.STABLE

    @property
    def statistic(self) -> float:
        """Current test statistic ``m_t − M_t``."""
        if not self._count or math.isinf(self._minimum):
            return 0.0
        return self._cumulative - self._minimum
