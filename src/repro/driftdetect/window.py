"""Two-window mean-comparison drift detector.

A robust baseline: keep a *reference* window (errors right after the
last reset) and a *recent* sliding window; signal drift when the
recent mean exceeds the reference mean by a relative margin. No
distributional assumptions — works for rates and residuals alike.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.driftdetect.base import DriftDetector, DriftState
from repro.utils.validation import check_positive, check_positive_int


class WindowComparisonDetector(DriftDetector):
    """Signal drift when recent errors exceed the reference level.

    Parameters
    ----------
    window_size:
        Length of both the reference and the recent window.
    ratio:
        Relative degradation that triggers drift: with 0.2, a recent
        mean 20% above the reference mean fires.
    warning_ratio:
        Optional lower bound for a WARNING verdict; defaults to half
        the drift ratio.
    """

    def __init__(
        self,
        window_size: int = 50,
        ratio: float = 0.2,
        warning_ratio: float | None = None,
    ) -> None:
        super().__init__()
        self.window_size = check_positive_int(window_size, "window_size")
        self.ratio = check_positive(ratio, "ratio")
        if warning_ratio is None:
            warning_ratio = ratio / 2.0
        self.warning_ratio = check_positive(
            warning_ratio, "warning_ratio"
        )
        self.reset()

    def reset(self) -> None:
        self._reference: list = []
        self._recent: deque = deque(maxlen=self.window_size)

    def _detector_state(self) -> dict:
        return {
            "reference": list(self._reference),
            "recent": list(self._recent),
        }

    def _load_detector_state(self, state: dict) -> None:
        self._reference = list(state["reference"])
        self._recent = deque(state["recent"], maxlen=self.window_size)

    def _update(self, error: float) -> DriftState:
        if len(self._reference) < self.window_size:
            self._reference.append(error)
            return DriftState.STABLE
        self._recent.append(error)
        if len(self._recent) < self.window_size:
            return DriftState.STABLE
        reference_mean = float(np.mean(self._reference))
        recent_mean = float(np.mean(self._recent))
        # A zero-error reference only drifts on any positive error.
        floor = max(reference_mean, 1e-12)
        degradation = (recent_mean - reference_mean) / floor
        if degradation > self.ratio:
            return DriftState.DRIFT
        if degradation < -self.warning_ratio:
            # Quality improved markedly: adopt the recent window as
            # the new reference, so later degradations are judged
            # against the best level seen, not a stale worse one.
            self._reference = list(self._recent)
            self._recent.clear()
            return DriftState.STABLE
        if degradation > self.warning_ratio:
            return DriftState.WARNING
        return DriftState.STABLE

    @property
    def reference_mean(self) -> float:
        """Mean of the reference window (0 while still filling)."""
        if not self._reference:
            return 0.0
        return float(np.mean(self._reference))
