"""Drift-detector contract."""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable


class DriftState(enum.Enum):
    """Detector verdict after an observation.

    ``STABLE`` — no evidence of change; ``WARNING`` — accumulating
    evidence (detectors without a warning zone never emit it);
    ``DRIFT`` — change detected (detectors reset themselves after
    signalling it).
    """

    STABLE = "stable"
    WARNING = "warning"
    DRIFT = "drift"


class DriftDetector(ABC):
    """Streaming detector over a per-observation error signal.

    Observations are fed one at a time (or in batches via
    :meth:`update_many`); the return value is the verdict *after*
    folding the observation in. Detectors are self-resetting: after
    returning :attr:`DriftState.DRIFT` they restart from a clean
    state, so a long degradation yields repeated, separated alarms
    rather than one permanent one.
    """

    def __init__(self) -> None:
        #: Total observations consumed (across resets).
        self.observations = 0
        #: Number of drifts signalled so far.
        self.drifts_detected = 0

    @abstractmethod
    def _update(self, error: float) -> DriftState:
        """Fold one observation; return the verdict."""

    @abstractmethod
    def reset(self) -> None:
        """Restart detection from a clean state (counters persist)."""

    def update(self, error: float) -> DriftState:
        """Feed one error observation and return the verdict."""
        self.observations += 1
        state = self._update(float(error))
        if state is DriftState.DRIFT:
            self.drifts_detected += 1
            self.reset()
        return state

    def state_dict(self) -> Dict[str, Any]:
        """Mutable detection state (configuration is *not* included).

        Covers the lifetime counters plus whatever the concrete
        detector accumulates between resets, so a restored detector
        continues the observation stream with identical verdicts.
        """
        return {
            "observations": self.observations,
            "drifts_detected": self.drifts_detected,
            "detector": self._detector_state(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.observations = int(state["observations"])
        self.drifts_detected = int(state["drifts_detected"])
        self._load_detector_state(state["detector"])

    def _detector_state(self) -> Dict[str, Any]:
        """Concrete detector's between-reset accumulators."""
        return {}

    def _load_detector_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`_detector_state` output."""

    def update_many(self, errors: Iterable[float]) -> DriftState:
        """Feed a batch; returns the most severe verdict observed."""
        worst = DriftState.STABLE
        for error in errors:
            state = self.update(error)
            if state is DriftState.DRIFT:
                worst = state
            elif (
                state is DriftState.WARNING
                and worst is DriftState.STABLE
            ):
                worst = state
        return worst

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(observations={self.observations}, "
            f"drifts={self.drifts_detected})"
        )
