"""Concept-drift detection (the paper's §7 future work, implemented).

The paper's platform handles drift implicitly (recency-weighted
sampling keeps proactive training on fresh data) and names *native*
drift detection as future work. This package provides classic
streaming detectors over the prequential error signal:

* :class:`DDM` — Gama et al.'s Drift Detection Method on Bernoulli
  error indicators (classification).
* :class:`PageHinkley` — Page–Hinkley test on any real-valued error
  signal (classification or regression residuals).
* :class:`WindowComparisonDetector` — recent-vs-reference window mean
  comparison, a simple and robust baseline.

:class:`DriftAwareContinuousDeployment` plugs a detector into the
continuous deployment: a detected drift triggers an immediate
proactive-training burst, on top of the regular schedule.
"""

from repro.driftdetect.base import DriftDetector, DriftState
from repro.driftdetect.ddm import DDM
from repro.driftdetect.deployment import DriftAwareContinuousDeployment
from repro.driftdetect.page_hinkley import PageHinkley
from repro.driftdetect.window import WindowComparisonDetector

__all__ = [
    "DriftState",
    "DriftDetector",
    "DDM",
    "PageHinkley",
    "WindowComparisonDetector",
    "DriftAwareContinuousDeployment",
]
