"""Drift-aware continuous deployment.

Extends :class:`~repro.core.deployment.ContinuousDeployment` with
native drift detection (the paper's §7 future work): per-row
prequential errors feed a :class:`~repro.driftdetect.base.DriftDetector`,
and a detected drift triggers an *immediate* proactive-training burst
in addition to the regular schedule — the platform reacts to the
change instead of waiting for the next scheduled training.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import ContinuousConfig
from repro.core.deployment.base import DeploymentResult
from repro.core.deployment.continuous import ContinuousDeployment
from repro.data.sampling import WindowBasedSampler
from repro.driftdetect.base import DriftDetector, DriftState
from repro.execution.cost import CostModel
from repro.ml.models.base import LinearSGDModel
from repro.ml.optim.base import Optimizer
from repro.obs import names
from repro.obs.telemetry import Telemetry
from repro.pipeline.pipeline import Pipeline
from repro.utils.rng import SeedLike


class DriftAwareContinuousDeployment(ContinuousDeployment):
    """Continuous deployment that reacts to detected concept drift.

    Parameters
    ----------
    detector:
        The drift detector fed with per-row prequential errors
        (0/1 misclassification indicators for classification, squared
        residuals for regression).
    bursts_per_drift:
        Number of extra proactive trainings fired per detected drift.
    burst_window:
        During a burst the sampler is temporarily replaced by a
        window sampler over the newest ``burst_window`` chunks —
        after a drift the useful signal lives in the freshest data,
        and the regular (wider) sampler would mostly replay the old
        concept.
    burst_delay_chunks:
        Chunks to wait between detection and the burst. Detectors
        typically fire on the *first* drifted chunk, when the chunk
        pool barely contains post-drift data yet; a short delay lets
        fresh chunks accumulate so the burst trains on the new
        concept.
    """

    approach = "continuous+drift"

    def __init__(
        self,
        pipeline: Pipeline,
        model: LinearSGDModel,
        optimizer: Optimizer,
        detector: DriftDetector,
        config: Optional[ContinuousConfig] = None,
        bursts_per_drift: int = 1,
        burst_window: int = 5,
        burst_delay_chunks: int = 4,
        metric: str = "classification",
        cost_model: Optional[CostModel] = None,
        seed: SeedLike = None,
        telemetry: Optional[Telemetry] = None,
        checkpoint=None,
        fault_plan=None,
        retry=None,
    ) -> None:
        super().__init__(
            pipeline,
            model,
            optimizer,
            config=config,
            metric=metric,
            cost_model=cost_model,
            seed=seed,
            telemetry=telemetry,
            checkpoint=checkpoint,
            fault_plan=fault_plan,
            retry=retry,
        )
        if bursts_per_drift < 1:
            raise ValueError(
                f"bursts_per_drift must be >= 1, got {bursts_per_drift}"
            )
        if burst_window < 1:
            raise ValueError(
                f"burst_window must be >= 1, got {burst_window}"
            )
        if burst_delay_chunks < 0:
            raise ValueError(
                f"burst_delay_chunks must be >= 0, "
                f"got {burst_delay_chunks}"
            )
        self.detector = detector
        self.bursts_per_drift = int(bursts_per_drift)
        self.burst_window = int(burst_window)
        self.burst_delay_chunks = int(burst_delay_chunks)
        #: Chunk indices at which the detector signalled drift.
        self.drift_chunks: List[int] = []
        self._burst_countdown: Optional[int] = None
        self._chunk_index = -1

    # ------------------------------------------------------------------
    def _predict(self, table) -> Tuple[np.ndarray, np.ndarray]:
        predictions, labels = super()._predict(table)
        if len(labels):
            state = self.detector.update_many(
                self._row_errors(predictions, labels)
            )
            if state is not DriftState.STABLE and self.telemetry.enabled:
                self._record_drift_telemetry(state)
            if (
                state is DriftState.DRIFT
                and self._burst_countdown is None
            ):
                self.drift_chunks.append(self._chunk_index + 1)
                self._burst_countdown = self.burst_delay_chunks
        return predictions, labels

    def _record_drift_telemetry(self, state: DriftState) -> None:
        """Emit a ``drift.signal`` / ``drift.warning`` point event."""
        if state is DriftState.DRIFT:
            event, counter = names.DRIFT_SIGNAL, names.DRIFT_SIGNALS
        else:
            event, counter = names.DRIFT_WARNING, names.DRIFT_WARNINGS
        self.telemetry.tracer.point(
            event, chunk=self._chunk_index + 1, state=state.name
        )
        self.telemetry.metrics.counter(counter).inc()

    def _observe(self, table, chunk_index: int) -> None:
        self._chunk_index = chunk_index
        super()._observe(table, chunk_index)
        if self._burst_countdown is not None:
            if self._burst_countdown == 0:
                self._burst_countdown = None
                self._run_burst()
            else:
                self._burst_countdown -= 1

    def _run_burst(self) -> None:
        """Fire the drift response: proactive trainings on fresh data.

        The data manager's sampler is swapped for a tight window over
        the newest chunks for the duration of the burst, then
        restored — the chunk that revealed the drift is already in
        the pool, so every burst iteration trains on post-drift data.
        """
        data_manager = self.platform.data_manager
        regular_sampler = data_manager.sampler
        data_manager.sampler = WindowBasedSampler(self.burst_window)
        try:
            for __ in range(self.bursts_per_drift):
                self.platform._run_proactive_training()
        finally:
            data_manager.sampler = regular_sampler

    def _row_errors(
        self, predictions: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        if self.metric == "classification":
            return (predictions != labels).astype(np.float64)
        residual = predictions - labels
        return residual * residual

    def _finalize(self, result: DeploymentResult) -> None:
        super()._finalize(result)
        result.counters["drifts_detected"] = len(self.drift_chunks)

    # ------------------------------------------------------------------
    # Checkpoint/recovery hooks
    # ------------------------------------------------------------------
    def _checkpoint_state(self):
        state = super()._checkpoint_state()
        state["drift"] = {
            "detector": self.detector.state_dict(),
            "drift_chunks": list(self.drift_chunks),
            "burst_countdown": self._burst_countdown,
            "chunk_index": self._chunk_index,
        }
        return state

    def _restore_state(self, state) -> None:
        super()._restore_state(state)
        drift = state["drift"]
        self.detector.load_state_dict(drift["detector"])
        self.drift_chunks = list(drift["drift_chunks"])
        self._burst_countdown = drift["burst_countdown"]
        self._chunk_index = int(drift["chunk_index"])
