"""Open-loop traffic generation, micro-batched serving, admission.

The paper's serving story (§4.5) assumes a deployed pipeline answers
a stream of prediction queries while training continues in the
background. This package makes that load explicit and simulable on
the virtual clock:

* :mod:`repro.traffic.generator` — a deterministic open-loop
  generator: heavy-tailed inter-arrivals, diurnal rate curves, burst
  episodes, and Zipf-popular synthetic users (millions of them in
  O(1) memory) whose requests sample rows from a replay pool.
* :mod:`repro.traffic.admission` — a bounded admission queue with a
  deterministic shed policy.
* :mod:`repro.traffic.batcher` — the micro-batching flush policy
  (max batch size / max wait) in front of the serving endpoint.
* :mod:`repro.traffic.simulate` — a discrete-event simulator wiring
  the above to a :class:`~repro.serving.endpoint.ServingEndpoint`
  with queue-delay/service-time accounting in virtual cost units.
* :mod:`repro.traffic.slo` — SLO percentile tracking and the alert
  rules that feed the health monitor.

Everything is seeded through :mod:`repro.utils.rng` and timed on the
virtual clock, so arrival streams, shed decisions, and latency
percentiles are byte-reproducible across runs.
"""

from repro.traffic.admission import AdmissionQueue, Request
from repro.traffic.batcher import Flush, MicroBatcher
from repro.traffic.generator import (
    Arrivals,
    BurstEpisode,
    OpenLoopGenerator,
    TrafficPattern,
)
from repro.traffic.simulate import (
    SimulationConfig,
    TrafficSimulator,
    VirtualClock,
)
from repro.traffic.slo import (
    SloTracker,
    TrafficReport,
    monitor_rules_for_traffic,
    traffic_rules,
)

__all__ = [
    "AdmissionQueue",
    "Arrivals",
    "BurstEpisode",
    "Flush",
    "MicroBatcher",
    "OpenLoopGenerator",
    "Request",
    "SimulationConfig",
    "SloTracker",
    "TrafficPattern",
    "TrafficReport",
    "TrafficSimulator",
    "VirtualClock",
    "monitor_rules_for_traffic",
    "traffic_rules",
]
