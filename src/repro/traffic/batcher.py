"""Micro-batching flush policy: max batch size, max wait.

The batcher sits between the admission queue and the endpoint and
answers one question: *given the clock, should a batch depart now,
and why?* Two knobs trade latency for throughput:

* ``max_batch_size`` — a full batch departs immediately (reason
  ``"full"``), amortizing transform and kernel dispatch over the
  stacked rows;
* ``max_wait`` — a partial batch departs once its oldest request has
  waited ``max_wait`` cost units (reason ``"wait"``), bounding the
  queueing latency a lonely request can suffer.

The simulator additionally drains leftovers at end of stream
(reason ``"drain"``). The policy is pure — it never touches the
clock — so flush decisions are byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import ValidationError
from repro.traffic.admission import AdmissionQueue, Request

#: Why a batch departed.
FLUSH_REASONS = ("full", "wait", "drain")


@dataclass(frozen=True)
class Flush:
    """One departing micro-batch."""

    requests: Tuple[Request, ...]
    reason: str

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def num_rows(self) -> int:
        return sum(r.num_rows for r in self.requests)


class MicroBatcher:
    """Flush policy over an :class:`AdmissionQueue`."""

    def __init__(
        self,
        queue: AdmissionQueue,
        max_batch_size: int,
        max_wait: float,
    ) -> None:
        if max_batch_size < 1:
            raise ValidationError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_wait < 0:
            raise ValidationError(
                f"max_wait must be >= 0, got {max_wait}"
            )
        self.queue = queue
        self.max_batch_size = int(max_batch_size)
        self.max_wait = float(max_wait)

    def flush_reason(
        self, now: float, drain: bool = False
    ) -> Optional[str]:
        """Why a batch should depart at ``now`` (``None``: keep waiting).

        ``"full"`` wins over ``"wait"`` when both hold — the batch
        that departs is identical either way, and a full queue is the
        stronger signal.
        """
        if len(self.queue) == 0:
            return None
        if len(self.queue) >= self.max_batch_size:
            return "full"
        oldest = self.queue.oldest_arrival
        assert oldest is not None
        # ``oldest + max_wait``, not ``now - oldest >= max_wait``: the
        # simulator schedules the deadline event at exactly
        # ``arrival + max_wait``, and the same float expression here
        # guarantees the flush triggers at its own deadline (the
        # subtracted form can round below ``max_wait``).
        if now >= oldest + self.max_wait:
            return "wait"
        if drain:
            return "drain"
        return None

    def next_deadline(self) -> Optional[float]:
        """Virtual time the oldest request's wait budget expires.

        The same ``oldest + max_wait`` float expression as
        :meth:`flush_reason`, so scheduling an event at this time
        guarantees the flush fires when it is processed.
        """
        oldest = self.queue.oldest_arrival
        if oldest is None:
            return None
        return oldest + self.max_wait

    def poll(self, now: float, drain: bool = False) -> Optional[Flush]:
        """Take the departing batch, if the policy says one departs."""
        reason = self.flush_reason(now, drain=drain)
        if reason is None:
            return None
        requests = tuple(self.queue.take(self.max_batch_size))
        return Flush(requests=requests, reason=reason)
