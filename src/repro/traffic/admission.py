"""Bounded admission queue with a deterministic shed policy.

The serving front end cannot queue unboundedly during a burst —
latency would grow without limit and every request would eventually
miss its SLO. The :class:`AdmissionQueue` caps the backlog and sheds
deterministically when full: the request ordered *last* by
``(arrival_time, request_id)`` loses. Under live traffic (monotone
arrival times, monotone ids) that is plain tail drop of the arriving
request; the explicit ordering matters for replays, where a
re-ordered offer must shed exactly the same request the live run
shed — ties on arrival time break toward the smaller request id.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class Request:
    """One prediction request offered to the front end."""

    request_id: int
    arrival_time: float
    user: int
    #: Row indices into the replay pool this request asks about.
    rows: np.ndarray = field(repr=False)

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def order_key(self) -> Tuple[float, int]:
        """Total order used for queueing and shed decisions."""
        return (self.arrival_time, self.request_id)


class AdmissionQueue:
    """FIFO queue bounded at ``capacity`` requests.

    ``offer`` returns the shed request (``None`` when everything
    fits): either the arriving request (the common tail-drop case) or
    a queued one that the arriving request displaces because it is
    ordered later. ``take`` pops up to ``limit`` requests in
    ``(arrival_time, request_id)`` order.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValidationError(
                f"queue capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._queue: List[Request] = []
        self._keys: List[Tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def oldest_arrival(self) -> Optional[float]:
        """Arrival time of the head request (``None`` when empty)."""
        return self._queue[0].arrival_time if self._queue else None

    def offer(self, request: Request) -> Optional[Request]:
        """Enqueue ``request``; returns the shed request, if any."""
        key = request.order_key
        if len(self._queue) >= self.capacity:
            if key >= self._keys[-1]:
                return request
            shed = self._queue.pop()
            self._keys.pop()
            self._insert(request, key)
            return shed
        self._insert(request, key)
        return None

    def _insert(self, request: Request, key: Tuple[float, int]) -> None:
        at = bisect.bisect(self._keys, key)
        self._queue.insert(at, request)
        self._keys.insert(at, key)

    def take(self, limit: int) -> List[Request]:
        """Dequeue up to ``limit`` requests, oldest first."""
        if limit < 1:
            raise ValidationError(f"take limit must be >= 1, got {limit}")
        taken = self._queue[:limit]
        del self._queue[:limit]
        del self._keys[:limit]
        return taken
