"""Deterministic open-loop load generation on the virtual clock.

Open-loop means arrivals do not react to the server: the stream is a
pure function of the traffic pattern and the seed, so overload shows
up as queueing and shedding instead of silently throttling the
offered load. Three ingredients shape the stream:

* **Heavy-tailed inter-arrivals.** Gaps are Lomax (shifted Pareto)
  with unit mean, scaled by the instantaneous rate — bursty like real
  request traffic, unlike the memoryless exponential.
* **Rate curves.** A diurnal sine modulation plus explicit
  :class:`BurstEpisode` windows that multiply the base rate — the
  traffic spikes Experiment 7 throws at a rollout.
* **Synthetic users.** Each request belongs to a Zipf-popular user id
  in ``[0, num_users)`` and samples its rows from a replay pool by
  hashing ``(user, position)`` with SplitMix64. No per-user state is
  kept, so "millions of users" costs the same memory as ten.

Everything draws from one :mod:`repro.utils.rng` generator in a fixed
order, so two same-seed generators produce byte-identical
:class:`Arrivals` (asserted via :meth:`Arrivals.digest`).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.serving.routing import splitmix64
from repro.utils.rng import SeedLike, ensure_rng

#: Multiplier decorrelating a user's row draws from its raw id.
_USER_MIX = 0x9E3779B97F4A7C15


@dataclass(frozen=True)
class BurstEpisode:
    """One rate-multiplier window: ``[start, start + duration)``."""

    start: float
    duration: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValidationError(
                f"burst duration must be > 0, got {self.duration}"
            )
        if self.multiplier <= 0:
            raise ValidationError(
                f"burst multiplier must be > 0, got {self.multiplier}"
            )

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.start + self.duration


@dataclass(frozen=True)
class TrafficPattern:
    """The deterministic rate curve ``rate_at(t)`` is built from.

    ``base_rate`` is mean arrivals per virtual cost unit. The diurnal
    term modulates it by ``1 + amplitude * sin(2πt / period)``; burst
    episodes multiply on top.
    """

    base_rate: float = 10.0
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 0.0
    bursts: Tuple[BurstEpisode, ...] = ()

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValidationError(
                f"base_rate must be > 0, got {self.base_rate}"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValidationError(
                "diurnal_amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude}"
            )
        if self.diurnal_amplitude > 0 and self.diurnal_period <= 0:
            raise ValidationError(
                "diurnal modulation needs diurnal_period > 0"
            )

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at virtual time ``t``."""
        rate = self.base_rate
        if self.diurnal_amplitude > 0:
            rate *= 1.0 + self.diurnal_amplitude * math.sin(
                2.0 * math.pi * t / self.diurnal_period
            )
        for burst in self.bursts:
            if burst.active_at(t):
                rate *= burst.multiplier
        return rate


@dataclass(frozen=True)
class Arrivals:
    """A generated arrival stream, struct-of-arrays.

    Request ``i`` arrives at ``times[i]`` from user ``users[i]`` and
    carries the pool rows
    ``row_indices[row_offsets[i]:row_offsets[i + 1]]``.
    """

    times: np.ndarray
    users: np.ndarray
    row_offsets: np.ndarray
    row_indices: np.ndarray

    @property
    def num_requests(self) -> int:
        return len(self.times)

    @property
    def num_rows(self) -> int:
        return len(self.row_indices)

    def request_rows(self, i: int) -> np.ndarray:
        """Pool row indices of request ``i``."""
        return self.row_indices[
            int(self.row_offsets[i]):int(self.row_offsets[i + 1])
        ]

    def digest(self) -> str:
        """SHA-256 over the raw arrays — the byte-identity witness."""
        h = hashlib.sha256()
        for array in (
            self.times,
            self.users,
            self.row_offsets,
            self.row_indices,
        ):
            h.update(np.ascontiguousarray(array).tobytes())
        return h.hexdigest()


class OpenLoopGenerator:
    """Seeded open-loop arrival generator.

    Parameters
    ----------
    pattern:
        The rate curve.
    num_users:
        Size of the synthetic user population (Zipf-popular ids).
    pool_rows:
        Number of rows in the replay pool requests sample from.
    rows_per_request:
        Inclusive ``(lo, hi)`` bounds on rows per request.
    tail_index:
        Lomax shape of the inter-arrival gaps; smaller is burstier.
        Must be > 1 so the mean gap exists.
    zipf_exponent:
        User popularity skew; must be > 1.
    seed:
        Seeds every draw (via :mod:`repro.utils.rng`).
    """

    def __init__(
        self,
        pattern: TrafficPattern,
        num_users: int,
        pool_rows: int,
        rows_per_request: Tuple[int, int] = (1, 4),
        tail_index: float = 2.5,
        zipf_exponent: float = 1.4,
        seed: SeedLike = None,
    ) -> None:
        if num_users < 1:
            raise ValidationError(
                f"num_users must be >= 1, got {num_users}"
            )
        if pool_rows < 1:
            raise ValidationError(
                f"pool_rows must be >= 1, got {pool_rows}"
            )
        lo, hi = rows_per_request
        if not 1 <= lo <= hi:
            raise ValidationError(
                "rows_per_request must satisfy 1 <= lo <= hi, got "
                f"{rows_per_request}"
            )
        if tail_index <= 1.0:
            raise ValidationError(
                f"tail_index must be > 1 (finite mean), got {tail_index}"
            )
        if zipf_exponent <= 1.0:
            raise ValidationError(
                f"zipf_exponent must be > 1, got {zipf_exponent}"
            )
        self.pattern = pattern
        self.num_users = int(num_users)
        self.pool_rows = int(pool_rows)
        self.rows_per_request = (int(lo), int(hi))
        self.tail_index = float(tail_index)
        self.zipf_exponent = float(zipf_exponent)
        self._rng = ensure_rng(seed)
        # Drawn first, before any arrival randomness, so the draw
        # order (and hence byte-identity) is fixed by construction.
        self._row_salt = int(
            self._rng.integers(0, 2**63 - 1, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    def generate(self, horizon: float) -> Arrivals:
        """All arrivals in ``[0, horizon)`` of virtual time.

        One call consumes generator state; call ``generate`` on a
        fresh same-seed instance to reproduce a stream, not twice on
        the same instance.
        """
        if horizon <= 0:
            raise ValidationError(
                f"horizon must be > 0, got {horizon}"
            )
        shape = self.tail_index
        times: List[float] = []
        t = 0.0
        while True:
            # Lomax gap with unit mean, scaled by the local rate. The
            # rate is sampled at the previous arrival instant — fine
            # for curves that vary slowly relative to the mean gap.
            gap = float(self._rng.pareto(shape)) * (shape - 1.0)
            t += gap / self.pattern.rate_at(t)
            if t >= horizon:
                break
            times.append(t)
        n = len(times)
        if n == 0:
            empty_i64 = np.empty(0, dtype=np.int64)
            return Arrivals(
                times=np.empty(0, dtype=np.float64),
                users=empty_i64,
                row_offsets=np.zeros(1, dtype=np.int64),
                row_indices=empty_i64,
            )
        users = (
            self._rng.zipf(self.zipf_exponent, size=n) - 1
        ) % self.num_users
        users = users.astype(np.int64)
        lo, hi = self.rows_per_request
        if lo == hi:
            counts = np.full(n, lo, dtype=np.int64)
        else:
            counts = self._rng.integers(
                lo, hi + 1, size=n, dtype=np.int64
            )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        # Per-user row sampling without per-user state: hash the
        # (user, global position) pair so one user's requests revisit
        # a reproducible scatter of pool rows.
        positions = np.arange(int(offsets[-1]), dtype=np.uint64)
        user_rep = np.repeat(users, counts).astype(np.uint64)
        with np.errstate(over="ignore"):
            mixed = user_rep * np.uint64(_USER_MIX) + positions
        row_indices = (
            splitmix64(mixed, salt=self._row_salt)
            % np.uint64(self.pool_rows)
        ).astype(np.int64)
        return Arrivals(
            times=np.asarray(times, dtype=np.float64),
            users=users,
            row_offsets=offsets,
            row_indices=row_indices,
        )
