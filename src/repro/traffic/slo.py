"""SLO accounting for simulated serving traffic.

Latency here is virtual: cost units on the deterministic clock, so
percentiles are byte-reproducible across runs. :class:`SloTracker`
folds per-request latency (arrival → completion), queue delay
(arrival → dispatch), and per-batch service time into
:class:`~repro.obs.metrics.StreamingHistogram` sketches and produces
a :class:`TrafficReport`.

:func:`traffic_rules` declares the alert rules the health monitor
evaluates over the live telemetry the simulator emits — a p99 latency
budget on ``slo.latency.cost`` and a shed spike on ``traffic.shed``
occurrences — so an overloaded rollout raises (and, once the burst
passes, resolves) incidents in the exported ``health.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.obs import names
from repro.obs.metrics import StreamingHistogram
from repro.obs.rules import AlertRule


@dataclass(frozen=True)
class TrafficReport:
    """One simulation's SLO summary (all times in cost units)."""

    arrivals: int
    admitted: int
    shed: int
    completed: int
    rows: int
    batches: int
    flush_full: int
    flush_wait: int
    duration: float
    latency: Dict[str, float]
    queue_delay: Dict[str, float]
    service_time: Dict[str, float]

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests dropped at admission."""
        return self.shed / self.arrivals if self.arrivals else 0.0

    @property
    def throughput(self) -> float:
        """Completed requests per cost unit."""
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "rows": self.rows,
            "batches": self.batches,
            "flush_full": self.flush_full,
            "flush_wait": self.flush_wait,
            "duration": self.duration,
            "shed_rate": self.shed_rate,
            "throughput": self.throughput,
            "mean_batch_size": self.mean_batch_size,
            "latency": dict(self.latency),
            "queue_delay": dict(self.queue_delay),
            "service_time": dict(self.service_time),
        }

    def summary_lines(self) -> List[str]:
        """Human-readable digest for CLI output."""
        return [
            f"arrivals={self.arrivals} admitted={self.admitted} "
            f"shed={self.shed} ({self.shed_rate:.1%}) "
            f"completed={self.completed}",
            f"batches={self.batches} (full={self.flush_full} "
            f"wait={self.flush_wait}) "
            f"mean_size={self.mean_batch_size:.2f} "
            f"throughput={self.throughput:.2f} req/cost",
            "latency p50/p95/p99 = "
            f"{self.latency['p50']:.4f}/{self.latency['p95']:.4f}/"
            f"{self.latency['p99']:.4f} cost "
            f"(queue p99 {self.queue_delay['p99']:.4f})",
        ]


class SloTracker:
    """Streaming percentile sketches over the simulated traffic."""

    def __init__(self) -> None:
        self.latency = StreamingHistogram(names.SLO_LATENCY)
        self.queue_delay = StreamingHistogram(names.SLO_QUEUE_DELAY)
        self.service_time = StreamingHistogram(names.SLO_SERVICE_TIME)
        self.arrivals = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.rows = 0
        self.batches = 0
        self.flush_full = 0
        self.flush_wait = 0

    def on_arrival(self) -> None:
        self.arrivals += 1

    def on_admit(self) -> None:
        self.admitted += 1

    def on_shed(self) -> None:
        self.shed += 1

    def on_batch(self, size: int, rows: int, reason: str, service: float) -> None:
        self.batches += 1
        self.rows += rows
        if reason == "full":
            self.flush_full += 1
        elif reason == "wait":
            self.flush_wait += 1
        self.service_time.add(service)
        self.completed += size

    def on_completion(self, latency: float, queue_delay: float) -> None:
        self.latency.add(latency)
        self.queue_delay.add(queue_delay)

    def report(self, duration: float) -> TrafficReport:
        return TrafficReport(
            arrivals=self.arrivals,
            admitted=self.admitted,
            shed=self.shed,
            completed=self.completed,
            rows=self.rows,
            batches=self.batches,
            flush_full=self.flush_full,
            flush_wait=self.flush_wait,
            duration=float(duration),
            latency=self.latency.percentiles(),
            queue_delay=self.queue_delay.percentiles(),
            service_time=self.service_time.percentiles(),
        )


def monitor_rules_for_traffic(
    p99_budget: float = 1.0,
    shed_per_window: float = 1.0,
) -> List[AlertRule]:
    """The stock rule set adapted for micro-batched serving.

    Under micro-batching, per-batch serving cost swings with batch
    size by design, so the stock ``serving-latency-shift`` CUSUM
    flaps on every load change; the explicit per-request p99
    threshold supersedes it. Everything else from
    :func:`repro.obs.monitor.default_rules` stays.
    """
    from repro.obs.monitor import default_rules

    kept = [
        rule
        for rule in default_rules()
        if rule.name != "serving-latency-shift"
    ]
    return kept + traffic_rules(
        p99_budget=p99_budget, shed_per_window=shed_per_window
    )


def traffic_rules(
    p99_budget: float = 1.0,
    shed_per_window: float = 1.0,
    window: int = 3,
) -> List[AlertRule]:
    """Alert rules the serving SLO surface feeds the health monitor.

    ``p99_budget`` is the end-to-end latency objective in cost units,
    evaluated as the p99 of the ``slo.latency`` point's ``cost``
    attribute over ``window`` closed windows. ``shed_per_window``
    bounds admissible drops per monitor window before the shed-spike
    alert fires.
    """
    return [
        AlertRule(
            name="slo_p99_latency",
            signal=f"{names.SLO_LATENCY}.cost",
            kind="threshold",
            stat="p99",
            op=">",
            value=p99_budget,
            window=window,
            for_windows=2,
            clear_windows=2,
            severity="critical",
            category="slo",
            description=(
                "p99 serving latency (queue + service, cost units) "
                "exceeds the SLO budget"
            ),
        ),
        AlertRule(
            name="traffic_shed_spike",
            signal=names.TRAFFIC_SHED,
            kind="threshold",
            stat="count",
            op=">",
            value=shed_per_window,
            window=1,
            for_windows=1,
            clear_windows=2,
            severity="warning",
            category="traffic",
            description=(
                "admission control is dropping requests faster than "
                "the configured budget"
            ),
        ),
    ]
