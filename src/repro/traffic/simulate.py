"""Discrete-event simulation of micro-batched serving under load.

The simulator wires the open-loop arrival stream, the bounded
admission queue, the micro-batcher, and a
:class:`~repro.serving.endpoint.ServingEndpoint` into one event loop
on the virtual clock. Time is cost units: a batch's service time is
exactly the engine cost its transforms and predictions charge, so
latency percentiles and alert timelines are byte-reproducible.

Three event kinds drive the loop, with a fixed tie order at equal
timestamps (completion < arrival < deadline, then insertion order):

* **arrival** — offer the request to the admission queue; shed it if
  the queue is full, else schedule its max-wait deadline;
* **deadline** — the oldest queued request's wait budget expired;
  flush a partial batch if a server is free;
* **completion** — a batch finished; free its server, record
  per-request latency, dispatch the next batch if one is ready.

Telemetry: the simulator binds the shared virtual clock to the
telemetry bundle (displacing the engine's own cost clock, which the
simulation clock is a superset of) and emits ``traffic.*`` /
``batch.*`` / ``slo.*`` counters, histograms, and points — the
surface :func:`repro.traffic.slo.traffic_rules` watches.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.data.table import Table
from repro.exceptions import ValidationError
from repro.obs import names
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.serving.endpoint import ServingEndpoint
from repro.traffic.admission import AdmissionQueue, Request
from repro.traffic.batcher import MicroBatcher
from repro.traffic.generator import Arrivals
from repro.traffic.slo import SloTracker, TrafficReport

#: Event-kind priorities at equal timestamps.
_COMPLETION, _ARRIVAL, _DEADLINE = 0, 1, 2


class VirtualClock:
    """A monotone simulation clock, callable for telemetry binding."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, t: float) -> None:
        if t > self.now:
            self.now = t


@dataclass(frozen=True)
class SimulationConfig:
    """Front-end knobs (all times/budgets in virtual cost units)."""

    max_batch_size: int = 8
    max_wait: float = 0.05
    queue_capacity: int = 32
    concurrency: int = 1

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValidationError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )


@dataclass(frozen=True)
class SimulationResult:
    """One simulated run: SLO report plus bit-identity witnesses."""

    report: TrafficReport
    #: Flattened primary-side predictions in dispatch order.
    primary_stream: np.ndarray
    #: Flattened candidate-side predictions in dispatch order.
    candidate_stream: np.ndarray
    #: Request ids in dispatch order (one entry per request).
    dispatch_order: Tuple[int, ...]
    #: Request ids shed at admission, in shed order.
    shed_ids: Tuple[int, ...]

    def digest(self) -> str:
        """SHA-256 over streams and orderings — the replay witness."""
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(self.primary_stream).tobytes())
        h.update(np.ascontiguousarray(self.candidate_stream).tobytes())
        h.update(np.asarray(self.dispatch_order, dtype=np.int64).tobytes())
        h.update(np.asarray(self.shed_ids, dtype=np.int64).tobytes())
        return h.hexdigest()


@dataclass
class _InFlight:
    requests: Tuple[Request, ...]
    dispatch_time: float


class TrafficSimulator:
    """Runs one arrival stream against a serving endpoint.

    Parameters
    ----------
    endpoint:
        The (possibly canary/shadow staged) endpoint to drive.
    pool:
        Replay pool; requests sample its rows by index.
    config:
        Front-end knobs.
    telemetry:
        Optional observability bundle. When enabled, the simulator
        rebinds its clock so every span, point, and monitor window
        closes on simulated time, not raw engine cost.
    clock:
        Optional shared clock, letting several simulation phases (and
        interleaved training) advance one monotone timeline.
    """

    def __init__(
        self,
        endpoint: ServingEndpoint,
        pool: Table,
        config: Optional[SimulationConfig] = None,
        telemetry: Optional[Telemetry] = None,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.endpoint = endpoint
        self.pool = pool
        self.config = config if config is not None else SimulationConfig()
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.clock = clock if clock is not None else VirtualClock()
        #: The most recent run's tracker (fresh per :meth:`run`).
        self.slo = SloTracker()
        self._seen_users: set = set()
        if self.telemetry.enabled:
            self.telemetry.bind_clock(self.clock)

    # ------------------------------------------------------------------
    def run(self, arrivals: Arrivals) -> SimulationResult:
        """Simulate the whole arrival stream to completion."""
        if self.telemetry.enabled:
            # Rebind: constructing an endpoint binds its engine's cost
            # clock; simulation owns the timeline while it runs.
            self.telemetry.bind_clock(self.clock)
        queue = AdmissionQueue(self.config.queue_capacity)
        batcher = MicroBatcher(
            queue, self.config.max_batch_size, self.config.max_wait
        )
        # Fresh accounting per run: a simulator reused across phases
        # reports each phase's SLO surface, not a running total.
        self.slo = SloTracker()
        start = self.clock.now
        busy = 0
        seq = 0
        heap: List[tuple] = []
        for i in range(arrivals.num_requests):
            heapq.heappush(
                heap,
                (start + float(arrivals.times[i]), _ARRIVAL, seq, i),
            )
            seq += 1
        primary_parts: List[np.ndarray] = []
        candidate_parts: List[np.ndarray] = []
        dispatch_order: List[int] = []
        shed_ids: List[int] = []

        def emit_queue_depth() -> None:
            if self.telemetry.enabled:
                self.telemetry.metrics.gauge(
                    names.TRAFFIC_QUEUE_DEPTH
                ).set(len(queue))

        def dispatch(now: float) -> None:
            nonlocal busy, seq
            while busy < self.config.concurrency:
                flush = batcher.poll(now)
                if flush is None:
                    break
                tables = [
                    self.pool.take(req.rows) for req in flush.requests
                ]
                keys = [req.request_id for req in flush.requests]
                cost_before = self.endpoint.engine.total_cost()
                served = self.endpoint.predict_requests(
                    tables, keys=keys
                )
                service = (
                    self.endpoint.engine.total_cost() - cost_before
                )
                primary_parts.append(served.primary_predictions)
                candidate_parts.append(served.candidate_predictions)
                dispatch_order.extend(keys)
                oldest = min(
                    req.arrival_time for req in flush.requests
                )
                self.slo.on_batch(
                    flush.size, flush.num_rows, flush.reason, service
                )
                for req in flush.requests:
                    self.slo.queue_delay.add(now - req.arrival_time)
                if self.telemetry.enabled:
                    metrics = self.telemetry.metrics
                    metrics.counter(names.BATCH_DISPATCHED).inc()
                    metrics.counter(names.BATCH_ROWS).inc(
                        flush.num_rows
                    )
                    metrics.observe(names.BATCH_SIZE, flush.size)
                    metrics.observe(names.BATCH_WAIT, now - oldest)
                    if flush.reason == "full":
                        metrics.counter(names.BATCH_FLUSH_FULL).inc()
                    elif flush.reason == "wait":
                        metrics.counter(names.BATCH_FLUSH_WAIT).inc()
                    self.telemetry.tracer.point(
                        names.BATCH_DISPATCHED,
                        size=flush.size,
                        rows=flush.num_rows,
                        reason=flush.reason,
                        wait=now - oldest,
                        service=service,
                    )
                    for req in flush.requests:
                        metrics.observe(
                            names.SLO_QUEUE_DELAY,
                            now - req.arrival_time,
                        )
                    metrics.observe(names.SLO_SERVICE_TIME, service)
                busy += 1
                record = _InFlight(
                    requests=flush.requests, dispatch_time=now
                )
                heapq.heappush(
                    heap, (now + service, _COMPLETION, seq, record)
                )
                seq += 1
                emit_queue_depth()

        while heap:
            t, kind, _, payload = heapq.heappop(heap)
            self.clock.advance(t)
            now = self.clock.now
            if kind == _ARRIVAL:
                i = payload
                request = Request(
                    request_id=int(i),
                    arrival_time=now,
                    user=int(arrivals.users[i]),
                    rows=arrivals.request_rows(i),
                )
                self.slo.on_arrival()
                if self.telemetry.enabled:
                    metrics = self.telemetry.metrics
                    metrics.counter(names.TRAFFIC_ARRIVALS).inc()
                    metrics.counter(names.TRAFFIC_ROWS).inc(
                        request.num_rows
                    )
                    if request.user not in self._seen_users:
                        self._seen_users.add(request.user)
                        metrics.counter(names.TRAFFIC_USERS).inc()
                elif request.user not in self._seen_users:
                    self._seen_users.add(request.user)
                shed = queue.offer(request)
                if shed is not None:
                    self.slo.on_shed()
                    shed_ids.append(shed.request_id)
                    if self.telemetry.enabled:
                        self.telemetry.metrics.counter(
                            names.TRAFFIC_SHED
                        ).inc()
                        self.telemetry.tracer.point(
                            names.TRAFFIC_SHED,
                            request=shed.request_id,
                            user=shed.user,
                            queue=len(queue),
                        )
                if shed is not request:
                    self.slo.on_admit()
                    if self.telemetry.enabled:
                        self.telemetry.metrics.counter(
                            names.TRAFFIC_ADMITTED
                        ).inc()
                    heapq.heappush(
                        heap,
                        (
                            now + batcher.max_wait,
                            _DEADLINE,
                            seq,
                            request.request_id,
                        ),
                    )
                    seq += 1
                emit_queue_depth()
                dispatch(now)
            elif kind == _COMPLETION:
                busy -= 1
                record = payload
                for req in record.requests:
                    latency = now - req.arrival_time
                    self.slo.on_completion(
                        latency, record.dispatch_time - req.arrival_time
                    )
                    if self.telemetry.enabled:
                        self.telemetry.metrics.observe(
                            names.SLO_LATENCY, latency
                        )
                        self.telemetry.tracer.point(
                            names.SLO_LATENCY,
                            cost=latency,
                            request=req.request_id,
                        )
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        names.TRAFFIC_COMPLETED
                    ).inc(len(record.requests))
                dispatch(now)
            else:  # _DEADLINE
                dispatch(now)

        # Deadline events guarantee every admitted request eventually
        # flushes, so the queue is empty here; drain defensively in
        # case a custom config ever breaks that invariant.
        while len(queue):
            flush = batcher.poll(self.clock.now, drain=True)
            if flush is None:
                break
            queue_requests = flush.requests
            tables = [self.pool.take(r.rows) for r in queue_requests]
            served = self.endpoint.predict_requests(
                tables, keys=[r.request_id for r in queue_requests]
            )
            primary_parts.append(served.primary_predictions)
            candidate_parts.append(served.candidate_predictions)
            dispatch_order.extend(r.request_id for r in queue_requests)
            self.slo.on_batch(
                flush.size, flush.num_rows, flush.reason, 0.0
            )

        duration = self.clock.now - start
        report = self.slo.report(duration)
        if self.telemetry.enabled:
            metrics = self.telemetry.metrics
            metrics.gauge(names.SLO_THROUGHPUT).set(report.throughput)
            metrics.gauge(names.SLO_SHED_RATE).set(report.shed_rate)
        empty = np.empty(0, dtype=np.float64)
        return SimulationResult(
            report=report,
            primary_stream=(
                np.concatenate(primary_parts) if primary_parts else empty
            ),
            candidate_stream=(
                np.concatenate(candidate_parts)
                if candidate_parts
                else empty
            ),
            dispatch_order=tuple(dispatch_order),
            shed_ids=tuple(shed_ids),
        )
