"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so that callers can
catch every library-specific failure with a single ``except`` clause
while still letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument or configuration value failed validation."""


class SchemaError(ReproError):
    """A :class:`~repro.data.table.Table` violated a schema expectation.

    Raised, for example, when columns have mismatched lengths or a
    pipeline component is asked for a column that does not exist.
    """


class PipelineError(ReproError):
    """A pipeline was assembled or used incorrectly.

    Examples: transforming with a component that has never seen data,
    appending a non-component object, or running an empty pipeline.
    """


class NotFittedError(PipelineError):
    """A stateful component or model was used before receiving data."""


class StorageError(ReproError):
    """The chunk storage layer was used incorrectly.

    Raised when a raw chunk referenced by a feature-chunk stub has been
    dropped (violating the paper's always-available assumption), when a
    duplicate timestamp is inserted, or when a chunk id is unknown.
    """


class SamplingError(ReproError):
    """A sampler received an impossible request (e.g. empty population)."""


class SchedulingError(ReproError):
    """The proactive-training scheduler was configured incorrectly."""


class ServingError(ReproError):
    """The model registry or serving layer was used incorrectly.

    Raised for unknown versions, illegal promotion/rollback
    transitions, corrupt registry manifests, and misconfigured
    shadow/canary rollouts.
    """


class ReliabilityError(ReproError):
    """The checkpoint/recovery layer was used incorrectly or failed.

    Raised when no valid checkpoint can be found during recovery, when
    a checkpoint directory is missing, or when a fault plan is
    malformed.
    """


class ConvergenceWarning(UserWarning):
    """Training stopped at the iteration cap before converging."""
