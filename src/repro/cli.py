"""Command-line interface for the experiment drivers.

Regenerate any paper artifact from a shell::

    python -m repro exp1   --dataset url  --scale test
    python -m repro table3 --dataset taxi --scale test
    python -m repro fig6   --dataset url  --scale bench
    python -m repro table4 --chunks 12000 --sample-size 100
    python -m repro fig7   --dataset taxi --scale test
    python -m repro fig8   --dataset url  --scale test

``--scale test`` runs a seconds-long miniature; ``--scale bench`` the
scale EXPERIMENTS.md records (minutes). Output is the same row/series
rendering the benchmark suite prints.

Observability: ``exp1 --trace run.jsonl`` records the continuous run
as a structured JSONL event trace, and ``repro obs`` works with such
traces offline::

    python -m repro exp1 --dataset url --scale test --trace run.jsonl
    python -m repro obs summary run.jsonl
    python -m repro obs tail run.jsonl --limit 30
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional

from repro.evaluation.report import (
    format_comparison_table,
    format_series,
    summarize_results,
)
from repro.exceptions import ConvergenceWarning
from repro.experiments.common import (
    Scenario,
    taxi_scenario,
    url_scenario,
)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Continuous Deployment of "
            "Machine Learning Pipelines' (EDBT 2019)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_scenario_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset",
            choices=("url", "taxi"),
            default="url",
            help="deployment scenario (default: url)",
        )
        sub.add_argument(
            "--scale",
            choices=("test", "bench"),
            default="test",
            help="test = seconds-long miniature; bench = the "
            "EXPERIMENTS.md scale (default: test)",
        )
        sub.add_argument(
            "--seed", type=int, default=None,
            help="override the scenario seed",
        )

    exp1 = commands.add_parser(
        "exp1", help="Figure 4: online vs periodical vs continuous"
    )
    add_scenario_options(exp1)
    exp1.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the continuous run as a JSONL event trace and "
        "print its telemetry summary (see 'repro obs')",
    )

    table3 = commands.add_parser(
        "table3", help="Table 3: hyperparameter grid"
    )
    add_scenario_options(table3)

    fig5 = commands.add_parser(
        "fig5", help="Figure 5: best configs deployed on a prefix"
    )
    add_scenario_options(fig5)

    fig6 = commands.add_parser(
        "fig6", help="Figure 6: sampling strategies vs quality"
    )
    add_scenario_options(fig6)

    table4 = commands.add_parser(
        "table4", help="Table 4: empirical vs analytical μ"
    )
    table4.add_argument("--chunks", type=int, default=12_000)
    table4.add_argument("--sample-size", type=int, default=100)
    table4.add_argument(
        "--sample-every", type=int, default=8,
        help="thin the simulation (1 = the paper's every-chunk mode)",
    )

    fig7 = commands.add_parser(
        "fig7", help="Figure 7: cost vs materialization rate"
    )
    add_scenario_options(fig7)

    fig8 = commands.add_parser(
        "fig8", help="Figure 8: quality/cost trade-off"
    )
    add_scenario_options(fig8)

    obs = commands.add_parser(
        "obs", help="summarize or tail a JSONL telemetry trace"
    )
    obs.add_argument(
        "action",
        choices=("summary", "tail"),
        help="summary = per-span percentile table + counters; "
        "tail = the last events, one line each",
    )
    obs.add_argument("trace", help="path to a .jsonl trace file")
    obs.add_argument(
        "--limit", type=int, default=20,
        help="number of events shown by 'tail' (default: 20)",
    )

    return parser


def _scenario(args: argparse.Namespace) -> Scenario:
    builder = url_scenario if args.dataset == "url" else taxi_scenario
    if args.seed is not None:
        return builder(args.scale, seed=args.seed)
    return builder(args.scale)


def _command_exp1(args: argparse.Namespace) -> None:
    from repro.experiments.exp1_deployment import (
        cost_ratios,
        run_experiment1,
    )

    telemetry = None
    if args.trace is not None:
        from repro.obs import JsonlSink, Telemetry

        telemetry = Telemetry(sink=JsonlSink(args.trace))
    results = run_experiment1(_scenario(args), telemetry=telemetry)
    print("cumulative error over time:")
    for name, result in results.items():
        print(format_series(name, result.error_history, points=12))
    print("\ncumulative cost over time:")
    for name, result in results.items():
        print(
            format_series(
                name, result.cost_history, points=12,
                float_format="{:.2f}",
            )
        )
    print()
    print(
        format_comparison_table(
            summarize_results(results),
            columns=[
                "approach", "final_error", "average_error",
                "total_cost",
            ],
        )
    )
    ratios = cost_ratios(results)
    print(
        "\nfinal-cost ratio vs continuous: "
        + ", ".join(f"{k}={v:.2f}x" for k, v in sorted(ratios.items()))
    )
    if telemetry is not None:
        from repro.obs import format_summary

        telemetry.close()
        print(f"\ntrace written to {args.trace}")
        print(format_summary(telemetry.summary()))


def _command_obs(args: argparse.Namespace) -> None:
    from repro.obs import format_summary, format_tail, load_jsonl
    from repro.obs.summary import summarize_events

    events = load_jsonl(args.trace)
    if args.action == "summary":
        print(format_summary(summarize_events(events)))
    else:
        print(format_tail(events, limit=args.limit))


def _command_table3(args: argparse.Namespace) -> None:
    from repro.experiments.exp2_tuning import (
        ADAPTATIONS,
        REG_STRENGTHS,
        best_per_adaptation,
        table3,
    )

    grid = table3(_scenario(args))
    print(
        "adaptation  "
        + "  ".join(f"{s:g}" for s in REG_STRENGTHS)
    )
    for adaptation in ADAPTATIONS:
        row = "  ".join(
            f"{grid[(adaptation, s)]:.4f}" for s in REG_STRENGTHS
        )
        print(f"{adaptation:<10}  {row}")
    best = best_per_adaptation(grid)
    print(
        "best: "
        + ", ".join(f"{k}={v:g}" for k, v in sorted(best.items()))
    )


def _command_fig5(args: argparse.Namespace) -> None:
    from repro.experiments.exp2_tuning import (
        best_per_adaptation,
        figure5,
        ranking_agreement,
        table3,
    )

    scenario = _scenario(args)
    grid = table3(scenario)
    best = best_per_adaptation(grid)
    histories = figure5(scenario, best)
    for adaptation, history in histories.items():
        print(format_series(adaptation, history, points=12))
    print(
        "initial-training winner also wins deployment: "
        f"{ranking_agreement(grid, histories)}"
    )


def _command_fig6(args: argparse.Namespace) -> None:
    from repro.experiments.exp2_sampling import (
        average_errors,
        run_sampling_experiment,
    )

    results = run_sampling_experiment(_scenario(args))
    for name, result in results.items():
        print(format_series(name, result.error_history, points=12))
    averages = average_errors(results)
    print(
        "average error: "
        + ", ".join(
            f"{k}={v:.4f}" for k, v in sorted(averages.items())
        )
    )


def _command_table4(args: argparse.Namespace) -> None:
    from repro.experiments.exp3_materialization import table4

    cells = table4(
        num_chunks=args.chunks,
        sample_size=args.sample_size,
        sample_every=args.sample_every,
    )
    print(f"{'sampler':<10} {'m/n':>5} {'empirical':>10} {'theory':>8}")
    for cell in cells:
        theory = (
            f"{cell.theoretical:8.3f}"
            if cell.theoretical is not None
            else "      --"
        )
        print(
            f"{cell.sampler:<10} {cell.rate:>5} "
            f"{cell.empirical:>10.3f} {theory}"
        )


def _command_fig7(args: argparse.Namespace) -> None:
    from repro.experiments.exp3_materialization import (
        FIG7_RATES,
        SAMPLERS,
        figure7,
        figure7_no_optimization,
    )

    scenario = _scenario(args)
    costs = figure7(scenario)
    print(
        f"{'sampler':<10} "
        + " ".join(f"m/n={r:<6}" for r in FIG7_RATES)
    )
    for sampler in SAMPLERS:
        row = " ".join(
            f"{costs[(sampler, rate)]:<10.3f}" for rate in FIG7_RATES
        )
        print(f"{sampler:<10} {row}")
    print(
        f"NoOptimization: {figure7_no_optimization(scenario):.3f}"
    )


def _command_fig8(args: argparse.Namespace) -> None:
    from repro.experiments.exp4_tradeoff import (
        headline_claims,
        run_tradeoff,
    )

    points = run_tradeoff(_scenario(args))
    print(f"{'approach':<12} {'avg error':>10} {'total cost':>12}")
    for point in sorted(points, key=lambda p: p.approach):
        print(
            f"{point.approach:<12} {point.average_error:>10.4f} "
            f"{point.total_cost:>12.3f}"
        )
    claims = headline_claims(points)
    print(
        f"cost ratio {claims['cost_ratio']:.2f}x, quality delta "
        f"{claims['quality_delta']:+.4f}"
    )


_COMMANDS = {
    "exp1": _command_exp1,
    "table3": _command_table3,
    "fig5": _command_fig5,
    "fig6": _command_fig6,
    "table4": _command_table4,
    "fig7": _command_fig7,
    "fig8": _command_fig8,
    "obs": _command_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    warnings.simplefilter("ignore", ConvergenceWarning)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
