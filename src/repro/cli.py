"""Command-line interface for the experiment drivers.

Regenerate any paper artifact from a shell::

    python -m repro exp1   --dataset url  --scale test
    python -m repro table3 --dataset taxi --scale test
    python -m repro fig6   --dataset url  --scale bench
    python -m repro table4 --chunks 12000 --sample-size 100
    python -m repro fig7   --dataset taxi --scale test
    python -m repro fig8   --dataset url  --scale test

``--scale test`` runs a seconds-long miniature; ``--scale bench`` the
scale EXPERIMENTS.md records (minutes). Output is the same row/series
rendering the benchmark suite prints.

Observability: ``exp1 --trace run.jsonl`` records the continuous run
as a structured JSONL event trace, and ``repro obs`` works with such
traces offline::

    python -m repro exp1 --dataset url --scale test --trace run.jsonl
    python -m repro obs summary run.jsonl
    python -m repro obs tail run.jsonl --limit 30

Serving: ``repro serve`` runs a full train-register-canary-serve loop
against a model registry directory, and ``repro registry`` inspects
and operates one offline::

    python -m repro serve --registry ./reg --dataset url --scale test
    python -m repro registry list --registry ./reg
    python -m repro registry show v0002 --registry ./reg
    python -m repro registry promote v0002 --registry ./reg
    python -m repro registry rollback --registry ./reg
    python -m repro exp5 --dataset taxi --scale test

Reliability: ``repro run`` executes any approach with platform
checkpointing (and optional deterministic fault injection), ``repro
recover`` resumes an interrupted run byte-identically, and ``repro
exp6`` measures checkpoint cadence vs recovery cost::

    python -m repro run --approach continuous --checkpoint-dir ./ckpt \
        --cadence 5 --kill-at 12 --dataset url --scale test
    python -m repro recover --approach continuous \
        --checkpoint-dir ./ckpt --dataset url --scale test
    python -m repro exp6 --dataset url --scale test

Performance: ``repro perf`` is the performance observatory — profile
where a run's cost goes, persist benchmark baselines, and gate fresh
runs against them (exit 0 = no regressions, 1 = regressions)::

    python -m repro exp1 --dataset url --scale test --profile p.json
    python -m repro perf profile --dataset url --scale test
    python -m repro perf record --dataset url --scale test --store ./b
    python -m repro perf check  --dataset url --scale test --against ./b
    python -m repro perf report --store benchmarks/baselines

Health: ``--monitor`` attaches the live health monitor to an
instrumented run — streaming virtual-clock windows, declarative alert
rules, and a deterministic incident timeline written as
``health.json`` — and ``repro obs health``/``repro obs alerts``
render a timeline (or replay a JSONL trace through the monitor
offline)::

    python -m repro exp1 --dataset url --scale test \
        --monitor health.json
    python -m repro obs health health.json
    python -m repro obs alerts health.json
    python -m repro obs health run.jsonl --window 0.02

Fleet: ``repro fleet`` orchestrates many tenant pipelines against
shared bounded budgets (deterministic fair-share scheduling, byte
quotas, nested fleet checkpoints), and ``repro exp8`` compares
fair-share vs round-robin at an equal total training budget::

    python -m repro fleet run    --tenants 6 --chunks 10
    python -m repro fleet replay --tenants 6 --chunks 10
    python -m repro fleet run    --tenants 6 --checkpoint-dir ./fc \
        --cadence 2 --sigkill-at-epoch 5
    python -m repro fleet status --checkpoint-dir ./fc
    python -m repro recover --approach fleet --checkpoint-dir ./fc
    python -m repro exp8 --tenants 24 --seed 11

Static analysis: ``repro lint`` runs reprolint, the AST-based
invariant linter enforcing the determinism, checkpoint, and telemetry
contracts (exit 0 = clean, 1 = findings, 2 = config error)::

    python -m repro lint
    python -m repro lint --format json
    python -m repro lint --list-rules
    python -m repro lint src/repro/serving --select REP005,REP007
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional

from repro.evaluation.report import (
    format_comparison_table,
    format_series,
    summarize_results,
)
from repro.exceptions import ConvergenceWarning
from repro.experiments.common import (
    Scenario,
    taxi_scenario,
    url_scenario,
)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Continuous Deployment of "
            "Machine Learning Pipelines' (EDBT 2019)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_scenario_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset",
            choices=("url", "taxi"),
            default="url",
            help="deployment scenario (default: url)",
        )
        sub.add_argument(
            "--scale",
            choices=("test", "bench"),
            default="test",
            help="test = seconds-long miniature; bench = the "
            "EXPERIMENTS.md scale (default: test)",
        )
        sub.add_argument(
            "--seed", type=int, default=None,
            help="override the scenario seed",
        )

    def add_profile_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--profile",
            metavar="PATH",
            default=None,
            help="profile the instrumented runs: fold the span stream "
            "into a cost-attribution tree, write it as JSON to PATH, "
            "and print the rendered tree (see 'repro perf')",
        )

    def add_monitor_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--monitor",
            metavar="PATH",
            default=None,
            help="attach the live health monitor to the instrumented "
            "runs, write the deterministic incident timeline as "
            "health.json to PATH, and print it (see 'repro obs "
            "health')",
        )
        sub.add_argument(
            "--monitor-window",
            type=float,
            default=None,
            metavar="COST",
            help="tumbling-window width in virtual-cost units "
            "(default: 0.01)",
        )

    def add_lineage_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--lineage",
            metavar="PATH",
            default=None,
            help="attach the provenance ledger to the instrumented "
            "runs and write the digest-stamped lineage graph as "
            "lineage.json to PATH (see 'repro obs lineage')",
        )

    exp1 = commands.add_parser(
        "exp1", help="Figure 4: online vs periodical vs continuous"
    )
    add_scenario_options(exp1)
    exp1.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the continuous run as a JSONL event trace and "
        "print its telemetry summary (see 'repro obs')",
    )
    add_profile_option(exp1)
    add_monitor_option(exp1)
    add_lineage_option(exp1)

    table3 = commands.add_parser(
        "table3", help="Table 3: hyperparameter grid"
    )
    add_scenario_options(table3)

    fig5 = commands.add_parser(
        "fig5", help="Figure 5: best configs deployed on a prefix"
    )
    add_scenario_options(fig5)
    add_profile_option(fig5)
    add_monitor_option(fig5)

    fig6 = commands.add_parser(
        "fig6", help="Figure 6: sampling strategies vs quality"
    )
    add_scenario_options(fig6)
    add_profile_option(fig6)
    add_monitor_option(fig6)

    table4 = commands.add_parser(
        "table4", help="Table 4: empirical vs analytical μ"
    )
    table4.add_argument("--chunks", type=int, default=12_000)
    table4.add_argument("--sample-size", type=int, default=100)
    table4.add_argument(
        "--sample-every", type=int, default=8,
        help="thin the simulation (1 = the paper's every-chunk mode)",
    )

    fig7 = commands.add_parser(
        "fig7", help="Figure 7: cost vs materialization rate"
    )
    add_scenario_options(fig7)
    add_profile_option(fig7)
    add_monitor_option(fig7)

    fig8 = commands.add_parser(
        "fig8", help="Figure 8: quality/cost trade-off"
    )
    add_scenario_options(fig8)
    add_profile_option(fig8)
    add_monitor_option(fig8)

    obs = commands.add_parser(
        "obs",
        help="summarize, tail, health-monitor, or lineage-query a "
        "telemetry trace",
    )
    obs.add_argument(
        "action",
        choices=("summary", "tail", "health", "alerts", "lineage"),
        help="summary = per-span percentile table + counters; "
        "tail = the last events, one line each; health = the "
        "incident timeline (from a health.json or by replaying a "
        "JSONL trace through the monitor); alerts = the rule table "
        "with firing counts; lineage = provenance queries over a "
        "lineage.json (sub-actions show/blame/trace)",
    )
    obs.add_argument(
        "trace",
        help="path to a .jsonl trace file (for health/alerts, a "
        "health.json timeline; for lineage, the sub-action "
        "show|blame|trace)",
    )
    obs.add_argument(
        "path",
        nargs="?",
        default=None,
        help="lineage only: path to a lineage.json written by "
        "--lineage",
    )
    obs.add_argument(
        "--version",
        default=None,
        dest="lineage_version",
        help="lineage blame: model version to explain (full node id "
        "'model:<registry>:vNNNN' or any unique suffix, e.g. v0003)",
    )
    obs.add_argument(
        "--chunk",
        default=None,
        dest="lineage_chunk",
        help="lineage trace: chunk to follow downstream (full node "
        "id 'chunk:<timestamp>' or any unique suffix)",
    )
    obs.add_argument(
        "--limit", type=int, default=20,
        help="number of events shown by 'tail' (default: 20)",
    )
    obs.add_argument(
        "--rules",
        metavar="PATH",
        default=None,
        help="health/alerts replay: JSON list of alert-rule "
        "declarations overriding the default rule set",
    )
    obs.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="COST",
        help="health/alerts replay: tumbling-window width in "
        "virtual-cost units (default: 0.01)",
    )
    obs.add_argument(
        "--json",
        metavar="PATH",
        dest="json_out",
        default=None,
        help="health/alerts: also write the health payload as JSON "
        "to PATH",
    )

    exp5 = commands.add_parser(
        "exp5", help="gated canary rollout vs blind promotion"
    )
    add_scenario_options(exp5)
    add_profile_option(exp5)
    add_monitor_option(exp5)
    add_lineage_option(exp5)

    exp7 = commands.add_parser(
        "exp7",
        help="canary + shadow rollout under an open-loop traffic "
        "spike: micro-batching, load shedding, SLO alerts",
    )
    add_scenario_options(exp7)
    exp7.add_argument(
        "--skip-identity-check",
        action="store_true",
        help="skip the batched-vs-row-at-a-time and replay "
        "verification passes (faster smoke runs)",
    )
    add_profile_option(exp7)
    add_monitor_option(exp7)

    traffic = commands.add_parser(
        "traffic",
        help="open-loop load generation: synthesize a seeded arrival "
        "stream, or replay a simulation twice and compare digests",
    )
    traffic.add_argument(
        "action",
        choices=("synth", "replay"),
        help="synth = generate an arrival stream and print its "
        "stats + digest (twice, proving byte-identity); replay = "
        "simulate the stream against a freshly trained endpoint "
        "twice and compare the result digests (exit 1 on mismatch)",
    )
    add_scenario_options(traffic)
    traffic.add_argument(
        "--rate",
        type=float,
        default=60.0,
        help="base arrival rate per cost unit (default: 60)",
    )
    traffic.add_argument(
        "--horizon",
        type=float,
        default=2.0,
        help="stream length in cost units (default: 2.0)",
    )
    traffic.add_argument(
        "--users",
        type=int,
        default=1_000_000,
        help="synthetic user population (default: 1000000)",
    )
    traffic.add_argument(
        "--burst",
        type=float,
        nargs=3,
        metavar=("START", "DURATION", "MULTIPLIER"),
        default=None,
        help="add one burst episode to the rate curve",
    )
    traffic.add_argument(
        "--pool-rows",
        type=int,
        default=256,
        metavar="N",
        help="synth only: replay-pool size requests sample from "
        "(default: 256)",
    )

    perf = commands.add_parser(
        "perf",
        help="performance observatory: profile a run, record a bench "
        "baseline, or gate a fresh run against one",
    )
    perf.add_argument(
        "action",
        choices=("profile", "record", "check", "report"),
        help="profile = run a workload (or fold --trace) into a "
        "cost-attribution tree; record = append the run to its "
        "BENCH_<name>.json trajectory; check = gate a fresh run "
        "against the stored trajectory (exit 1 on regression); "
        "report = render stored trajectories",
    )
    add_scenario_options(perf)
    perf.add_argument(
        "--approach",
        choices=("online", "periodical", "threshold", "continuous"),
        default="continuous",
        help="deployment approach the workload runs (default: "
        "continuous)",
    )
    perf.add_argument(
        "--store",
        metavar="DIR",
        default="benchmarks/baselines",
        help="baseline store directory (default: benchmarks/baselines)",
    )
    perf.add_argument(
        "--against",
        metavar="DIR",
        default=None,
        help="store 'check' compares against (default: --store)",
    )
    perf.add_argument(
        "--name",
        default=None,
        help="trajectory name for 'report' (default: all in the store)",
    )
    perf.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="'profile' folds this JSONL trace instead of running a "
        "workload",
    )
    perf.add_argument(
        "--json",
        metavar="PATH",
        dest="json_out",
        default=None,
        help="'profile' also writes the tree as JSON to PATH",
    )
    perf.add_argument(
        "--collapsed",
        metavar="PATH",
        default=None,
        help="'profile' also writes collapsed-stack (flamegraph) text",
    )
    perf.add_argument(
        "--depth", type=int, default=None,
        help="'profile' rendering depth limit",
    )
    perf.add_argument(
        "--min-fraction",
        type=float,
        default=0.0,
        help="'profile' hides paths below this share of total cost",
    )
    perf.add_argument(
        "--wall-budget",
        type=float,
        default=0.5,
        help="'check' relative budget for wall-clock metrics "
        "(default: 0.5 = +50%%)",
    )
    perf.add_argument(
        "--window",
        type=int,
        default=5,
        help="'check' median-of-K window for wall metrics (default: 5)",
    )
    perf.add_argument(
        "--gate-profile",
        action="store_true",
        help="'check' fails when the profile digest changed, not just "
        "when totals moved",
    )
    perf.add_argument(
        "--record",
        action="store_true",
        dest="record_after_check",
        help="'check' appends the fresh record to the trajectory when "
        "the gate passes",
    )

    serve = commands.add_parser(
        "serve",
        help="run a continuous deployment with a model registry and "
        "gated canary rollouts",
    )
    add_scenario_options(serve)
    serve.add_argument(
        "--registry",
        metavar="DIR",
        default=None,
        help="registry directory (default: a temporary one); an "
        "existing registry with a live version is reused, an empty "
        "one is bootstrapped from the scenario's initial data",
    )
    serve.add_argument(
        "--mode",
        choices=("shadow", "canary"),
        default="canary",
        help="staging mode for fresh candidates (default: canary)",
    )
    serve.add_argument(
        "--fraction", type=float, default=0.2,
        help="canary traffic fraction (default: 0.2)",
    )
    serve.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the run as a JSONL event trace",
    )

    registry = commands.add_parser(
        "registry", help="inspect or operate a model registry"
    )
    registry.add_argument(
        "action",
        choices=("list", "show", "promote", "rollback", "gc"),
        help="list = one line per version; show = full detail for "
        "VERSION; promote = VERSION goes live; rollback = reinstate "
        "the previous live version; gc = drop finished bundles",
    )
    registry.add_argument(
        "version",
        nargs="?",
        default=None,
        help="version id (required by show/promote)",
    )
    registry.add_argument(
        "--registry",
        metavar="DIR",
        required=True,
        dest="registry_dir",
        help="registry directory",
    )
    registry.add_argument(
        "--keep", type=int, default=3,
        help="finished versions whose bundles 'gc' keeps (default: 3)",
    )
    registry.add_argument(
        "--reason", default="cli",
        help="reason recorded with promote/rollback (default: cli)",
    )

    run = commands.add_parser(
        "run",
        help="run one deployment approach, optionally writing "
        "platform checkpoints (crash-recoverable with 'repro "
        "recover')",
    )
    add_scenario_options(run)
    _add_reliability_options(run)
    add_monitor_option(run)
    add_lineage_option(run)
    run.add_argument(
        "--kill-at",
        type=int,
        default=None,
        metavar="K",
        help="inject a deterministic crash after K chunks (exercises "
        "the recovery path)",
    )
    run.add_argument(
        "--sigkill-at",
        type=int,
        default=None,
        metavar="K",
        help="send this process a real SIGKILL before chunk K is "
        "read (the CI recovery-smoke harness; no cleanup runs)",
    )

    recover = commands.add_parser(
        "recover",
        help="resume an interrupted 'repro run' from its latest "
        "valid checkpoint",
    )
    add_scenario_options(recover)
    _add_reliability_options(recover)
    add_monitor_option(recover)
    add_lineage_option(recover)

    fleet = commands.add_parser(
        "fleet",
        help="multi-tenant fleet orchestration: run a mixed URL/taxi "
        "fleet under shared training/materialization budgets, "
        "inspect a fleet checkpoint, or replay for byte-identity",
    )
    fleet.add_argument(
        "action",
        choices=("run", "status", "replay"),
        help="run = execute the fleet and print the tenant table + "
        "digest; status = cheap summary of the latest fleet "
        "checkpoint; replay = run the same spec twice and compare "
        "digests (exit 1 on divergence)",
    )
    fleet.add_argument(
        "--tenants",
        type=int,
        default=6,
        help="fleet size for the generated spec (default: 6)",
    )
    fleet.add_argument(
        "--seed", type=int, default=0, help="fleet seed (default: 0)"
    )
    fleet.add_argument(
        "--policy",
        choices=("fair_share", "round_robin"),
        default="fair_share",
        help="scheduling policy (default: fair_share)",
    )
    fleet.add_argument(
        "--chunks",
        type=int,
        default=16,
        help="stream chunks per tenant (default: 16)",
    )
    fleet.add_argument(
        "--rows",
        type=int,
        default=12,
        help="rows per stream chunk (default: 12)",
    )
    fleet.add_argument(
        "--spec",
        metavar="PATH",
        default=None,
        help="JSON fleet spec overriding the generated one "
        "(--tenants/--seed/--policy/--chunks/--rows are ignored)",
    )
    fleet.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="write fleet checkpoints under DIR (required by "
        "'fleet status' and 'repro recover --approach fleet')",
    )
    fleet.add_argument(
        "--cadence",
        type=int,
        default=4,
        help="checkpoint every N epochs (default: 4)",
    )
    fleet.add_argument(
        "--keep",
        type=int,
        default=3,
        help="checkpoints retained (default: 3)",
    )
    fleet.add_argument(
        "--sigkill-at-epoch",
        type=int,
        default=None,
        metavar="K",
        help="send this process a real SIGKILL before epoch K runs "
        "(the CI fleet-recovery smoke; no cleanup runs)",
    )
    add_monitor_option(fleet)
    add_lineage_option(fleet)

    exp8 = commands.add_parser(
        "exp8",
        help="multi-tenant fleet: fair-share vs round-robin "
        "scheduling at an equal total training budget, plus "
        "byte-identity verification",
    )
    exp8.add_argument(
        "--tenants",
        type=int,
        default=24,
        help="fleet size (default: 24)",
    )
    exp8.add_argument(
        "--seed", type=int, default=11, help="fleet seed (default: 11)"
    )
    exp8.add_argument(
        "--chunks",
        type=int,
        default=16,
        help="stream chunks per tenant (default: 16)",
    )
    exp8.add_argument(
        "--rows",
        type=int,
        default=12,
        help="rows per stream chunk (default: 12)",
    )
    exp8.add_argument(
        "--bench-store",
        metavar="DIR",
        default=None,
        help="append a BENCH_exp8_fleet trajectory record under DIR",
    )
    exp8.add_argument(
        "--skip-identity-check",
        action="store_true",
        help="skip the same-seed re-runs that verify byte-identical "
        "digests (faster smoke runs)",
    )
    add_monitor_option(exp8)

    lint = commands.add_parser(
        "lint",
        help="run reprolint, the AST-based invariant linter, over "
        "the tree (exit 0 clean / 1 findings / 2 config error)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the configured "
        "roots, i.e. src/)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--root",
        metavar="DIR",
        default=".",
        help="repository root paths are resolved against (default: .)",
    )
    lint.add_argument(
        "--config",
        metavar="PATH",
        default=None,
        help="JSON lint config overriding the shipped project policy",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file overriding the configured one",
    )
    lint.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (e.g. REP001,REP007)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather all current "
        "findings (then exits 0)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (per-file and whole-program "
        "rules) and exit",
    )
    lint.add_argument(
        "--program",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the whole-program pass (REP009-REP014); "
        "--no-program restricts the run to the per-file rules",
    )
    lint.add_argument(
        "--diff",
        metavar="REF",
        default=None,
        help="lint only files changed vs the given git ref (plus "
        "untracked files); the program model is still built from "
        "the full tree",
    )

    exp6 = commands.add_parser(
        "exp6",
        help="checkpoint cadence vs recovery cost + retry masking "
        "transient faults",
    )
    add_scenario_options(exp6)
    exp6.add_argument(
        "--approach",
        choices=("online", "periodical", "threshold", "continuous"),
        default="continuous",
        help="deployment approach under test (default: continuous)",
    )
    exp6.add_argument(
        "--kill-after",
        type=int,
        default=19,
        metavar="K",
        help="chunks processed before the injected crash "
        "(default: 19)",
    )
    exp6.add_argument(
        "--cadences",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="checkpoint intervals to sweep (default: 4 7 13)",
    )
    add_profile_option(exp6)
    add_monitor_option(exp6)

    return parser


def _add_reliability_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--approach",
        choices=(
            "online",
            "periodical",
            "threshold",
            "continuous",
            "fleet",
        ),
        default="continuous",
        help="deployment approach (default: continuous); 'fleet' is "
        "recover-only and resumes a whole fleet checkpoint",
    )
    sub.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="write platform checkpoints under DIR (required by "
        "'repro recover')",
    )
    sub.add_argument(
        "--cadence",
        type=int,
        default=10,
        help="checkpoint every N chunks (default: 10)",
    )
    sub.add_argument(
        "--keep",
        type=int,
        default=3,
        help="checkpoints retained (default: 3)",
    )
    sub.add_argument(
        "--retry",
        action="store_true",
        help="mask transient faults with bounded-backoff retries",
    )


def _scenario(args: argparse.Namespace) -> Scenario:
    builder = url_scenario if args.dataset == "url" else taxi_scenario
    if args.seed is not None:
        return builder(args.scale, seed=args.seed)
    return builder(args.scale)


def _telemetry_from_flags(args: argparse.Namespace, rules=None):
    """Build one telemetry bundle for ``--trace``, ``--profile``,
    ``--monitor``, and/or ``--lineage``.

    ``rules`` overrides the monitor's default rule set (``repro exp7``
    swaps in the traffic/SLO rules). Returns ``None`` when none of
    the flags were given, so un-instrumented invocations stay
    byte-identical to pre-observability builds.
    """
    trace = getattr(args, "trace", None)
    profile = getattr(args, "profile", None)
    monitor = getattr(args, "monitor", None)
    lineage = getattr(args, "lineage", None)
    if (
        trace is None
        and profile is None
        and monitor is None
        and lineage is None
    ):
        return None
    from repro.obs import Telemetry

    if trace is not None:
        from repro.obs import JsonlSink

        telemetry = Telemetry(sink=JsonlSink(trace))
    else:
        telemetry = Telemetry()
    if lineage is not None:
        # Attached first so the monitor (below) can stamp lineage
        # evidence into its incidents.
        telemetry.attach_ledger()
    if monitor is not None:
        from repro.obs import MonitorConfig

        window = getattr(args, "monitor_window", None)
        config = (
            MonitorConfig(window=window) if window is not None else None
        )
        telemetry.attach_monitor(rules=rules, config=config)
    return telemetry


def _finish_telemetry(args: argparse.Namespace, telemetry) -> None:
    """Flush, close, and render whatever ``--trace``/``--profile`` asked
    for; shared epilogue of every instrumentable experiment command."""
    if telemetry is None:
        return
    import json

    monitor_path = getattr(args, "monitor", None)
    if monitor_path is not None and telemetry.monitor is not None:
        from repro.obs import names

        telemetry.tracer.point(names.HEALTH_EXPORTED, path=monitor_path)
    lineage_path = getattr(args, "lineage", None)
    if lineage_path is not None and telemetry.ledger is not None:
        # Written while the sink chain is still open so the
        # lineage.exported point lands in the trace.
        telemetry.ledger.write(lineage_path)
    telemetry.flush_metrics()
    telemetry.close()
    if monitor_path is not None and telemetry.monitor is not None:
        from repro.obs import format_timeline

        payload = telemetry.monitor.write_health(monitor_path)
        print(f"\nhealth timeline written to {monitor_path}")
        print(format_timeline(payload))
    if lineage_path is not None and telemetry.ledger is not None:
        from repro.obs import format_lineage

        print(f"\nlineage graph written to {lineage_path}")
        print(format_lineage(telemetry.ledger))
    trace = getattr(args, "trace", None)
    if trace is not None:
        from repro.obs import format_summary

        print(f"\ntrace written to {trace}")
        print(format_summary(telemetry.summary()))
    profile = getattr(args, "profile", None)
    if profile is not None:
        from pathlib import Path

        from repro.obs import (
            build_profile,
            format_profile,
            profile_to_dict,
        )

        root = build_profile(telemetry.events)
        Path(profile).write_text(
            json.dumps(profile_to_dict(root), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"\nprofile written to {profile}")
        print(format_profile(root))


def _command_exp1(args: argparse.Namespace) -> None:
    from repro.experiments.exp1_deployment import (
        cost_ratios,
        run_experiment1,
    )

    telemetry = _telemetry_from_flags(args)
    results = run_experiment1(_scenario(args), telemetry=telemetry)
    print("cumulative error over time:")
    for name, result in results.items():
        print(format_series(name, result.error_history, points=12))
    print("\ncumulative cost over time:")
    for name, result in results.items():
        print(
            format_series(
                name, result.cost_history, points=12,
                float_format="{:.2f}",
            )
        )
    print()
    print(
        format_comparison_table(
            summarize_results(results),
            columns=[
                "approach", "final_error", "average_error",
                "total_cost",
            ],
        )
    )
    ratios = cost_ratios(results)
    print(
        "\nfinal-cost ratio vs continuous: "
        + ", ".join(f"{k}={v:.2f}x" for k, v in sorted(ratios.items()))
    )
    _finish_telemetry(args, telemetry)


def _command_obs(args: argparse.Namespace) -> None:
    from repro.obs import format_summary, format_tail, load_jsonl
    from repro.obs.summary import summarize_events

    if args.action == "lineage":
        _obs_lineage(args)
        return
    if args.action in ("health", "alerts"):
        _obs_health(args)
        return
    events = load_jsonl(args.trace)
    if args.action == "summary":
        print(format_summary(summarize_events(events)))
    else:
        print(format_tail(events, limit=args.limit))


def _obs_lineage(args: argparse.Namespace) -> None:
    """``repro obs lineage {show,blame,trace}`` over a lineage.json.

    ``show`` prints the node/edge census and live versions; ``blame
    --version vN`` lists the training chunks (with sampling weights)
    behind a model version; ``trace --chunk C`` walks forward from a
    chunk to every downstream training, model, and incident.
    """
    from repro.obs import (
        format_blame,
        format_lineage,
        format_trace,
        load_lineage,
    )

    sub = args.trace
    if sub not in ("show", "blame", "trace"):
        raise SystemExit(
            f"unknown lineage sub-action {sub!r} "
            "(expected show, blame, or trace)"
        )
    if args.path is None:
        raise SystemExit(
            "obs lineage requires a lineage.json path "
            "(written by --lineage on run/exp1/exp5/recover)"
        )
    ledger = load_lineage(args.path)
    if sub == "show":
        print(format_lineage(ledger))
    elif sub == "blame":
        if args.lineage_version is None:
            raise SystemExit("obs lineage blame requires --version")
        print(format_blame(ledger.blame(args.lineage_version)))
    else:
        if args.lineage_chunk is None:
            raise SystemExit("obs lineage trace requires --chunk")
        print(format_trace(ledger.trace(args.lineage_chunk)))


def _load_health_payload(args: argparse.Namespace):
    """Health payload for ``repro obs health/alerts``: either read a
    ``health.json`` written by ``--monitor``, or replay a JSONL trace
    through a fresh monitor (deterministic, so both routes agree)."""
    import json
    from pathlib import Path

    from repro.obs import AlertRule, MonitorConfig, load_jsonl, replay_trace

    text = Path(args.trace).read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None
    if isinstance(payload, dict) and "incidents" in payload:
        return payload
    rules = None
    if args.rules is not None:
        declarations = json.loads(
            Path(args.rules).read_text(encoding="utf-8")
        )
        rules = [AlertRule.from_dict(d) for d in declarations]
    config = (
        MonitorConfig(window=args.window)
        if args.window is not None
        else None
    )
    monitor = replay_trace(
        load_jsonl(args.trace), rules=rules, config=config
    )
    return monitor.health()


def _obs_health(args: argparse.Namespace) -> None:
    import json
    from pathlib import Path

    from repro.obs import format_alerts, format_timeline

    payload = _load_health_payload(args)
    if args.json_out is not None:
        Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"health payload written to {args.json_out}")
    if args.action == "alerts":
        print(format_alerts(payload))
    else:
        print(format_timeline(payload))


def _command_table3(args: argparse.Namespace) -> None:
    from repro.experiments.exp2_tuning import (
        ADAPTATIONS,
        REG_STRENGTHS,
        best_per_adaptation,
        table3,
    )

    grid = table3(_scenario(args))
    print(
        "adaptation  "
        + "  ".join(f"{s:g}" for s in REG_STRENGTHS)
    )
    for adaptation in ADAPTATIONS:
        row = "  ".join(
            f"{grid[(adaptation, s)]:.4f}" for s in REG_STRENGTHS
        )
        print(f"{adaptation:<10}  {row}")
    best = best_per_adaptation(grid)
    print(
        "best: "
        + ", ".join(f"{k}={v:g}" for k, v in sorted(best.items()))
    )


def _command_fig5(args: argparse.Namespace) -> None:
    from repro.experiments.exp2_tuning import (
        best_per_adaptation,
        figure5,
        ranking_agreement,
        table3,
    )

    scenario = _scenario(args)
    grid = table3(scenario)
    best = best_per_adaptation(grid)
    telemetry = _telemetry_from_flags(args)
    histories = figure5(scenario, best, telemetry=telemetry)
    for adaptation, history in histories.items():
        print(format_series(adaptation, history, points=12))
    print(
        "initial-training winner also wins deployment: "
        f"{ranking_agreement(grid, histories)}"
    )
    _finish_telemetry(args, telemetry)


def _command_fig6(args: argparse.Namespace) -> None:
    from repro.experiments.exp2_sampling import (
        average_errors,
        run_sampling_experiment,
    )

    telemetry = _telemetry_from_flags(args)
    results = run_sampling_experiment(
        _scenario(args), telemetry=telemetry
    )
    for name, result in results.items():
        print(format_series(name, result.error_history, points=12))
    averages = average_errors(results)
    print(
        "average error: "
        + ", ".join(
            f"{k}={v:.4f}" for k, v in sorted(averages.items())
        )
    )
    _finish_telemetry(args, telemetry)


def _command_table4(args: argparse.Namespace) -> None:
    from repro.experiments.exp3_materialization import table4

    cells = table4(
        num_chunks=args.chunks,
        sample_size=args.sample_size,
        sample_every=args.sample_every,
    )
    print(f"{'sampler':<10} {'m/n':>5} {'empirical':>10} {'theory':>8}")
    for cell in cells:
        theory = (
            f"{cell.theoretical:8.3f}"
            if cell.theoretical is not None
            else "      --"
        )
        print(
            f"{cell.sampler:<10} {cell.rate:>5} "
            f"{cell.empirical:>10.3f} {theory}"
        )


def _command_fig7(args: argparse.Namespace) -> None:
    from repro.experiments.exp3_materialization import (
        FIG7_RATES,
        SAMPLERS,
        figure7,
        figure7_no_optimization,
    )

    scenario = _scenario(args)
    telemetry = _telemetry_from_flags(args)
    costs = figure7(scenario, telemetry=telemetry)
    print(
        f"{'sampler':<10} "
        + " ".join(f"m/n={r:<6}" for r in FIG7_RATES)
    )
    for sampler in SAMPLERS:
        row = " ".join(
            f"{costs[(sampler, rate)]:<10.3f}" for rate in FIG7_RATES
        )
        print(f"{sampler:<10} {row}")
    print(
        f"NoOptimization: "
        f"{figure7_no_optimization(scenario, telemetry=telemetry):.3f}"
    )
    _finish_telemetry(args, telemetry)


def _command_fig8(args: argparse.Namespace) -> None:
    from repro.experiments.exp4_tradeoff import (
        headline_claims,
        run_tradeoff,
    )

    telemetry = _telemetry_from_flags(args)
    points = run_tradeoff(_scenario(args), telemetry=telemetry)
    print(f"{'approach':<12} {'avg error':>10} {'total cost':>12}")
    for point in sorted(points, key=lambda p: p.approach):
        print(
            f"{point.approach:<12} {point.average_error:>10.4f} "
            f"{point.total_cost:>12.3f}"
        )
    claims = headline_claims(points)
    print(
        f"cost ratio {claims['cost_ratio']:.2f}x, quality delta "
        f"{claims['quality_delta']:+.4f}"
    )
    _finish_telemetry(args, telemetry)


def _command_exp5(args: argparse.Namespace) -> None:
    from repro.experiments.exp5_serving import (
        POLICIES,
        headline_claims,
        run_serving_experiment,
    )

    telemetry = _telemetry_from_flags(args)
    results = run_serving_experiment(
        _scenario(args), telemetry=telemetry
    )
    print("prequential serving error over time:")
    for policy in POLICIES:
        print(
            format_series(
                policy, results[policy].error_history, points=12
            )
        )
    print(f"\n{'policy':<8} {'avg error':>10} {'final':>8} transitions")
    for policy in POLICIES:
        point = results[policy]
        moves = ", ".join(
            f"{k}={v}" for k, v in sorted(point.transitions.items())
        )
        print(
            f"{policy:<8} {point.average_error:>10.4f} "
            f"{point.final_error:>8.4f} {moves or '-'}"
        )
    claims = headline_claims(results)
    print(
        f"gated vs blind improvement: "
        f"{claims['gated_vs_blind_improvement']:+.4f} "
        f"(promotions={claims['gated_promotions']:.0f}, "
        f"rejections={claims['gated_rejections']:.0f})"
    )
    _finish_telemetry(args, telemetry)


def _command_exp7(args: argparse.Namespace) -> None:
    from repro.experiments.exp7_traffic import (
        PHASES,
        default_traffic_config,
        headline_claims,
        run_traffic_experiment,
    )

    scenario = _scenario(args)
    config = default_traffic_config(scenario)
    rules = None
    if getattr(args, "monitor", None) is not None:
        from repro.traffic.slo import monitor_rules_for_traffic

        rules = monitor_rules_for_traffic(
            p99_budget=config.p99_budget,
            shed_per_window=config.shed_per_window,
        )
    telemetry = _telemetry_from_flags(args, rules=rules)
    result = run_traffic_experiment(
        scenario,
        config=config,
        telemetry=telemetry,
        verify_identity=not args.skip_identity_check,
    )
    print(
        f"{'phase':<10} {'mode':<7} {'arrivals':>8} {'shed':>6} "
        f"{'p99 lat':>9} {'batches':>8} {'mean size':>9}"
    )
    for phase in PHASES:
        outcome = result.phases[phase]
        report = outcome.result.report
        print(
            f"{phase:<10} {outcome.mode:<7} {report.arrivals:>8} "
            f"{report.shed:>6} {report.latency['p99']:>9.4f} "
            f"{report.batches:>8} {report.mean_batch_size:>9.2f}"
        )
    claims = headline_claims(result)
    print(
        f"\nspike vs steady p99 ratio: "
        f"{claims['spike_vs_steady_p99_ratio']:.2f}x, "
        f"shed during spike: {claims['spike_shed']:.0f}, "
        f"training chunks during run: "
        f"{claims['training_chunks_during_run']:.0f}"
    )
    if not args.skip_identity_check:
        print(
            "batched == row-at-a-time: "
            f"{'yes' if result.bit_identical else 'NO'}; "
            "replay byte-identical: "
            f"{'yes' if result.replay_identical else 'NO'}"
        )
    _finish_telemetry(args, telemetry)
    if not (result.bit_identical and result.replay_identical):
        return 1


def _command_traffic(args: argparse.Namespace) -> int:
    import tempfile

    from repro.traffic import (
        BurstEpisode,
        OpenLoopGenerator,
        SimulationConfig,
        TrafficPattern,
        TrafficSimulator,
    )

    scenario = _scenario(args)
    bursts = ()
    if args.burst is not None:
        start, duration, multiplier = args.burst
        bursts = (
            BurstEpisode(
                start=start, duration=duration, multiplier=multiplier
            ),
        )
    pattern = TrafficPattern(base_rate=args.rate, bursts=bursts)

    def generate(pool_rows: int):
        generator = OpenLoopGenerator(
            pattern,
            num_users=args.users,
            pool_rows=pool_rows,
            seed=scenario.seed,
        )
        return generator.generate(args.horizon)

    if args.action == "synth":
        first = generate(args.pool_rows)
        second = generate(args.pool_rows)
        identical = first.digest() == second.digest()
        print(
            f"requests={first.num_requests} rows={first.num_rows} "
            f"distinct_users={len(set(first.users.tolist()))}"
        )
        print(f"digest={first.digest()}")
        print(
            "second generation "
            + ("byte-identical" if identical else "DIVERGED")
        )
        return 0 if identical else 1

    # replay: simulate the same stream twice on fresh endpoints.
    from repro.experiments.exp7_traffic import (
        _build_world,
        default_traffic_config,
    )
    from repro.serving.endpoint import ServingEndpoint

    config = default_traffic_config(scenario)

    def simulate(root):
        _, registry, pool, _, _, _ = _build_world(
            scenario, config, root
        )
        endpoint = ServingEndpoint(registry, seed=scenario.seed)
        simulator = TrafficSimulator(
            endpoint, pool, SimulationConfig()
        )
        return simulator.run(generate(pool.num_rows))

    with tempfile.TemporaryDirectory() as root_a:
        first = simulate(root_a)
    with tempfile.TemporaryDirectory() as root_b:
        second = simulate(root_b)
    for line in first.report.summary_lines():
        print(line)
    identical = first.digest() == second.digest()
    print(f"digest={first.digest()}")
    print("replay " + ("byte-identical" if identical else "DIVERGED"))
    return 0 if identical else 1


def _command_serve(args: argparse.Namespace) -> None:
    import contextlib
    import tempfile

    import numpy as np

    from repro.core.platform import ContinuousDeploymentPlatform
    from repro.experiments.exp5_serving import default_gate_config
    from repro.ml.metrics import PrequentialTracker
    from repro.serving import (
        ModelRegistry,
        RolloutController,
        ServingEndpoint,
    )

    scenario = _scenario(args)
    telemetry = None
    if args.trace is not None:
        from repro.obs import JsonlSink, Telemetry

        telemetry = Telemetry(sink=JsonlSink(args.trace))

    with contextlib.ExitStack() as stack:
        root = args.registry
        if root is None:
            root = stack.enter_context(tempfile.TemporaryDirectory())
            print(f"using a temporary registry at {root}")
        registry = ModelRegistry(root, telemetry=telemetry)

        if registry.live_version is None:
            print("empty registry: bootstrapping the initial version…")
            pipeline = scenario.make_pipeline()
            model = scenario.make_model()
            optimizer = scenario.make_optimizer()
            platform = ContinuousDeploymentPlatform(
                pipeline,
                model,
                optimizer,
                config=scenario.continuous_config,
                seed=scenario.seed,
                telemetry=telemetry,
                registry=registry,
            )
            platform.initial_fit(
                scenario.make_initial_data(),
                seed=scenario.seed,
                store=True,
                **scenario.initial_fit_kwargs,
            )
            first = registry.register(pipeline, model, optimizer)
            registry.promote(first.version, reason="initial deployment")
        else:
            print(f"resuming: {registry.live_version} is live")
            bundle = registry.load_live()
            platform = ContinuousDeploymentPlatform(
                bundle.pipeline,
                bundle.model,
                bundle.optimizer,
                config=scenario.continuous_config,
                seed=scenario.seed,
                telemetry=telemetry,
                registry=registry,
            )

        endpoint = ServingEndpoint(
            registry, seed=scenario.seed, telemetry=telemetry
        )
        controller = RolloutController(
            registry,
            endpoint,
            metric=scenario.metric,
            config=default_gate_config(scenario),
            telemetry=telemetry,
        )
        tracker = PrequentialTracker(
            kind="rate" if scenario.metric == "classification" else "rmse"
        )
        history = []
        staged = 0
        for chunk_index, table in enumerate(scenario.make_stream()):
            # Prequential: serve the chunk first, then let the
            # platform train on it.
            served = endpoint.predict(table, chunk_index=chunk_index)
            if len(served.labels):
                if scenario.metric == "classification":
                    error_sum = float(
                        np.sum(served.predictions != served.labels)
                    )
                else:
                    residual = served.predictions - served.labels
                    error_sum = float(np.sum(residual * residual))
                tracker.add_chunk(error_sum, len(served.labels))
            history.append(tracker.value())
            action = controller.observe(served)
            if action != "continue":
                print(
                    f"  chunk {chunk_index}: {action} "
                    f"(live={registry.live_version})"
                )
            platform.observe(table)
            if (
                platform.registered_versions
                and controller.state in ("idle", "monitoring")
            ):
                latest = platform.registered_versions[-1]
                if latest.status == "candidate":
                    controller.stage(
                        latest.version,
                        mode=args.mode,
                        fraction=args.fraction,
                    )
                    staged += 1
                    print(
                        f"  chunk {chunk_index}: staged "
                        f"{latest.version} as {args.mode}"
                    )

        print()
        print(format_series("serving error", history, points=12))
        print(
            f"\n{'version':<8} {'status':<12} {'parent':<8} "
            f"{'chunks':>6} {'cost':>8}"
        )
        for info in registry.list_versions():
            print(
                f"{info.version:<8} {info.status:<12} "
                f"{info.parent or '-':<8} {info.chunks_observed:>6} "
                f"{info.training_cost:>8.2f}"
            )
        print(
            f"\nlive={registry.live_version}  staged={staged}  "
            + "  ".join(
                f"{action}s="
                + str(
                    sum(
                        1 for entry in controller.log
                        if entry["action"] == action
                    )
                )
                for action in ("promote", "reject", "rollback")
            )
        )
        if telemetry is not None:
            from repro.obs import format_summary

            telemetry.close()
            print(f"\ntrace written to {args.trace}")
            print(format_summary(telemetry.summary()))


def _command_registry(args: argparse.Namespace) -> None:
    from repro.serving import ModelRegistry

    from pathlib import Path

    root = Path(args.registry_dir)
    if not (root / "registry.json").exists():
        raise SystemExit(f"no registry manifest under {root}")
    registry = ModelRegistry(root)
    action = args.action
    if action in ("show", "promote") and args.version is None:
        raise SystemExit(f"registry {action} requires a VERSION")
    if action == "list":
        print(
            f"{'version':<8} {'status':<12} {'parent':<8} "
            f"{'chunks':>6} {'cost':>8}  metrics"
        )
        for info in registry.list_versions():
            metrics = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(info.metrics.items())
            )
            collected = " [gc]" if info.collected else ""
            print(
                f"{info.version:<8} {info.status:<12} "
                f"{info.parent or '-':<8} {info.chunks_observed:>6} "
                f"{info.training_cost:>8.2f}  {metrics or '-'}"
                f"{collected}"
            )
        print(f"live: {registry.live_version or '-'}")
    elif action == "show":
        info = registry.get(args.version)
        for name, value in sorted(info.to_dict().items()):
            print(f"{name:>15}: {value}")
        related = [
            entry for entry in registry.transitions
            if entry.get("version") == args.version
            or entry.get("failed") == args.version
        ]
        for entry in related:
            print(f"{'transition':>15}: {entry}")
    elif action == "promote":
        info = registry.promote(args.version, reason=args.reason)
        print(f"{info.version} is live")
    elif action == "rollback":
        info = registry.rollback(reason=args.reason)
        print(f"rolled back; {info.version} is live")
    else:  # gc
        collected = registry.gc(keep=args.keep)
        print(
            f"collected {len(collected)} bundle(s)"
            + (": " + ", ".join(collected) if collected else "")
        )


def _checkpoint_config(args: argparse.Namespace):
    if args.checkpoint_dir is None:
        return None
    from repro.reliability import CheckpointConfig

    return CheckpointConfig(
        directory=args.checkpoint_dir,
        cadence_chunks=args.cadence,
        keep=args.keep,
    )


def _retry_policy(args: argparse.Namespace, scenario: Scenario):
    if not args.retry:
        return None
    from repro.reliability import RetryPolicy

    return RetryPolicy(seed=scenario.seed)


def _sigkill_stream(stream, kill_before_chunk: int):
    """Yield from ``stream``, SIGKILL-ing this process at the kill
    point — a *real* crash (no cleanup, no atexit) for the recovery
    smoke test."""
    import os
    import signal

    def generate():
        for index, table in enumerate(stream):
            if index == kill_before_chunk:
                os.kill(os.getpid(), signal.SIGKILL)
            yield table

    return generate()


def _print_run_result(result, deployment) -> None:
    print(format_series("error", result.error_history, points=12))
    print(
        format_series(
            "cost", result.cost_history, points=12,
            float_format="{:.2f}",
        )
    )
    counters = ", ".join(
        f"{name}={value}"
        for name, value in sorted(result.counters.items())
    )
    print(
        f"approach={result.approach} chunks={result.chunks_processed} "
        f"final_error={result.final_error:.4f} "
        f"total_cost={result.total_cost:.2f}"
    )
    print(f"counters: {counters or '-'}")
    if result.recovery is not None:
        print(
            f"recovered from checkpoint at chunk "
            f"{result.recovery.cursor}"
        )
    cursor = deployment.reliability.last_checkpoint_cursor
    if cursor is not None:
        print(f"last checkpoint written at chunk {cursor}")


def _command_run(args: argparse.Namespace) -> None:
    from repro.experiments.common import make_deployment
    from repro.reliability import FaultPlan, SimulatedCrash

    if args.approach == "fleet":
        raise SystemExit(
            "'repro run' drives one pipeline; use 'repro fleet run' "
            "to execute a fleet (--approach fleet is recover-only)"
        )
    scenario = _scenario(args)
    fault_plan = None
    if args.kill_at is not None:
        # The run fully processes kill_at chunks, then dies pulling
        # the next one.
        from repro.reliability.sites import STREAM_READ

        fault_plan = FaultPlan.crash_at(
            STREAM_READ, args.kill_at + 1
        )
    stream = scenario.make_stream()
    if args.sigkill_at is not None:
        stream = _sigkill_stream(stream, args.sigkill_at)
    telemetry = _telemetry_from_flags(args)
    deployment = make_deployment(
        scenario,
        args.approach,
        telemetry=telemetry,
        checkpoint=_checkpoint_config(args),
        fault_plan=fault_plan,
        retry=_retry_policy(args, scenario),
    )
    deployment.initial_fit(
        scenario.make_initial_data(),
        seed=scenario.seed,
        **scenario.initial_fit_kwargs,
    )
    try:
        result = deployment.run(stream)
    except SimulatedCrash as crash:
        cursor = deployment.reliability.last_checkpoint_cursor
        print(f"crashed: {crash}")
        print(
            f"last checkpoint at chunk {cursor}; resume with: "
            f"repro recover --approach {args.approach} "
            f"--checkpoint-dir {args.checkpoint_dir} "
            f"--dataset {args.dataset} --scale {args.scale}"
            if cursor is not None
            else "no checkpoint was written; the run is lost"
        )
        # No health export on the crash path — the monitor state rides
        # in the checkpoint and 'repro recover --monitor' finishes the
        # timeline; just flush the trace file.
        if telemetry is not None:
            telemetry.close()
        raise SystemExit(17) from None
    _print_run_result(result, deployment)
    _finish_telemetry(args, telemetry)


def _command_recover(args: argparse.Namespace) -> None:
    from repro.experiments.common import make_deployment

    if args.checkpoint_dir is None:
        raise SystemExit("recover requires --checkpoint-dir")
    if args.approach == "fleet":
        return _recover_fleet(args)
    scenario = _scenario(args)
    telemetry = _telemetry_from_flags(args)
    deployment = make_deployment(
        scenario,
        args.approach,
        telemetry=telemetry,
        checkpoint=_checkpoint_config(args),
        retry=_retry_policy(args, scenario),
    )
    # No initial_fit: all fitted state comes from the checkpoint.
    result = deployment.recover(scenario.make_stream())
    _print_run_result(result, deployment)
    _finish_telemetry(args, telemetry)


def _recover_fleet(args: argparse.Namespace) -> None:
    """``repro recover --approach fleet``: resume a whole fleet.

    The spec rides inside the checkpoint, so the directory is all a
    recovery needs; continuation is byte-identical to the
    uninterrupted run.
    """
    from repro.fleet import FleetOrchestrator
    from repro.fleet.alerts import fleet_rules
    from repro.reliability import CheckpointConfig

    rules = (
        fleet_rules()
        if getattr(args, "monitor", None) is not None
        else None
    )
    telemetry = _telemetry_from_flags(args, rules=rules)
    orchestrator = FleetOrchestrator.recover(
        CheckpointConfig(
            directory=args.checkpoint_dir,
            cadence_chunks=args.cadence,
            keep=args.keep,
        ),
        telemetry=telemetry,
    )
    print(
        f"recovered fleet at epoch {orchestrator.epoch} "
        f"({len(orchestrator.tenants)} tenants); resuming"
    )
    result = orchestrator.run()
    _print_fleet_result(result)
    _finish_telemetry(args, telemetry)


def _print_fleet_result(result) -> None:
    """Tenant table + fleet summary + the byte-identity digest."""
    print(
        f"{'tenant':<10} {'weight':>6} {'trainings':>9} "
        f"{'error':>10}"
    )
    for name, weight, trainings, error in zip(
        result.tenants,
        result.weights,
        result.trainings,
        result.per_tenant_error,
    ):
        print(
            f"{name:<10} {weight:>6.1f} {trainings:>9} "
            f"{error:>10.5f}"
        )
    print(
        f"\npolicy={result.policy} epochs={result.epochs} "
        f"aggregate_error={result.aggregate_error:.5f} "
        f"trainings={sum(result.trainings)} "
        f"rescues={result.rescues} "
        f"overdrafts={result.overdrafts} "
        f"cost={result.total_cost:.3f}"
    )
    print(f"fleet digest={result.digest}")
    if result.telemetry_digest is not None:
        print(f"telemetry digest={result.telemetry_digest}")


def _fleet_spec(args: argparse.Namespace):
    """The fleet spec 'repro fleet' runs: --spec file or generated."""
    from repro.fleet import FleetSpec, make_fleet

    if args.spec is not None:
        from pathlib import Path

        return FleetSpec.from_json(
            Path(args.spec).read_text(encoding="utf-8")
        )
    return make_fleet(
        args.tenants,
        seed=args.seed,
        policy=args.policy,
        chunks=args.chunks,
        rows=args.rows,
    )


def _command_fleet(args: argparse.Namespace) -> Optional[int]:
    from repro.fleet import FleetOrchestrator
    from repro.fleet.alerts import fleet_rules
    from repro.reliability import CheckpointConfig

    if args.action == "status":
        if args.checkpoint_dir is None:
            raise SystemExit("fleet status requires --checkpoint-dir")
        status = FleetOrchestrator.peek(args.checkpoint_dir)
        print(
            f"policy={status['policy']} epoch={status['epoch']} "
            f"active={status['active']}/{status['num_tenants']} "
            f"cost={status['clock']:.3f} "
            f"overdrafts={status['overdrafts']}"
        )
        print(f"{'tenant':<10} {'cursor':>6} {'trainings':>9}")
        for name, cursor, trainings in zip(
            status["names"], status["cursors"], status["trainings"]
        ):
            print(f"{name:<10} {cursor:>6} {trainings:>9}")
        return None

    spec = _fleet_spec(args)
    if args.action == "replay":
        # Two fresh runs, both privately instrumented so the replay
        # also proves the telemetry stream is deterministic.
        from repro.obs import Telemetry

        results = [
            FleetOrchestrator(spec, telemetry=Telemetry()).run()
            for _ in range(2)
        ]
        first, second = results
        _print_fleet_result(first)
        schedules = first.digest == second.digest
        telemetry_ok = (
            first.telemetry_digest == second.telemetry_digest
        )
        print(
            "\nreplay byte-identical: "
            f"schedule {'yes' if schedules else 'NO'}, "
            f"telemetry {'yes' if telemetry_ok else 'NO'}"
        )
        return None if schedules and telemetry_ok else 1

    rules = (
        fleet_rules()
        if getattr(args, "monitor", None) is not None
        else None
    )
    telemetry = _telemetry_from_flags(args, rules=rules)
    checkpoint = None
    if args.checkpoint_dir is not None:
        checkpoint = CheckpointConfig(
            directory=args.checkpoint_dir,
            cadence_chunks=args.cadence,
            keep=args.keep,
        )
    orchestrator = FleetOrchestrator(
        spec, telemetry=telemetry, checkpoint=checkpoint
    )
    if args.sigkill_at_epoch is not None:
        import os
        import signal

        orchestrator.setup()
        while orchestrator.has_work():
            if orchestrator.epoch >= args.sigkill_at_epoch:
                os.kill(os.getpid(), signal.SIGKILL)
            orchestrator.run_epoch()
        result = orchestrator.result()
    else:
        result = orchestrator.run()
    _print_fleet_result(result)
    _finish_telemetry(args, telemetry)
    return None


def _command_exp8(args: argparse.Namespace) -> Optional[int]:
    from repro.experiments.exp8_fleet import (
        bench_record,
        format_comparison,
        headline_claims,
        run_fleet_experiment,
    )
    from repro.fleet.alerts import fleet_rules

    rules = (
        fleet_rules()
        if getattr(args, "monitor", None) is not None
        else None
    )
    telemetry = _telemetry_from_flags(args, rules=rules)
    result = run_fleet_experiment(
        num_tenants=args.tenants,
        seed=args.seed,
        chunks=args.chunks,
        rows=args.rows,
        telemetry=telemetry,
        verify_identity=not args.skip_identity_check,
    )
    print(format_comparison(result))
    claims = headline_claims(result)
    print(
        f"\nfair-share advantage at equal budget "
        f"({claims['fair_trainings']:.0f} trainings each): "
        f"{claims['fair_advantage']:+.5f} aggregate error "
        f"({'fair_share' if result.fair_beats_round_robin else 'round_robin'} wins); "
        f"rescues={claims['fair_rescues']:.0f} "
        f"balance={claims['fair_balance']:.4f}"
    )
    if not args.skip_identity_check:
        print(
            "same-seed replay byte-identical: schedule "
            f"{'yes' if result.digests_identical else 'NO'}, "
            "telemetry "
            f"{'yes' if result.telemetry_identical else 'NO'}"
        )
    if args.bench_store is not None:
        from repro.obs.baseline import BaselineStore

        record = bench_record(
            result, args.tenants, args.seed, args.chunks
        )
        path = BaselineStore(args.bench_store).append(record)
        print(f"trajectory record appended -> {path}")
    _finish_telemetry(args, telemetry)
    ok = result.fair_beats_round_robin and result.equal_budget
    if not args.skip_identity_check:
        ok = (
            ok
            and result.digests_identical
            and result.telemetry_identical
        )
    return None if ok else 1


def _changed_files(root, ref: str, config):
    """Changed + untracked ``.py`` files vs ``ref``, lint-scoped.

    Only files under the configured roots (and not excluded) are
    returned, so ``--diff`` composes with the project policy. A git
    failure (bad ref, not a repository) raises ``ConfigError`` — a
    broken diff must never look like a clean run.
    """
    import subprocess

    from repro.analysis import ConfigError

    def _git(*argv: str) -> str:
        try:
            proc = subprocess.run(
                ["git", *argv],
                cwd=str(root),
                capture_output=True,
                text=True,
                timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired) as error:
            raise ConfigError(f"cannot run git: {error}") from error
        if proc.returncode != 0:
            raise ConfigError(
                f"git {' '.join(argv)} failed: "
                f"{proc.stderr.strip() or proc.stdout.strip()}"
            )
        return proc.stdout

    changed = set()
    for line in _git("diff", "--name-only", ref, "--", ".").splitlines():
        if line.strip():
            changed.add(line.strip())
    for line in _git(
        "ls-files", "--others", "--exclude-standard"
    ).splitlines():
        if line.strip():
            changed.add(line.strip())
    in_roots = tuple(r.rstrip("/") + "/" for r in config.roots)
    selected = []
    for rel in sorted(changed):
        if not rel.endswith(".py") or config.is_excluded(rel):
            continue
        if not (rel.startswith(in_roots) or rel in config.roots):
            continue
        if (root / rel).exists():  # deleted files can't be linted
            selected.append(rel)
    return selected


def _command_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        ConfigError,
        default_config,
        format_json,
        format_rules,
        format_text,
        load_baseline,
        load_config,
        run_lint,
        write_baseline,
    )

    if args.list_rules:
        print(format_rules())
        return 0
    root = Path(args.root)
    try:
        config = (
            load_config(Path(args.config))
            if args.config is not None
            else default_config()
        )
        if args.select is not None:
            ids = tuple(
                part.strip().upper()
                for part in args.select.split(",")
                if part.strip()
            )
            from dataclasses import replace

            config = replace(config, select=ids)
        paths = args.paths or None
        if args.diff is not None:
            if args.paths:
                raise ConfigError(
                    "--diff and explicit paths are mutually exclusive"
                )
            paths = _changed_files(root, args.diff, config)
            if not paths:
                print(
                    f"reprolint: no changed python files vs "
                    f"{args.diff}; nothing to lint"
                )
                return 0
        baseline = None
        if args.baseline is not None:
            baseline = load_baseline(Path(args.baseline))
        result = run_lint(
            root,
            config=config,
            paths=paths,
            baseline=baseline,
            program=args.program,
        )
    except ConfigError as error:
        print(f"reprolint: config error: {error}", file=sys.stderr)
        return 2
    if args.update_baseline:
        target = Path(
            args.baseline
            if args.baseline is not None
            else config.baseline or "reprolint-baseline.json"
        )
        if not target.is_absolute():
            target = root / target
        write_baseline(target, result.findings)
        print(
            f"baseline updated: {len(result.findings)} finding(s) "
            f"grandfathered into {target}"
        )
        return 0
    if args.format == "json":
        print(format_json(result))
    else:
        print(format_text(result))
    return result.exit_code()


def _command_exp6(args: argparse.Namespace) -> None:
    from repro.experiments.exp6_reliability import (
        DEFAULT_CADENCES,
        headline_claims,
        run_cadence_sweep,
        run_retry_demo,
    )

    scenario = _scenario(args)
    telemetry = _telemetry_from_flags(args)
    cadences = (
        tuple(args.cadences)
        if args.cadences is not None
        else DEFAULT_CADENCES
    )
    points = run_cadence_sweep(
        scenario,
        cadences=cadences,
        kill_after_chunks=args.kill_after,
        approach=args.approach,
        telemetry=telemetry,
    )
    print(
        f"checkpoint cadence sweep (crash after "
        f"{args.kill_after} chunks, approach={args.approach}):"
    )
    print(
        f"{'cadence':>8} {'resume@':>8} {'redo':>6} "
        f"{'redone cost':>12} {'identical':>10}"
    )
    for point in points:
        print(
            f"{point.cadence:>8} {point.resume_cursor:>8} "
            f"{point.redo_chunks:>6} {point.redone_cost:>12.3f} "
            f"{str(point.identical):>10}"
        )
    demo = run_retry_demo(scenario, approach=args.approach)
    print(
        f"\ntransient faults: {demo.faults_planned} planned; "
        f"unprotected run "
        + (
            f"crashed ({demo.unprotected_error})"
            if demo.unprotected_crashed
            else "survived (?)"
        )
    )
    print(
        f"with retry: completed={demo.protected_completed} "
        f"retries={demo.protected_retries} "
        f"identical_to_clean={demo.identical_to_clean}"
    )
    claims = headline_claims(points, demo)
    print(
        f"claims: redo_monotone={claims['redo_monotone']:.0f} "
        f"all_identical={claims['all_identical']:.0f} "
        f"retry_masked={claims['retry_masked']:.0f}"
    )
    _finish_telemetry(args, telemetry)


def _command_perf(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import (
        BaselineStore,
        TolerancePolicy,
        check_record,
        format_profile,
        format_report,
        format_trajectory,
        profile_to_dict,
        run_workload,
        to_collapsed,
    )

    if args.action == "report":
        store = BaselineStore(args.store)
        names = [args.name] if args.name is not None else store.names()
        if not names:
            print(f"no BENCH_*.json trajectories under {store.root}")
            return 0
        for index, name in enumerate(names):
            if index:
                print()
            print(format_trajectory(name, store.load(name)))
        return 0

    if args.action == "profile" and args.trace is not None:
        from repro.obs import profile_trace

        root = profile_trace(args.trace)
        record = None
    else:
        record, root = run_workload(_scenario(args), args.approach)

    if args.action == "profile":
        if args.json_out is not None:
            Path(args.json_out).write_text(
                json.dumps(
                    profile_to_dict(root), indent=2, sort_keys=True
                )
                + "\n",
                encoding="utf-8",
            )
            print(f"profile written to {args.json_out}")
        if args.collapsed is not None:
            Path(args.collapsed).write_text(
                to_collapsed(root) + "\n", encoding="utf-8"
            )
            print(f"collapsed stacks written to {args.collapsed}")
        print(
            format_profile(
                root,
                max_depth=args.depth,
                min_fraction=args.min_fraction,
            )
        )
        return 0

    if args.action == "record":
        store = BaselineStore(args.store)
        path = store.append(record)
        print(
            f"recorded {record.name} "
            f"({len(store.load(record.name))} record(s)) -> {path}"
        )
        print(f"profile digest: {record.profile_digest}")
        return 0

    # check
    store = BaselineStore(
        args.against if args.against is not None else args.store
    )
    history = store.load(record.name)
    policy = TolerancePolicy(
        wall_budget=args.wall_budget,
        window=args.window,
        gate_profile=args.gate_profile,
    )
    report = check_record(record, history, policy=policy)
    print(format_report(report))
    if report.ok and args.record_after_check:
        path = store.append(record)
        print(f"recorded passing run -> {path}")
    return report.exit_code()


_COMMANDS = {
    "exp1": _command_exp1,
    "table3": _command_table3,
    "fig5": _command_fig5,
    "fig6": _command_fig6,
    "table4": _command_table4,
    "fig7": _command_fig7,
    "fig8": _command_fig8,
    "obs": _command_obs,
    "exp5": _command_exp5,
    "exp7": _command_exp7,
    "traffic": _command_traffic,
    "serve": _command_serve,
    "registry": _command_registry,
    "run": _command_run,
    "recover": _command_recover,
    "fleet": _command_fleet,
    "exp8": _command_exp8,
    "exp6": _command_exp6,
    "lint": _command_lint,
    "perf": _command_perf,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Commands return ``None`` for plain success; ``lint`` returns the
    0/1/2 clean/findings/config-error contract.
    """
    args = build_parser().parse_args(argv)
    warnings.simplefilter("ignore", ConvergenceWarning)
    code = _COMMANDS[args.command](args)
    return 0 if code is None else int(code)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
