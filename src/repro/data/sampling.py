"""Chunk sampling strategies (§4.2 of the paper).

Three strategies select historical chunks for proactive training:

* :class:`UniformSampler` — every stored chunk is equally likely.
* :class:`WindowBasedSampler` — uniform over only the ``window_size``
  most recent chunks.
* :class:`TimeBasedSampler` — recency-weighted: the sampling weight of a
  chunk decays exponentially with its age rank, so recent chunks are
  more likely. The paper specifies only "higher probability for recent
  chunks"; we use exponential decay with a configurable half-life
  (measured in chunks).

Samplers draw *without replacement* from the population of available
chunk timestamps — this matches the hypergeometric analysis of §3.2.2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

import numpy as np

from repro.exceptions import SamplingError, ValidationError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int


class Sampler(ABC):
    """Strategy for selecting chunk timestamps for proactive training."""

    #: Short identifier used in configs, reports, and benchmarks.
    name: str = "base"

    @abstractmethod
    def weights(self, timestamps: Sequence[int]) -> np.ndarray:
        """Return unnormalised, non-negative sampling weights.

        ``timestamps`` are the available chunk ids sorted oldest-first.
        A zero weight excludes a chunk from sampling entirely.
        """

    def sample(
        self,
        timestamps: Sequence[int],
        size: int,
        rng: SeedLike = None,
    ) -> List[int]:
        """Draw ``size`` timestamps without replacement.

        When fewer than ``size`` chunks have non-zero weight, every
        eligible chunk is returned (the paper samples *s* out of *n*
        chunks, degrading gracefully early in a deployment when *n* is
        still small).
        """
        if size < 1:
            raise SamplingError(f"sample size must be >= 1, got {size}")
        ordered = sorted(timestamps)
        if not ordered:
            raise SamplingError("cannot sample from an empty population")
        generator = ensure_rng(rng)
        raw_weights = np.asarray(self.weights(ordered), dtype=np.float64)
        if raw_weights.shape != (len(ordered),):
            raise SamplingError(
                f"weights() returned shape {raw_weights.shape}, expected "
                f"({len(ordered)},)"
            )
        if np.any(raw_weights < 0):
            raise SamplingError("sampling weights must be non-negative")
        eligible = np.flatnonzero(raw_weights > 0)
        if eligible.size == 0:
            raise SamplingError("all sampling weights are zero")
        if eligible.size <= size:
            return [ordered[i] for i in eligible]
        probabilities = raw_weights[eligible] / raw_weights[eligible].sum()
        chosen = generator.choice(
            eligible, size=size, replace=False, p=probabilities
        )
        return [ordered[i] for i in sorted(chosen)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UniformSampler(Sampler):
    """Uniform random sampling over the entire stored history."""

    name = "uniform"

    def weights(self, timestamps: Sequence[int]) -> np.ndarray:
        return np.ones(len(timestamps), dtype=np.float64)


class WindowBasedSampler(Sampler):
    """Uniform sampling restricted to the most recent ``window_size`` chunks.

    The *active window* (paper §3.2.2, parameter *w*) always contains
    the newest chunks; older chunks receive zero weight.
    """

    name = "window"

    def __init__(self, window_size: int) -> None:
        self.window_size = check_positive_int(window_size, "window_size")

    def weights(self, timestamps: Sequence[int]) -> np.ndarray:
        count = len(timestamps)
        weights = np.zeros(count, dtype=np.float64)
        start = max(0, count - self.window_size)
        weights[start:] = 1.0
        return weights

    def __repr__(self) -> str:
        return f"WindowBasedSampler(window_size={self.window_size})"


class TimeBasedSampler(Sampler):
    """Recency-weighted sampling with exponential decay.

    A chunk that is ``age`` positions older than the newest chunk gets
    weight ``0.5 ** (age / half_life)``. ``half_life`` therefore is the
    number of chunks after which the sampling weight halves.
    """

    name = "time"

    def __init__(self, half_life: float = 1000.0) -> None:
        self.half_life = check_positive(half_life, "half_life")

    def weights(self, timestamps: Sequence[int]) -> np.ndarray:
        count = len(timestamps)
        ages = np.arange(count - 1, -1, -1, dtype=np.float64)
        return np.power(0.5, ages / self.half_life)

    def __repr__(self) -> str:
        return f"TimeBasedSampler(half_life={self.half_life})"


def make_sampler(
    name: str,
    window_size: int | None = None,
    half_life: float | None = None,
) -> Sampler:
    """Construct a sampler from its config name.

    Accepts ``"uniform"``, ``"window"`` (requires ``window_size``), and
    ``"time"`` (optional ``half_life``).
    """
    if name == UniformSampler.name:
        return UniformSampler()
    if name == WindowBasedSampler.name:
        if window_size is None:
            raise ValidationError(
                "window sampler requires window_size"
            )
        return WindowBasedSampler(window_size)
    if name == TimeBasedSampler.name:
        if half_life is None:
            return TimeBasedSampler()
        return TimeBasedSampler(half_life)
    raise ValidationError(
        f"unknown sampler {name!r}; expected one of "
        f"['uniform', 'window', 'time']"
    )
