"""Bounded chunk storage with oldest-first payload eviction.

Implements the storage unit of §3.2: raw chunks are (by the paper's
assumption) always retained, while materialized feature chunks live in a
bounded region. When the bound is exceeded the *payload* of the oldest
feature chunks is evicted, leaving a :class:`~repro.data.chunk.ChunkStub`
that still references the raw chunk so the pipeline can re-materialize
it on demand (dynamic materialization).

The bound can be expressed as a maximum chunk count (``max_materialized``,
the paper's *m*) or a maximum byte budget (``max_bytes``); whichever is
exceeded first triggers eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.data.chunk import ChunkStub, FeatureChunk, RawChunk
from repro.exceptions import StorageError
from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.reliability.sites import STORAGE_READ

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.reliability.faults import FaultInjector


@dataclass
class StorageStats:
    """Counters describing the life of a :class:`ChunkStorage`."""

    raw_inserted: int = 0
    raw_dropped: int = 0
    features_inserted: int = 0
    features_evicted: int = 0
    feature_hits: int = 0
    feature_misses: int = 0
    bytes_materialized: int = 0

    def hit_rate(self) -> float:
        """Fraction of feature lookups served from materialized storage."""
        total = self.feature_hits + self.feature_misses
        return self.feature_hits / total if total else 0.0


class ChunkStorage:
    """In-memory store for raw chunks and (bounded) feature chunks.

    Parameters
    ----------
    max_materialized:
        Maximum number of feature chunks kept materialized (*m* in the
        paper). ``None`` means unbounded.
    max_bytes:
        Optional byte budget for materialized feature payloads.
    raw_capacity:
        Maximum number of raw chunks retained (*N* in the paper).
        ``None`` (default) keeps all raw chunks — the paper's standing
        assumption. When set, the oldest raw chunks are dropped together
        with their feature chunks/stubs, and the sampler simply never
        sees them (§3.2: "the platform ignores these chunks").
    metrics:
        Optional live metrics registry. When given, evictions bump the
        ``cache.evictions`` counter and the materialized chunk/byte
        levels are mirrored to ``cache.materialized_chunks`` /
        ``cache.materialized_bytes`` gauges — live visibility into the
        numbers :mod:`repro.data.materialization` only derives after
        the fact.
    """

    def __init__(
        self,
        max_materialized: Optional[int] = None,
        max_bytes: Optional[int] = None,
        raw_capacity: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        if max_materialized is not None and max_materialized < 0:
            raise StorageError(
                f"max_materialized must be >= 0, got {max_materialized}"
            )
        if max_bytes is not None and max_bytes < 0:
            raise StorageError(f"max_bytes must be >= 0, got {max_bytes}")
        if raw_capacity is not None and raw_capacity < 1:
            raise StorageError(
                f"raw_capacity must be >= 1, got {raw_capacity}"
            )
        self.max_materialized = max_materialized
        self.max_bytes = max_bytes
        self.raw_capacity = raw_capacity
        self._raw: "OrderedDict[int, RawChunk]" = OrderedDict()
        self._features: "OrderedDict[int, Union[FeatureChunk, ChunkStub]]" = (
            OrderedDict()
        )
        self._materialized_count = 0
        self._materialized_bytes = 0
        self.stats = StorageStats()
        self._metrics = metrics
        #: Optional deterministic fault injector; when set, every raw
        #: read fires the ``storage.read`` site (simulated disk
        #: failures for the reliability layer).
        self.fault_injector = fault_injector

    # ------------------------------------------------------------------
    # Raw chunks
    # ------------------------------------------------------------------
    def put_raw(self, chunk: RawChunk) -> None:
        """Store a raw chunk; evict the oldest if over ``raw_capacity``."""
        if chunk.timestamp in self._raw:
            raise StorageError(
                f"raw chunk {chunk.timestamp} already stored"
            )
        self._raw[chunk.timestamp] = chunk
        self.stats.raw_inserted += 1
        while (
            self.raw_capacity is not None
            and len(self._raw) > self.raw_capacity
        ):
            oldest, __ = self._raw.popitem(last=False)
            self.stats.raw_dropped += 1
            entry = self._features.pop(oldest, None)
            if isinstance(entry, FeatureChunk):
                self._account_eviction(entry)

    def get_raw(self, timestamp: int) -> RawChunk:
        """Return the raw chunk with ``timestamp``.

        Raises :class:`StorageError` if it has been dropped — dynamic
        materialization relies on raw chunks being available.
        """
        if self.fault_injector is not None:
            self.fault_injector.fire(STORAGE_READ)
        try:
            return self._raw[timestamp]
        except KeyError:
            raise StorageError(
                f"raw chunk {timestamp} is not stored (dropped or never "
                f"inserted); cannot re-materialize"
            ) from None

    def peek_raw(self, timestamp: int) -> RawChunk:
        """Like :meth:`get_raw` but without firing fault injection.

        Used by the checkpoint store when spilling payloads: walking
        in-memory state is not a simulated disk read and must not
        consume ``storage.read`` fault occurrences.
        """
        try:
            return self._raw[timestamp]
        except KeyError:
            raise StorageError(
                f"raw chunk {timestamp} is not stored"
            ) from None

    def has_raw(self, timestamp: int) -> bool:
        return timestamp in self._raw

    @property
    def raw_timestamps(self) -> List[int]:
        """Timestamps of all stored raw chunks, oldest first."""
        return list(self._raw)

    @property
    def num_raw(self) -> int:
        return len(self._raw)

    # ------------------------------------------------------------------
    # Feature chunks
    # ------------------------------------------------------------------
    def put_features(self, chunk: FeatureChunk) -> None:
        """Store a materialized feature chunk, evicting as needed.

        Replacing a stub with a re-materialized payload is allowed (that
        *is* dynamic materialization); replacing a live payload is not.
        """
        existing = self._features.get(chunk.timestamp)
        if isinstance(existing, FeatureChunk):
            raise StorageError(
                f"feature chunk {chunk.timestamp} is already materialized"
            )
        if existing is not None:
            # Re-materializing over a stub: remove the stub first but
            # keep the chunk's original position out of the eviction
            # order question by re-inserting at the end (it is now the
            # most recently materialized payload).
            del self._features[chunk.timestamp]
        self._features[chunk.timestamp] = chunk
        self._materialized_count += 1
        self._materialized_bytes += chunk.nbytes()
        self.stats.features_inserted += 1
        self.stats.bytes_materialized = self._materialized_bytes
        self._evict_over_budget()
        if self._metrics is not None:
            self._update_level_gauges()

    def get_features(
        self, timestamp: int
    ) -> Union[FeatureChunk, ChunkStub]:
        """Return the feature chunk or its stub for ``timestamp``.

        Updates hit/miss statistics: a materialized payload is a hit, a
        stub is a miss (the caller must re-materialize).
        """
        try:
            entry = self._features[timestamp]
        except KeyError:
            raise StorageError(
                f"no feature chunk or stub for timestamp {timestamp}"
            ) from None
        if isinstance(entry, FeatureChunk):
            self.stats.feature_hits += 1
        else:
            self.stats.feature_misses += 1
        return entry

    def peek_features(
        self, timestamp: int
    ) -> Union[FeatureChunk, ChunkStub]:
        """Like :meth:`get_features` but without touching hit/miss stats.

        Used for population scans and introspection that must not skew
        the utilization accounting.
        """
        try:
            return self._features[timestamp]
        except KeyError:
            raise StorageError(
                f"no feature chunk or stub for timestamp {timestamp}"
            ) from None

    def is_materialized(self, timestamp: int) -> bool:
        """True when the feature payload for ``timestamp`` is in memory."""
        return isinstance(self._features.get(timestamp), FeatureChunk)

    def has_features_entry(self, timestamp: int) -> bool:
        """True when a feature chunk *or stub* exists for ``timestamp``."""
        return timestamp in self._features

    @property
    def feature_timestamps(self) -> List[int]:
        """Timestamps with a feature entry (payload or stub)."""
        return list(self._features)

    @property
    def materialized_timestamps(self) -> List[int]:
        """Timestamps whose feature payload is currently materialized."""
        return [
            t
            for t, entry in self._features.items()
            if isinstance(entry, FeatureChunk)
        ]

    @property
    def num_materialized(self) -> int:
        return self._materialized_count

    @property
    def materialized_bytes(self) -> int:
        return self._materialized_bytes

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _evict_over_budget(self) -> None:
        """Evict oldest payloads until both bounds hold.

        Strictly oldest-first, including a just-inserted chunk: with a
        budget of zero every payload is evicted immediately, matching
        the paper's materialization rate 0.0 configuration.
        """
        while self._over_budget():
            victim = self._oldest_materialized()
            if victim is None:
                break
            self.evict(victim)

    def _over_budget(self) -> bool:
        if (
            self.max_materialized is not None
            and self._materialized_count > self.max_materialized
        ):
            return True
        if (
            self.max_bytes is not None
            and self._materialized_bytes > self.max_bytes
        ):
            return True
        return False

    def _oldest_materialized(self) -> Optional[int]:
        for timestamp, entry in self._features.items():
            if isinstance(entry, FeatureChunk):
                return timestamp
        return None

    def evict(self, timestamp: int) -> ChunkStub:
        """Drop the payload of a materialized chunk, leaving a stub."""
        entry = self._features.get(timestamp)
        if not isinstance(entry, FeatureChunk):
            raise StorageError(
                f"feature chunk {timestamp} is not materialized"
            )
        stub = ChunkStub.of(entry)
        self._features[timestamp] = stub
        self._account_eviction(entry)
        return stub

    def _account_eviction(self, chunk: FeatureChunk) -> None:
        self._materialized_count -= 1
        self._materialized_bytes -= chunk.nbytes()
        self.stats.features_evicted += 1
        self.stats.bytes_materialized = self._materialized_bytes
        if self._metrics is not None:
            self._metrics.counter(names.CACHE_EVICTIONS).inc()
            self._update_level_gauges()

    def _update_level_gauges(self) -> None:
        self._metrics.gauge(names.CACHE_MATERIALIZED_CHUNKS).set(
            self._materialized_count
        )
        self._metrics.gauge(names.CACHE_MATERIALIZED_BYTES).set(
            self._materialized_bytes
        )

    def set_byte_budget(self, max_bytes: Optional[int]) -> int:
        """Install a new byte budget and evict down to it immediately.

        The fleet orchestrator re-divides the global materialization
        cap across tenants every scheduling epoch; this is the public
        enforcement point. Returns the number of payloads evicted to
        satisfy the new budget (0 when already under it).
        """
        if max_bytes is not None and max_bytes < 0:
            raise StorageError(f"max_bytes must be >= 0, got {max_bytes}")
        before = self.stats.features_evicted
        self.max_bytes = max_bytes
        self._evict_over_budget()
        if self._metrics is not None:
            self._update_level_gauges()
        return self.stats.features_evicted - before

    def clear_features(self) -> None:
        """Evict every materialized payload (used by ablation benches)."""
        for timestamp in self.materialized_timestamps:
            self.evict(timestamp)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def manifest(self) -> Dict[str, object]:
        """Cache manifest: chunk ids + stats, no payload arrays.

        Entries appear in insertion order (which *is* the eviction
        order), so a restore reproduces future eviction decisions
        exactly. Payloads are persisted separately by the checkpoint
        store; the manifest only records which ids exist and which of
        them are currently materialized.
        """
        return {
            "raw": list(self._raw),
            "features": [
                {
                    "timestamp": timestamp,
                    "raw_reference": entry.raw_reference,
                    "materialized": isinstance(entry, FeatureChunk),
                }
                for timestamp, entry in self._features.items()
            ],
            "stats": asdict(self.stats),
        }

    def restore(
        self,
        raw: List[RawChunk],
        features: List[Union[FeatureChunk, ChunkStub]],
        stats: Dict[str, int],
    ) -> None:
        """Rebuild storage contents from checkpointed state.

        ``raw`` and ``features`` must be in the original insertion
        order (the manifest's order); bounds/configuration come from
        the constructor, not the checkpoint.
        """
        self._raw = OrderedDict(
            (chunk.timestamp, chunk) for chunk in raw
        )
        self._features = OrderedDict(
            (entry.timestamp, entry) for entry in features
        )
        self._materialized_count = sum(
            1 for entry in features if isinstance(entry, FeatureChunk)
        )
        self._materialized_bytes = sum(
            entry.nbytes()
            for entry in features
            if isinstance(entry, FeatureChunk)
        )
        self.stats = StorageStats(**stats)
        if self._metrics is not None:
            self._update_level_gauges()
