"""A minimal column-oriented table.

Raw training data flows through the pipeline as a :class:`Table`: an
ordered mapping of column name to a 1-D :class:`numpy.ndarray`, all of
equal length. Components append, drop, and rewrite columns; row filters
(the anomaly detector) select subsets of rows across every column at
once.

A ``Table`` is deliberately much smaller than pandas: only the
operations the pipeline framework needs, implemented directly on numpy,
with strict schema checking (:class:`repro.exceptions.SchemaError`).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence

import numpy as np

from repro.exceptions import SchemaError


class Table:
    """An immutable-schema, column-oriented batch of rows.

    Parameters
    ----------
    columns:
        Mapping of column name to 1-D array-like. All columns must have
        the same length. Arrays are converted with ``np.asarray`` and
        never copied when already ndarrays, so callers must not mutate
        the inputs afterwards.
    """

    __slots__ = ("_columns", "_num_rows", "_cached_num_values")

    def __init__(self, columns: Mapping[str, Sequence] | None = None) -> None:
        self._columns: Dict[str, np.ndarray] = {}
        self._num_rows = 0
        self._cached_num_values: int | None = None
        first = True
        for name, values in (columns or {}).items():
            array = np.asarray(values)
            if array.ndim != 1:
                raise SchemaError(
                    f"column {name!r} must be 1-D, got shape {array.shape}"
                )
            if first:
                self._num_rows = len(array)
                first = False
            elif len(array) != self._num_rows:
                raise SchemaError(
                    f"column {name!r} has {len(array)} rows, "
                    f"expected {self._num_rows}"
                )
            self._columns[str(name)] = array

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows (length of every column)."""
        return self._num_rows

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def column_names(self) -> List[str]:
        """Column names in insertion order."""
        return list(self._columns)

    @property
    def num_cells(self) -> int:
        """Number of cells (rows x columns), payload size ignored."""
        return self._num_rows * len(self._columns)

    @property
    def num_values(self) -> int:
        """Total number of scalar values stored in the table.

        This is the quantity *p* in the paper's §3.2.1 size analysis
        and the unit the cost model charges per scan. Numeric cells
        count 1 each; an object cell holding a sparse ``{index: value}``
        dict counts its entries; an object cell holding a raw text
        record counts its whitespace-separated tokens. The count is
        computed lazily and cached (tables are immutable).
        """
        if self._cached_num_values is None:
            total = 0
            for array in self._columns.values():
                if array.dtype == object and len(array):
                    total += _object_column_values(array)
                else:
                    total += len(array)
            self._cached_num_values = total
        return self._cached_num_values

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(
            np.array_equal(self._columns[c], other._columns[c])
            for c in self._columns
        )

    def __repr__(self) -> str:
        cols = ", ".join(self._columns)
        return f"Table({self._num_rows} rows: [{cols}])"

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Return the array for column ``name``.

        Raises :class:`SchemaError` when the column does not exist; the
        message lists the available columns to ease debugging pipeline
        wiring mistakes.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    # ------------------------------------------------------------------
    # Functional updates (every method returns a new Table)
    # ------------------------------------------------------------------
    def with_column(self, name: str, values: Sequence) -> "Table":
        """Return a new table with column ``name`` added or replaced."""
        array = np.asarray(values)
        if self._columns and len(array) != self._num_rows:
            raise SchemaError(
                f"column {name!r} has {len(array)} rows, "
                f"expected {self._num_rows}"
            )
        columns = dict(self._columns)
        columns[str(name)] = array
        return Table(columns)

    def with_columns(self, new: Mapping[str, Sequence]) -> "Table":
        """Return a new table with all columns in ``new`` added/replaced."""
        table = self
        for name, values in new.items():
            table = table.with_column(name, values)
        return table

    def without_columns(self, names: Iterable[str]) -> "Table":
        """Return a new table lacking every column in ``names``.

        Missing names raise :class:`SchemaError` so that a feature
        selector silently dropping the wrong column cannot go unnoticed.
        """
        drop = set(names)
        unknown = drop - set(self._columns)
        if unknown:
            raise SchemaError(f"cannot drop unknown columns {sorted(unknown)}")
        return Table(
            {n: v for n, v in self._columns.items() if n not in drop}
        )

    def select(self, names: Sequence[str]) -> "Table":
        """Return a new table containing exactly ``names`` in order."""
        return Table({name: self.column(name) for name in names})

    def filter_rows(self, mask: Sequence[bool]) -> "Table":
        """Return a new table with only the rows where ``mask`` is true."""
        mask_array = np.asarray(mask, dtype=bool)
        if len(mask_array) != self._num_rows:
            raise SchemaError(
                f"mask has {len(mask_array)} entries, "
                f"expected {self._num_rows}"
            )
        return Table({n: v[mask_array] for n, v in self._columns.items()})

    def take(self, indices: Sequence[int]) -> "Table":
        """Return a new table with the rows at ``indices`` (in order)."""
        idx = np.asarray(indices, dtype=np.intp)
        return Table({n: v[idx] for n, v in self._columns.items()})

    def head(self, count: int) -> "Table":
        """Return the first ``count`` rows."""
        return Table({n: v[:count] for n, v in self._columns.items()})

    # ------------------------------------------------------------------
    # Combination / conversion
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Vertically concatenate tables with identical schemas."""
        tables = [t for t in tables if t.num_rows or t.num_columns]
        if not tables:
            return Table()
        names = tables[0].column_names
        for table in tables[1:]:
            if table.column_names != names:
                raise SchemaError(
                    f"schema mismatch in concat: {table.column_names} "
                    f"vs {names}"
                )
        return Table(
            {n: np.concatenate([t.column(n) for t in tables]) for n in names}
        )

    def to_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Stack the given (default: all) columns into a 2-D float array."""
        names = list(names) if names is not None else self.column_names
        if not names:
            return np.empty((self._num_rows, 0), dtype=np.float64)
        return np.column_stack(
            [np.asarray(self.column(n), dtype=np.float64) for n in names]
        )

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Return a shallow copy of the column mapping."""
        return dict(self._columns)

    def nbytes(self) -> int:
        """Approximate memory footprint of the column payloads."""
        return int(sum(v.nbytes for v in self._columns.values()))

    def digest(self) -> str:
        """SHA-256 content digest of the table.

        Covers column names (in order), dtypes, and cell contents, so
        two tables with identical data always hash identically — the
        chunk-node identity the provenance ledger records. Numeric
        columns hash their raw bytes; object columns (sparse
        ``{index: value}`` dicts, raw text records) hash a canonical
        per-cell rendering.
        """
        body = hashlib.sha256()
        for name, array in self._columns.items():
            body.update(name.encode("utf-8"))
            body.update(b"\x00")
            if array.dtype == object:
                for cell in array:
                    body.update(_object_cell_bytes(cell))
                    body.update(b"\x1e")
            else:
                body.update(array.dtype.str.encode("ascii"))
                body.update(np.ascontiguousarray(array).tobytes())
            body.update(b"\x00")
        return body.hexdigest()


def _object_cell_bytes(cell: object) -> bytes:
    """Canonical byte rendering of one object-column cell."""
    if isinstance(cell, dict):
        return ";".join(
            f"{key}:{cell[key]!r}" for key in sorted(cell, key=str)
        ).encode("utf-8")
    if isinstance(cell, str):
        return cell.encode("utf-8")
    return repr(cell).encode("utf-8")


def _object_column_values(array: np.ndarray) -> int:
    """Scalar-value count of an object column (see ``num_values``)."""
    sample = array[0]
    if isinstance(sample, dict):
        return int(sum(len(cell) for cell in array))
    if isinstance(sample, str):
        return int(sum(cell.count(" ") + 1 for cell in array))
    return len(array)
