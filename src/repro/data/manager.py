"""The data manager (§4.2 of the paper).

The :class:`DataManager` owns the storage unit and performs the four
tasks the paper assigns to it:

1. discretize incoming training data into timestamped raw chunks,
2. hand chunks to the pipeline manager (the caller) for processing,
3. store transformed feature chunks with a reference to their raw
   chunk, evicting old payloads when storage fills up, and
4. serve samples for proactive training, re-materializing evicted
   chunks through a caller-supplied transform (dynamic materialization).

Re-materialized chunks are *transient* by default: they are rebuilt for
the requesting training step and do not displace newer materialized
payloads (set ``keep_rematerialized=True`` to cache them instead). The
transient policy keeps the materialized set equal to the most recent
*m* chunks, which is the regime analysed by the paper's closed-form
``μ`` formulas.
"""

from __future__ import annotations

import copy
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.data.chunk import ChunkStub, FeatureChunk, RawChunk
from repro.data.materialization import MaterializationStats
from repro.data.sampling import Sampler, UniformSampler
from repro.data.storage import ChunkStorage
from repro.data.table import Table
from repro.exceptions import SamplingError, StorageError
from repro.obs import names
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.reliability.sites import STORAGE_READ
from repro.utils.rng import SeedLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.reliability.retry import Retrier

#: Callback that re-runs the deployed pipeline's transform path on a raw
#: chunk, producing its feature chunk (dynamic materialization).
Materializer = Callable[[RawChunk], FeatureChunk]


@dataclass(frozen=True)
class SampleRequest:
    """A proactive-training sample request."""

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise SamplingError(
                f"sample size must be >= 1, got {self.size}"
            )


@dataclass(frozen=True)
class SampledChunk:
    """One chunk returned by :meth:`DataManager.sample`.

    ``was_materialized`` distinguishes cache hits from chunks that had
    to be rebuilt, so callers (and the cost model) can account for the
    re-materialization work.
    """

    chunk: FeatureChunk
    was_materialized: bool

    @property
    def timestamp(self) -> int:
        return self.chunk.timestamp


class DataManager:
    """Storage, discretization, and sampling front-end.

    Parameters
    ----------
    storage:
        The bounded chunk store; a fresh unbounded one by default.
    sampler:
        Sampling strategy for proactive training (uniform by default).
    seed:
        Seed or generator for the sampling randomness.
    keep_rematerialized:
        When true, chunks rebuilt during sampling are written back into
        storage (and may evict newer payloads). Default false; see the
        module docstring.
    telemetry:
        Optional observability bundle. When enabled, every sampling
        operation updates live ``cache.hits`` / ``cache.misses`` /
        ``cache.rematerializations`` counters, feeds the
        ``sampler.chunk_age`` coverage histogram (age in chunks of
        each selected timestamp), and emits a ``cache.sample`` point
        event.
    """

    def __init__(
        self,
        storage: Optional[ChunkStorage] = None,
        sampler: Optional[Sampler] = None,
        seed: SeedLike = None,
        keep_rematerialized: bool = False,
        telemetry: Optional[Telemetry] = None,
        retrier: Optional["Retrier"] = None,
    ) -> None:
        self.storage = storage if storage is not None else ChunkStorage()
        self.sampler = sampler if sampler is not None else UniformSampler()
        self.keep_rematerialized = keep_rematerialized
        self.stats = MaterializationStats()
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        #: Optional retry wrapper for transient storage faults during
        #: re-materialization (see :mod:`repro.reliability.retry`).
        self.retrier = retrier
        self._rng = ensure_rng(seed)
        self._next_timestamp = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, table: Table) -> RawChunk:
        """Discretize one batch of raw rows into a timestamped chunk.

        Timestamps are assigned monotonically; the chunk is stored and
        returned so the caller can forward it through the pipeline.
        """
        chunk = RawChunk(timestamp=self._next_timestamp, table=table)
        self._next_timestamp += 1
        self.storage.put_raw(chunk)
        return chunk

    def store_features(self, chunk: FeatureChunk) -> None:
        """Store the pipeline's output for a previously ingested chunk."""
        if not self.storage.has_raw(chunk.raw_reference):
            raise StorageError(
                f"feature chunk {chunk.timestamp} references raw chunk "
                f"{chunk.raw_reference}, which is not stored"
            )
        self.storage.put_features(chunk)

    @property
    def num_chunks(self) -> int:
        """Number of chunks available for sampling (*n* in the paper)."""
        return len(self._sampleable_timestamps())

    @property
    def next_timestamp(self) -> int:
        """The timestamp the next :meth:`ingest` call will assign.

        Timestamps are assigned sequentially from this value — the
        contract the provenance ledger relies on when pre-registering
        the chunks of a multi-table initial fit.
        """
        return self._next_timestamp

    # ------------------------------------------------------------------
    # Sampling with dynamic materialization
    # ------------------------------------------------------------------
    def sample(
        self,
        request: SampleRequest,
        materializer: Materializer,
    ) -> List[SampledChunk]:
        """Draw a training sample, re-materializing evicted chunks.

        Only chunks whose raw data is still stored participate (§3.2:
        unavailable chunks are ignored during sampling). For every
        selected timestamp the materialized payload is returned when
        present; otherwise ``materializer`` rebuilds it from the raw
        chunk. Utilization statistics are recorded either way.
        """
        population = self._sampleable_timestamps()
        if not population:
            raise SamplingError("no chunks available for sampling")
        chosen = self.sampler.sample(population, request.size, self._rng)
        results: List[SampledChunk] = []
        hits = 0
        for timestamp in chosen:
            entry = self.storage.get_features(timestamp)
            if isinstance(entry, FeatureChunk):
                hits += 1
                results.append(
                    SampledChunk(chunk=entry, was_materialized=True)
                )
                continue
            rebuilt = self._rematerialize(entry, materializer)
            results.append(
                SampledChunk(chunk=rebuilt, was_materialized=False)
            )
        self.stats.record(sampled=len(chosen), materialized=hits)
        if self.telemetry.enabled:
            self._record_sample_telemetry(population, chosen, hits)
        return results

    def _record_sample_telemetry(
        self, population: List[int], chosen: List[int], hits: int
    ) -> None:
        metrics = self.telemetry.metrics
        misses = len(chosen) - hits
        metrics.counter(names.CACHE_HITS).inc(hits)
        metrics.counter(names.CACHE_MISSES).inc(misses)
        metrics.counter(names.CACHE_REMATERIALIZATIONS).inc(misses)
        newest = max(population)
        age_histogram = metrics.histogram(names.SAMPLER_CHUNK_AGE)
        for timestamp in chosen:
            age_histogram.add(newest - timestamp)
        self.telemetry.tracer.point(
            names.CACHE_SAMPLE,
            sampled=len(chosen),
            hits=hits,
            misses=misses,
            population=len(population),
        )

    def _rematerialize(
        self, stub: ChunkStub, materializer: Materializer
    ) -> FeatureChunk:
        if self.retrier is not None:
            raw = self.retrier.call(
                lambda: self.storage.get_raw(stub.raw_reference),
                site=STORAGE_READ,
            )
        else:
            raw = self.storage.get_raw(stub.raw_reference)
        rebuilt = materializer(raw)
        if rebuilt.timestamp != stub.timestamp:
            raise StorageError(
                f"materializer produced timestamp {rebuilt.timestamp} "
                f"for stub {stub.timestamp}"
            )
        if self.keep_rematerialized:
            self.storage.put_features(rebuilt)
        return rebuilt

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Sampler RNG position, timestamp cursor, and μ accounting.

        Storage contents are checkpointed separately (the manifest +
        spilled payloads); this covers everything else the manager
        mutates, most importantly the NumPy bit-generator state so the
        post-recovery sampling sequence continues bit-identically.
        """
        return {
            "next_timestamp": self._next_timestamp,
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
            "stats": asdict(self.stats),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._next_timestamp = int(state["next_timestamp"])
        self._rng.bit_generator.state = copy.deepcopy(state["rng_state"])
        self.stats = MaterializationStats(**state["stats"])

    def _sampleable_timestamps(self) -> List[int]:
        return [
            t
            for t in self.storage.feature_timestamps
            if self.storage.has_raw(
                self.storage.peek_features(t).raw_reference
            )
        ]
