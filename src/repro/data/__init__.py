"""Data management substrate.

This package implements the paper's data manager (§4.2): a
column-oriented in-memory :class:`~repro.data.table.Table`, timestamped
raw/feature chunks (§3 step 1), bounded chunk storage with oldest-first
eviction, sampling strategies (uniform, window-based, time-based), and
the dynamic-materialization bookkeeping and analysis of §3.2.
"""

from repro.data.chunk import ChunkStub, FeatureChunk, RawChunk
from repro.data.manager import DataManager, SampleRequest, SampledChunk
from repro.data.materialization import (
    MaterializationStats,
    empirical_utilization,
    expected_materialized,
    harmonic_number,
    utilization_random,
    utilization_window,
)
from repro.data.sampling import (
    Sampler,
    TimeBasedSampler,
    UniformSampler,
    WindowBasedSampler,
    make_sampler,
)
from repro.data.storage import ChunkStorage, StorageStats
from repro.data.table import Table

__all__ = [
    "Table",
    "RawChunk",
    "FeatureChunk",
    "ChunkStub",
    "ChunkStorage",
    "StorageStats",
    "Sampler",
    "UniformSampler",
    "WindowBasedSampler",
    "TimeBasedSampler",
    "make_sampler",
    "DataManager",
    "SampleRequest",
    "SampledChunk",
    "MaterializationStats",
    "harmonic_number",
    "expected_materialized",
    "utilization_random",
    "utilization_window",
    "empirical_utilization",
]
