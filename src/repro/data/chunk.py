"""Timestamped data chunks.

Stage 1 of the paper's workflow (§3, Figure 1) discretizes the incoming
training stream into small chunks; the creation timestamp is both the
unique identifier and the recency indicator. Two chunk kinds exist:

* :class:`RawChunk` — unprocessed rows as a :class:`~repro.data.table.Table`.
* :class:`FeatureChunk` — the pipeline's output for one raw chunk: a
  feature matrix plus label vector, carrying a reference (the raw
  chunk's timestamp) back to its origin for re-materialization.

A :class:`ChunkStub` is what remains after dynamic materialization
evicts a feature chunk's payload: identifier and raw reference only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.data.table import Table
from repro.exceptions import ValidationError

FeatureMatrix = Union[np.ndarray, sp.csr_matrix]


@dataclass(frozen=True)
class RawChunk:
    """One discretized unit of raw training data.

    Attributes
    ----------
    timestamp:
        Monotonically increasing integer id assigned by the data
        manager; doubles as the recency indicator.
    table:
        The raw rows.
    """

    timestamp: int
    table: Table

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValidationError(
                f"chunk timestamp must be >= 0, got {self.timestamp}"
            )

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    def nbytes(self) -> int:
        """Approximate payload size in bytes."""
        return self.table.nbytes()


@dataclass(frozen=True)
class FeatureChunk:
    """The preprocessed (materialized) form of one raw chunk.

    Attributes
    ----------
    timestamp:
        The feature chunk's own id. Equals ``raw_reference`` in this
        implementation because preprocessing is 1:1 with raw chunks.
    raw_reference:
        Timestamp of the originating raw chunk (§3.2: kept so an evicted
        chunk can be re-materialized).
    features:
        2-D feature matrix — dense ndarray or CSR sparse matrix.
    labels:
        1-D label vector aligned with ``features`` rows.
    """

    timestamp: int
    raw_reference: int
    features: FeatureMatrix
    labels: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValidationError(
                f"chunk timestamp must be >= 0, got {self.timestamp}"
            )
        if self.features.ndim != 2:
            raise ValidationError(
                f"features must be 2-D, got shape {self.features.shape}"
            )
        labels = np.asarray(self.labels)
        if labels.ndim != 1:
            raise ValidationError(
                f"labels must be 1-D, got shape {labels.shape}"
            )
        if self.features.shape[0] != len(labels):
            raise ValidationError(
                f"features have {self.features.shape[0]} rows but labels "
                f"have {len(labels)}"
            )

    @property
    def num_rows(self) -> int:
        return int(self.features.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.features.shape[1])

    @property
    def is_sparse(self) -> bool:
        return sp.issparse(self.features)

    def nbytes(self) -> int:
        """Approximate payload size in bytes (sparse-aware)."""
        labels = np.asarray(self.labels)
        if sp.issparse(self.features):
            matrix = self.features
            payload = (
                matrix.data.nbytes + matrix.indices.nbytes
                + matrix.indptr.nbytes
            )
        else:
            payload = self.features.nbytes
        return int(payload + labels.nbytes)


@dataclass(frozen=True)
class ChunkStub:
    """Placeholder left behind when a feature chunk's payload is evicted.

    Retains only the identifier and the reference to the raw chunk, per
    §3.2 of the paper ("only keeps the unique identifier and the
    reference to the raw data chunk").
    """

    timestamp: int
    raw_reference: int

    @staticmethod
    def of(chunk: FeatureChunk) -> "ChunkStub":
        """Build the stub for ``chunk``."""
        return ChunkStub(
            timestamp=chunk.timestamp, raw_reference=chunk.raw_reference
        )
