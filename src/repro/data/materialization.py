"""Analysis of dynamic materialization (§3.2.2 of the paper).

The paper models the number of materialized chunks in a sample as a
hypergeometric variable and derives the *average materialization
utilization rate* ``μ`` — the expected fraction of sampled chunks that
are already materialized (and thus need no preprocessing):

* uniform sampling — equation (4):
  ``μ ≈ m (1 + H_N − H_m) / N``
* window-based sampling — equation (5):
  ``μ ≈ m (1 + H_w − H_m + (N − w)/w) / N`` when ``m < w``, else 1
* time-based sampling — no closed form; estimated empirically.

This module implements the closed forms with exact harmonic numbers and
an empirical estimator that simulates a deployment (one sampling
operation per arriving chunk, oldest-first payload eviction) for any
:class:`~repro.data.sampling.Sampler`. Table 4 of the paper compares
the two; ``benchmarks/bench_exp3_materialization.py`` regenerates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.data.sampling import Sampler
from repro.exceptions import ValidationError
from repro.utils.rng import SeedLike, ensure_rng

#: Euler–Mascheroni constant, used by the asymptotic harmonic expansion.
EULER_MASCHERONI = 0.57721566490153286


@lru_cache(maxsize=4096)
def harmonic_number(t: int, exact_below: int = 10_000_000) -> float:
    """Return the ``t``-th harmonic number ``H_t``.

    Computed exactly (vectorised sum) for ``t < exact_below`` and via
    the asymptotic expansion ``ln t + γ + 1/(2t) − 1/(12t²)`` beyond —
    the same expansion the paper quotes in §3.2.2.
    """
    if t < 0:
        raise ValidationError(f"harmonic_number requires t >= 0, got {t}")
    if t == 0:
        return 0.0
    if t < exact_below:
        return float(np.sum(1.0 / np.arange(1, t + 1)))
    return float(
        np.log(t) + EULER_MASCHERONI + 1.0 / (2 * t) - 1.0 / (12 * t * t)
    )


def expected_materialized(n: int, m: int, s: int) -> float:
    """Expected number of materialized chunks in one sample, ``E_n[MS]``.

    With ``n`` available chunks of which ``m`` are materialized, a
    without-replacement sample of ``s`` chunks contains on average
    ``s * m / n`` materialized ones (hypergeometric mean). When
    ``n <= m`` every chunk is materialized, so the expectation is ``s``
    (capped at ``n``).
    """
    _check_counts(n=n, m=m, s=s)
    if n <= m:
        return float(min(s, n))
    return s * m / n


def utilization_random(big_n: int, m: int) -> float:
    """Average utilization rate ``μ`` for uniform sampling — equation (4).

    ``big_n`` is the total number of chunks the deployment will see
    (*N*) and ``m`` the materialization budget. Uses exact harmonic
    numbers rather than the paper's ``ln`` approximation, so small
    configurations are handled correctly too.
    """
    _check_counts(n=big_n, m=m, s=1)
    if m == 0:
        return 0.0
    if m >= big_n:
        return 1.0
    mu_sum = m + m * (harmonic_number(big_n) - harmonic_number(m))
    return mu_sum / big_n


def utilization_window(big_n: int, m: int, w: int) -> float:
    """Average utilization rate ``μ`` for window sampling — equation (5).

    ``w`` is the active-window length. When the materialization budget
    covers the window (``m >= w``) every sampled chunk is materialized
    and ``μ = 1``.
    """
    _check_counts(n=big_n, m=m, s=1)
    if w < 1:
        raise ValidationError(f"window w must be >= 1, got {w}")
    if m == 0:
        return 0.0
    if m >= w or m >= big_n:
        return 1.0
    if w >= big_n:
        return utilization_random(big_n, m)
    mu_sum = (
        m
        + m * (harmonic_number(w) - harmonic_number(m))
        + (big_n - w) * m / w
    )
    return mu_sum / big_n


def empirical_utilization(
    sampler: Sampler,
    big_n: int,
    m: int,
    s: int,
    rng: SeedLike = None,
    sample_every: int = 1,
) -> float:
    """Estimate ``μ`` by simulating a deployment.

    Chunks ``0 .. big_n-1`` arrive one at a time; after every
    ``sample_every``-th arrival the ``sampler`` draws ``s`` of the
    ``n`` available chunks and we record which fraction falls inside
    the materialized set. Mirroring the platform's storage policy, the
    materialized set is always the ``m`` most recent chunks
    (oldest-first eviction; re-materialized chunks are transient and do
    not displace newer ones — see
    :class:`~repro.data.manager.DataManager`).

    Pure bookkeeping — no feature data moves — so the paper's full
    12,000-chunk scale runs in well under a second.
    """
    _check_counts(n=big_n, m=m, s=s)
    if sample_every < 1:
        raise ValidationError(
            f"sample_every must be >= 1, got {sample_every}"
        )
    generator = ensure_rng(rng)
    if m == 0:
        return 0.0
    utilizations = []
    timestamps = np.arange(big_n)
    for n in range(1, big_n + 1):
        if n % sample_every:
            continue
        available = timestamps[:n]
        materialized_floor = max(0, n - m)
        chosen = sampler.sample(available, min(s, n), generator)
        hits = sum(1 for t in chosen if t >= materialized_floor)
        utilizations.append(hits / len(chosen))
    return float(np.mean(utilizations)) if utilizations else 0.0


@dataclass
class MaterializationStats:
    """Run-time utilization accounting kept by the data manager.

    Each sampling operation reports how many of the requested chunks
    were materialized; :meth:`utilization` then yields the empirical
    ``μ`` of the run, directly comparable to the closed forms above.
    """

    operations: int = 0
    chunks_sampled: int = 0
    chunks_materialized: int = 0
    rematerializations: int = 0
    _utilization_sum: float = 0.0

    def record(self, sampled: int, materialized: int) -> None:
        """Record one sampling operation."""
        if sampled < 1:
            raise ValidationError(
                f"a sampling operation must sample >= 1 chunk, "
                f"got {sampled}"
            )
        if not 0 <= materialized <= sampled:
            raise ValidationError(
                f"materialized count {materialized} outside "
                f"[0, {sampled}]"
            )
        self.operations += 1
        self.chunks_sampled += sampled
        self.chunks_materialized += materialized
        self.rematerializations += sampled - materialized
        self._utilization_sum += materialized / sampled

    def utilization(self) -> float:
        """Average per-operation materialization utilization rate ``μ``."""
        if not self.operations:
            return 0.0
        return self._utilization_sum / self.operations


def _check_counts(n: int, m: int, s: int) -> None:
    if n < 1:
        raise ValidationError(f"chunk count must be >= 1, got {n}")
    if m < 0:
        raise ValidationError(f"materialized budget must be >= 0, got {m}")
    if s < 1:
        raise ValidationError(f"sample size must be >= 1, got {s}")
