"""Experiment 1 — deployment approaches (Figure 4, §5.2).

Runs the online, periodical, and continuous deployments on one
scenario and collects the two series Figure 4 plots per dataset:

* (a)/(c): cumulative prequential error over time,
* (b)/(d): cumulative deployment cost over time.

The paper's claims to reproduce in shape:

* both history-using approaches beat online on error;
* continuous matches (or slightly beats) periodical on error;
* periodical's cost jumps at each retraining and ends 6–15x above
  continuous;
* continuous costs only modestly more than online.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.deployment.base import DeploymentResult
from repro.experiments.common import (
    Scenario,
    run_continuous,
    run_online,
    run_periodical,
)
from repro.obs.telemetry import Telemetry

APPROACHES = ("online", "periodical", "continuous")


def run_experiment1(
    scenario: Scenario,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, DeploymentResult]:
    """Run all three approaches on the scenario.

    ``telemetry`` (when given) instruments the *continuous* run — the
    paper's contribution and the interesting trace; the baselines
    stay untraced so their cost accounting is byte-identical with and
    without observability.
    """
    return {
        "online": run_online(scenario),
        "periodical": run_periodical(scenario),
        "continuous": run_continuous(scenario, telemetry=telemetry),
    }


def quality_series(
    results: Mapping[str, DeploymentResult],
) -> Dict[str, List[float]]:
    """Figure 4(a)/(c): cumulative error curves per approach."""
    return {
        name: list(result.error_history)
        for name, result in results.items()
    }


def cost_series(
    results: Mapping[str, DeploymentResult],
) -> Dict[str, List[float]]:
    """Figure 4(b)/(d): cumulative cost curves per approach."""
    return {
        name: list(result.cost_history)
        for name, result in results.items()
    }


def cost_ratios(
    results: Mapping[str, DeploymentResult],
) -> Dict[str, float]:
    """Final-cost ratios relative to continuous (the headline claim)."""
    continuous = results["continuous"].total_cost
    return {
        name: result.total_cost / continuous
        for name, result in results.items()
    }
