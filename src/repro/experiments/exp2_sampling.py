"""Experiment 2 (part 2) — sampling strategies vs quality (Figure 6).

Runs the continuous deployment three times, identical except for the
sampling strategy feeding proactive training. The paper's findings to
reproduce in shape:

* on the drifting URL stream, time-based sampling yields the lowest
  average error (recent chunks reflect the current concept), with
  window-based second and uniform last;
* on the stationary Taxi stream, the three strategies tie.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.deployment.base import DeploymentResult
from repro.experiments.common import Scenario, run_continuous
from repro.obs.telemetry import Telemetry

SAMPLERS = ("time", "window", "uniform")


def run_sampling_experiment(
    scenario: Scenario,
    window_fraction: float = 0.25,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, DeploymentResult]:
    """One continuous run per sampling strategy.

    The window sampler's active window defaults to a quarter of the
    stream (the paper's Experiment 3 uses half of the total chunks;
    a tighter window accentuates the recency effect for quality).
    ``telemetry`` (when given) instruments every run into one shared
    bundle; profile folding only uses durations, so the aggregate
    stays well-defined.
    """
    window_size = max(int(scenario.num_chunks * window_fraction), 1)
    results: Dict[str, DeploymentResult] = {}
    for sampler in SAMPLERS:
        adapted = scenario.with_continuous(
            sampler=sampler,
            window_size=window_size if sampler == "window" else None,
        )
        results[sampler] = run_continuous(adapted, telemetry=telemetry)
    return results


def quality_series(
    results: Mapping[str, DeploymentResult],
) -> Dict[str, List[float]]:
    """Figure 6 curves: cumulative error per sampling strategy."""
    return {
        name: list(result.error_history)
        for name, result in results.items()
    }


def average_errors(
    results: Mapping[str, DeploymentResult],
) -> Dict[str, float]:
    """Average cumulative error per strategy (the paper's deltas)."""
    return {
        name: float(np.mean(result.error_history))
        for name, result in results.items()
    }
