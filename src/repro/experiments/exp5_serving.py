"""Experiment 5 (extension): gated canary rollout vs blind promotion.

The paper's platform continuously *produces* models (proactive
training); this experiment measures how they should be *adopted*.
A trainer platform runs over the deployment stream and periodically
emits candidate versions — but every ``corrupt_every``-th candidate
is corrupted (heavy weight noise), modelling the bad training runs
(poisoned samples, diverged optimizers, wrong feature builds) that
continual-learning systems must survive. Three serving policies see
the *identical* candidate sequence:

* ``frozen`` — never adopt anything; serve the initial model forever
  (the lower bound on adoption risk, upper bound on staleness);
* ``blind``  — promote every candidate the moment it arrives (what a
  registry without a quality gate does);
* ``gated``  — stage each candidate as a deterministic hash-routed
  canary; the :class:`~repro.serving.gate.QualityGate` promotes on a
  sustained win and rejects/rolls back on regression.

The prequential serving error of each policy tells the story: blind
promotion inherits every corrupted candidate's error spike; the gated
canary pays only the canary fraction of a bad candidate for a few
chunks, then rejects it — beating blind promotion while staying close
to the good-candidate adoption rate.
"""

from __future__ import annotations

import copy
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.core.platform import ContinuousDeploymentPlatform
from repro.experiments.common import Scenario
from repro.ml.metrics import PrequentialTracker
from repro.obs.telemetry import Telemetry
from repro.serving.controller import RolloutController
from repro.serving.endpoint import ServingEndpoint
from repro.serving.gate import GateConfig
from repro.serving.registry import ModelRegistry
from repro.utils.rng import ensure_rng

#: The serving policies compared (report order).
POLICIES = ("frozen", "blind", "gated")


@dataclass
class CandidateSnapshot:
    """One trainer output: artifacts frozen at ``arrival_chunk``."""

    arrival_chunk: int
    pipeline: object
    model: object
    optimizer: object
    corrupted: bool
    objective: float
    training_cost: float
    #: Lineage node id of the proactive training burst that produced
    #: this snapshot (``None`` when no ledger instruments the trainer).
    lineage_event: Optional[str] = None


@dataclass
class ServingPoint:
    """One policy's serving run."""

    policy: str
    error_history: List[float] = field(default_factory=list)
    #: Rollout action counts (promote / reject / rollback / stage).
    transitions: Dict[str, int] = field(default_factory=dict)

    @property
    def final_error(self) -> float:
        return self.error_history[-1] if self.error_history else 0.0

    @property
    def average_error(self) -> float:
        if not self.error_history:
            return 0.0
        return float(np.mean(self.error_history))


def produce_candidates(
    scenario: Scenario,
    candidate_every: Optional[int] = None,
    corrupt_every: int = 3,
    corruption_scale: float = 4.0,
    telemetry: Optional[Telemetry] = None,
):
    """Run the trainer side once; return (initial artifacts, candidates).

    The trainer is a normal continuous platform (online updates +
    proactive training). Every ``candidate_every`` chunks its state is
    deep-copied into a :class:`CandidateSnapshot`; every
    ``corrupt_every``-th snapshot gets its model weights overwhelmed
    with seeded Gaussian noise. Both serving policies replay this
    exact sequence, so the comparison isolates the adoption policy.
    When ``telemetry`` carries a lineage ledger, each snapshot records
    the node id of the training burst that produced it, so the serving
    registries can link their model versions back to training chunks.
    """
    if candidate_every is None:
        candidate_every = max(scenario.num_chunks // 8, 3)
    rng = ensure_rng(scenario.seed + 1)
    pipeline = scenario.make_pipeline()
    model = scenario.make_model()
    optimizer = scenario.make_optimizer()
    platform = ContinuousDeploymentPlatform(
        pipeline,
        model,
        optimizer,
        config=scenario.continuous_config,
        seed=scenario.seed,
        telemetry=telemetry,
    )
    platform.initial_fit(
        scenario.make_initial_data(),
        seed=scenario.seed,
        store=True,
        **scenario.initial_fit_kwargs,
    )
    initial = copy.deepcopy((pipeline, model, optimizer))
    candidates: List[CandidateSnapshot] = []
    cost_before = platform.engine.total_cost()
    for chunk_index, table in enumerate(scenario.make_stream()):
        platform.observe(table)
        if (chunk_index + 1) % candidate_every != 0:
            continue
        snapshot_pipeline, snapshot_model, snapshot_optimizer = (
            copy.deepcopy((pipeline, model, optimizer))
        )
        corrupted = (len(candidates) + 1) % corrupt_every == 0
        if corrupted:
            # A genuinely broken training run: the decision direction
            # inverts and noise drowns what is left. Blind promotion
            # adopts this wholesale; the gate must catch it.
            weights = snapshot_model.weights
            weights *= -1.0
            scale = corruption_scale * max(
                float(np.abs(weights).max()), 1e-3
            )
            weights += rng.normal(0.0, scale, size=weights.shape)
        cost_now = platform.engine.total_cost()
        candidates.append(
            CandidateSnapshot(
                arrival_chunk=chunk_index,
                pipeline=snapshot_pipeline,
                model=snapshot_model,
                optimizer=snapshot_optimizer,
                corrupted=corrupted,
                objective=(
                    platform.proactive_outcomes[-1].objective
                    if platform.proactive_outcomes
                    else 0.0
                ),
                training_cost=cost_now - cost_before,
                lineage_event=platform.last_training_event,
            )
        )
        cost_before = cost_now
    return initial, candidates


def run_policy(
    scenario: Scenario,
    policy: str,
    initial,
    candidates: List[CandidateSnapshot],
    registry_root,
    gate_config: Optional[GateConfig] = None,
    canary_fraction: float = 0.4,
    telemetry: Optional[Telemetry] = None,
) -> ServingPoint:
    """Replay the serving stream under one adoption policy."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}")
    registry = ModelRegistry(
        Path(registry_root) / policy, telemetry=telemetry
    )
    pipeline, model, optimizer = copy.deepcopy(initial)
    first = registry.register(
        pipeline, model, optimizer, metrics={"origin": 0.0}
    )
    registry.promote(first.version, reason="initial deployment")
    endpoint = ServingEndpoint(
        registry, seed=scenario.seed, telemetry=telemetry
    )
    controller = None
    if policy == "gated":
        controller = RolloutController(
            registry,
            endpoint,
            metric=scenario.metric,
            config=gate_config,
            telemetry=telemetry,
        )
    arrivals = {c.arrival_chunk: c for c in candidates}
    tracker = PrequentialTracker(
        kind="rate" if scenario.metric == "classification" else "rmse"
    )
    point = ServingPoint(policy=policy)
    for chunk_index, table in enumerate(scenario.make_stream()):
        served = endpoint.predict(table, chunk_index=chunk_index)
        if len(served.labels):
            if scenario.metric == "classification":
                error_sum = float(
                    np.sum(served.predictions != served.labels)
                )
            else:
                residual = served.predictions - served.labels
                error_sum = float(np.sum(residual * residual))
            tracker.add_chunk(error_sum, len(served.labels))
        point.error_history.append(tracker.value())
        if controller is not None:
            action = controller.observe(served)
            if action != "continue":
                point.transitions[action] = (
                    point.transitions.get(action, 0) + 1
                )
        candidate = arrivals.get(chunk_index)
        if candidate is None or policy == "frozen":
            continue
        info = registry.register(
            candidate.pipeline,
            candidate.model,
            candidate.optimizer,
            chunks_observed=chunk_index + 1,
            training_cost=candidate.training_cost,
            metrics={"objective": candidate.objective},
            lineage_event=candidate.lineage_event,
        )
        if policy == "blind":
            registry.promote(info.version, reason="blind promotion")
            endpoint.reload_live()
            point.transitions["promote"] = (
                point.transitions.get("promote", 0) + 1
            )
        elif controller.state in ("idle", "monitoring"):
            controller.stage(
                info.version, mode="canary", fraction=canary_fraction
            )
            point.transitions["stage"] = (
                point.transitions.get("stage", 0) + 1
            )
        # else: a rollout is mid-flight; the candidate stays staged-
        # less in the registry (the next arrival supersedes it).
    return point


def run_serving_experiment(
    scenario: Scenario,
    workdir=None,
    candidate_every: Optional[int] = None,
    corrupt_every: int = 3,
    gate_config: Optional[GateConfig] = None,
    canary_fraction: float = 0.4,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, ServingPoint]:
    """All three policies over the identical candidate sequence."""
    if gate_config is None:
        gate_config = default_gate_config(scenario)
    initial, candidates = produce_candidates(
        scenario,
        candidate_every=candidate_every,
        corrupt_every=corrupt_every,
        telemetry=telemetry,
    )
    results: Dict[str, ServingPoint] = {}

    def run_all(root) -> None:
        for policy in POLICIES:
            results[policy] = run_policy(
                scenario,
                policy,
                initial,
                candidates,
                root,
                gate_config=gate_config,
                canary_fraction=canary_fraction,
                telemetry=telemetry,
            )

    if workdir is not None:
        run_all(workdir)
    else:
        with tempfile.TemporaryDirectory() as root:
            run_all(root)
    return results


def default_gate_config(scenario: Scenario) -> GateConfig:
    """Gate thresholds proportionate to the scenario's traffic.

    Shorter streams (the test scale) need verdicts within a few
    chunks, so the sample floors and streak lengths shrink with the
    stream.
    """
    small = scenario.num_chunks <= 60
    return GateConfig(
        min_samples=30 if small else 120,
        promote_after=2,
        promote_margin=0.0,
        rollback_after=1 if small else 2,
        rollback_margin=0.25,
        drift_window=20 if small else 60,
        drift_ratio=1.0,
    )


def headline_claims(results: Dict[str, ServingPoint]) -> Dict[str, float]:
    """The numbers the experiment exists to produce."""
    gated = results["gated"]
    blind = results["blind"]
    frozen = results["frozen"]
    return {
        "gated_average_error": gated.average_error,
        "blind_average_error": blind.average_error,
        "frozen_average_error": frozen.average_error,
        "gated_vs_blind_improvement": (
            blind.average_error - gated.average_error
        ),
        "gated_promotions": float(gated.transitions.get("promote", 0)),
        "gated_rejections": float(
            gated.transitions.get("reject", 0)
            + gated.transitions.get("rollback", 0)
        ),
    }
