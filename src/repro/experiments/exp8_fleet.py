"""Experiment 8 (extension): multi-tenant fleet orchestration.

Experiments 1-7 each drive ONE deployment pipeline. Real platforms
run dozens — per-team models with their own data streams, drift, and
budgets — against shared, bounded resources. This experiment runs the
same mixed URL/taxi fleet (24 tenants by default) twice under each
scheduling policy and measures two things:

* **policy value** — at an *equal total training budget*, fair-share
  stride scheduling over ``weight x (1 + urgency)`` priorities beats
  naive round robin on aggregate (weight-averaged) prequential loss.
  The win is structural, not tuned noise: the weighted aggregate
  rewards spending scarce slots where weight and data urgency are
  highest, and round robin is blind to both.
* **determinism** — the fleet is a pure function of (spec, seed).
  Same-seed runs must produce byte-identical schedule/prequential
  digests AND byte-identical telemetry digests; the committed
  ``BENCH_exp8_fleet.json`` trajectory records are reproducible
  field-for-field (modulo wall-clock stamps).

Both policies see identical tenants: same specs, same seeds, same
streams, same opt-outs (``online``-strategy tenants receive no slots
under *either* policy — a tenant's consent binds the scheduler, not
the other way around).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import ValidationError
from repro.fleet.orchestrator import FleetOrchestrator, FleetResult
from repro.fleet.spec import POLICIES, make_fleet
from repro.obs.baseline import BenchRecord, MetricValue, make_record
from repro.obs.telemetry import Telemetry

#: Policies the experiment compares, in run order.
COMPARED_POLICIES = ("fair_share", "round_robin")


@dataclass
class FleetExperimentResult:
    """Both policies' fleets plus the determinism verdicts."""

    #: First run per policy.
    runs: Dict[str, FleetResult]
    #: Same-seed re-run produced byte-identical schedule digests.
    digests_identical: bool
    #: ... and byte-identical telemetry digests.
    telemetry_identical: bool

    @property
    def fair(self) -> FleetResult:
        return self.runs["fair_share"]

    @property
    def round_robin(self) -> FleetResult:
        return self.runs["round_robin"]

    @property
    def fair_beats_round_robin(self) -> bool:
        """The headline: lower weighted loss at equal budget."""
        return (
            self.fair.aggregate_error
            < self.round_robin.aggregate_error
        )

    @property
    def equal_budget(self) -> bool:
        return sum(self.fair.trainings) == sum(
            self.round_robin.trainings
        )


def run_fleet_experiment(
    num_tenants: int = 24,
    seed: int = 11,
    chunks: int = 16,
    rows: int = 12,
    telemetry: Optional[Telemetry] = None,
    verify_identity: bool = True,
) -> FleetExperimentResult:
    """Run the fleet under both policies (twice each when verifying).

    ``telemetry`` is bound to the *first* fair-share run; identity
    re-runs use private telemetry so digest comparisons see the same
    instrumentation on both sides.
    """
    if num_tenants < 2:
        raise ValidationError(
            f"the fleet comparison needs >= 2 tenants, "
            f"got {num_tenants}"
        )
    runs: Dict[str, FleetResult] = {}
    digests_ok = True
    telemetry_ok = True
    for policy in COMPARED_POLICIES:
        spec = make_fleet(
            num_tenants,
            seed=seed,
            policy=policy,
            chunks=chunks,
            rows=rows,
        )
        bound = telemetry if policy == "fair_share" else None
        result = FleetOrchestrator(spec, telemetry=bound).run()
        runs[policy] = result
        if verify_identity:
            again = FleetOrchestrator(spec).run()
            digests_ok = digests_ok and (
                again.digest == result.digest
            )
            telemetry_ok = telemetry_ok and (
                again.telemetry_digest == result.telemetry_digest
            )
    return FleetExperimentResult(
        runs=runs,
        digests_identical=digests_ok,
        telemetry_identical=telemetry_ok,
    )


def headline_claims(
    result: FleetExperimentResult,
) -> Dict[str, float]:
    """The numbers the experiment exists to produce."""
    fair, rr = result.fair, result.round_robin
    return {
        "fair_aggregate_error": fair.aggregate_error,
        "round_robin_aggregate_error": rr.aggregate_error,
        "fair_advantage": rr.aggregate_error - fair.aggregate_error,
        "fair_trainings": float(sum(fair.trainings)),
        "round_robin_trainings": float(sum(rr.trainings)),
        "fair_rescues": float(fair.rescues),
        "fair_balance": fair.schedule_log[-1]["balance"],
        "fair_total_cost": fair.total_cost,
        "round_robin_total_cost": rr.total_cost,
    }


def bench_record(
    result: FleetExperimentResult,
    num_tenants: int,
    seed: int,
    chunks: int,
) -> BenchRecord:
    """A trajectory record for ``BENCH_exp8_fleet.json``.

    Every metric is a pure function of (spec, seed) — two same-seed
    runs append field-for-field identical metrics, which is exactly
    what the determinism acceptance compares.
    """
    claims = headline_claims(result)
    metrics = {
        "fair_aggregate_error": MetricValue(
            value=claims["fair_aggregate_error"], kind="quality"
        ),
        "round_robin_aggregate_error": MetricValue(
            value=claims["round_robin_aggregate_error"],
            kind="quality",
        ),
        "fair_advantage": MetricValue(
            value=claims["fair_advantage"], kind="quality"
        ),
        "trainings": MetricValue(
            value=claims["fair_trainings"], kind="count"
        ),
        "rescues": MetricValue(
            value=claims["fair_rescues"], kind="count"
        ),
        "epochs": MetricValue(
            value=float(result.fair.epochs), kind="count"
        ),
        "tenants": MetricValue(
            value=float(len(result.fair.tenants)), kind="count"
        ),
        "fair_total_cost": MetricValue(
            value=claims["fair_total_cost"], kind="cost"
        ),
    }
    # The per-epoch aggregate-error trajectory rides along so the
    # committed baseline pins the whole curve, not just the endpoint.
    for entry in result.fair.schedule_log:
        metrics[f"fair_error_epoch_{entry['epoch']:02d}"] = (
            MetricValue(
                value=float(entry["aggregate_error"]),
                kind="quality",
            )
        )
    return make_record(
        "exp8_fleet",
        metrics,
        seed=seed,
        params={
            "num_tenants": num_tenants,
            "chunks": chunks,
            "policies": list(COMPARED_POLICIES),
        },
    )


def format_comparison(result: FleetExperimentResult) -> str:
    """The per-policy summary table ``repro exp8`` prints."""
    lines = [
        f"{'policy':<12} {'aggregate':>10} {'trainings':>10} "
        f"{'rescues':>8} {'cost':>10}"
    ]
    for policy in COMPARED_POLICIES:
        if policy not in POLICIES:  # pragma: no cover - sanity
            continue
        run = result.runs[policy]
        lines.append(
            f"{policy:<12} {run.aggregate_error:>10.5f} "
            f"{sum(run.trainings):>10} {run.rescues:>8} "
            f"{run.total_cost:>10.3f}"
        )
    return "\n".join(lines)
