"""Experiment 6 (extension): the price of crash recovery.

The paper's platform is a long-running process, so two reliability
questions matter operationally:

1. **Checkpoint cadence vs recovery cost.** A crash loses the work
   since the last checkpoint; recovery regenerates it. Sweeping the
   checkpoint interval at a fixed kill point measures the redo work —
   chunks reprocessed and virtual cost units respent — which shrinks
   monotonically as checkpoints become more frequent. Every recovered
   run is verified byte-identical (error history, cost history,
   counters) to an uninterrupted baseline: recovery changes *when*
   work happens, never *what* it computes.

2. **Retry masking transient faults.** A deterministic fault plan
   injects transient I/O errors into the stream path. Unprotected,
   the first fault kills the run; under a bounded-backoff
   :class:`~repro.reliability.retry.RetryPolicy` the same plan is
   fully masked and the run completes — again byte-identical to a
   fault-free run, because the retried read re-reads the same chunk.

Run via ``python -m repro exp6 --dataset url --scale test``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.deployment.base import DeploymentResult
from repro.exceptions import ReliabilityError
from repro.experiments.common import Scenario, make_deployment
from repro.obs.telemetry import Telemetry
from repro.reliability import (
    STREAM_READ,
    CheckpointConfig,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    SimulatedCrash,
    TransientFault,
)

#: Checkpoint intervals swept by the cadence experiment (chunks).
DEFAULT_CADENCES = (4, 7, 13)

#: Stream-read occurrences hit by the retry demo's transient faults.
DEFAULT_TRANSIENT_OCCURRENCES = (3, 9, 15, 22)


@dataclass
class CadencePoint:
    """One cadence-sweep measurement."""

    cadence: int
    kill_after_chunks: int
    resume_cursor: int
    redo_chunks: int
    redone_cost: float
    identical: bool


@dataclass
class RetryDemoResult:
    """Outcome of the transient-fault masking demonstration."""

    faults_planned: int
    unprotected_crashed: bool
    unprotected_error: str
    protected_completed: bool
    protected_retries: int
    identical_to_clean: bool


def _fit_and(scenario: Scenario, deployment):
    deployment.initial_fit(
        scenario.make_initial_data(),
        seed=scenario.seed,
        **scenario.initial_fit_kwargs,
    )
    return deployment


def _identical(
    recovered: DeploymentResult, reference: DeploymentResult
) -> bool:
    return (
        recovered.error_history == reference.error_history
        and recovered.cost_history == reference.cost_history
        and recovered.counters == reference.counters
    )


def run_cadence_sweep(
    scenario: Scenario,
    cadences: Sequence[int] = DEFAULT_CADENCES,
    kill_after_chunks: int = 19,
    approach: str = "continuous",
    directory: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[CadencePoint]:
    """Crash after ``kill_after_chunks`` chunks at each cadence.

    The crash is injected as a ``stream.read`` fault on occurrence
    ``kill_after_chunks + 1`` — the run fully processes that many
    chunks, then dies pulling the next one. Recovery resumes at the
    last checkpoint at or before the kill point; the redo work is the
    distance between them. ``telemetry`` (when given) instruments the
    uninterrupted reference run — the crashing/recovering runs stay
    untraced so the byte-identity check compares bare runs.
    """
    if kill_after_chunks < 1:
        raise ReliabilityError(
            f"kill_after_chunks must be >= 1, got {kill_after_chunks}"
        )
    reference = _fit_and(
        scenario, make_deployment(scenario, approach, telemetry=telemetry)
    ).run(scenario.make_stream())
    points: List[CadencePoint] = []
    with tempfile.TemporaryDirectory(dir=directory) as root:
        for cadence in cadences:
            config = CheckpointConfig(
                directory=str(Path(root) / f"cadence-{cadence}"),
                cadence_chunks=cadence,
                keep=3,
            )
            crashing = _fit_and(
                scenario,
                make_deployment(
                    scenario,
                    approach,
                    checkpoint=config,
                    fault_plan=FaultPlan.crash_at(
                        STREAM_READ, kill_after_chunks + 1
                    ),
                ),
            )
            try:
                crashing.run(scenario.make_stream())
                raise ReliabilityError(
                    "crash fault did not fire; stream shorter than "
                    f"kill point {kill_after_chunks}?"
                )
            except SimulatedCrash:
                pass
            recovering = make_deployment(
                scenario, approach, checkpoint=config
            )
            result = recovering.recover(scenario.make_stream())
            cursor = result.recovery.cursor
            redone_cost = reference.cost_history[
                kill_after_chunks - 1
            ] - (reference.cost_history[cursor - 1] if cursor else 0.0)
            points.append(
                CadencePoint(
                    cadence=cadence,
                    kill_after_chunks=kill_after_chunks,
                    resume_cursor=cursor,
                    redo_chunks=kill_after_chunks - cursor,
                    redone_cost=redone_cost,
                    identical=_identical(result, reference),
                )
            )
    return points


def run_retry_demo(
    scenario: Scenario,
    approach: str = "continuous",
    occurrences: Sequence[int] = DEFAULT_TRANSIENT_OCCURRENCES,
    telemetry: Optional[Telemetry] = None,
) -> RetryDemoResult:
    """Same transient fault plan, with and without a retry policy."""
    plan = FaultPlan.of(
        *(
            FaultSpec(STREAM_READ, occurrence, "io_error")
            for occurrence in occurrences
        )
    )
    reference = _fit_and(
        scenario, make_deployment(scenario, approach, telemetry=telemetry)
    ).run(scenario.make_stream())

    unprotected_crashed = False
    unprotected_error = ""
    try:
        _fit_and(
            scenario,
            make_deployment(scenario, approach, fault_plan=plan),
        ).run(scenario.make_stream())
    except TransientFault as error:
        unprotected_crashed = True
        unprotected_error = str(error)

    protected = make_deployment(
        scenario,
        approach,
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=3, seed=scenario.seed),
    )
    _fit_and(scenario, protected)
    result = protected.run(scenario.make_stream())
    return RetryDemoResult(
        faults_planned=len(plan),
        unprotected_crashed=unprotected_crashed,
        unprotected_error=unprotected_error,
        protected_completed=result.chunks_processed
        == reference.chunks_processed,
        protected_retries=(
            protected.reliability.retrier.retries
            if protected.reliability.retrier is not None
            else 0
        ),
        identical_to_clean=_identical(result, reference),
    )


def headline_claims(
    points: Sequence[CadencePoint], demo: RetryDemoResult
) -> Dict[str, float]:
    """The two claims the experiment exists to check.

    ``redo_monotone``: sorted by cadence, redo work never decreases
    as checkpoints get sparser. ``all_identical``: every recovered
    run matched its uninterrupted baseline. ``retry_masked``: the
    plan that killed the unprotected run was fully absorbed by the
    retry policy with an identical result.
    """
    ordered = sorted(points, key=lambda p: p.cadence)
    redo = [p.redo_chunks for p in ordered]
    return {
        "redo_monotone": float(
            all(a <= b for a, b in zip(redo, redo[1:]))
        ),
        "all_identical": float(all(p.identical for p in points)),
        "max_redo_chunks": float(max(redo)) if redo else 0.0,
        "retry_masked": float(
            demo.unprotected_crashed
            and demo.protected_completed
            and demo.identical_to_clean
        ),
        "retries_used": float(demo.protected_retries),
    }
