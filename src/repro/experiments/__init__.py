"""Experiment drivers reproducing the paper's tables and figures.

Each module regenerates one artifact of §5 (see DESIGN.md's experiment
index); ``benchmarks/`` wraps these in pytest-benchmark targets that
print the paper-shaped rows and series.
"""

from repro.experiments.common import (
    APPROACHES,
    Scenario,
    make_deployment,
    run_continuous,
    run_online,
    run_periodical,
    taxi_scenario,
    url_scenario,
)

__all__ = [
    "APPROACHES",
    "Scenario",
    "url_scenario",
    "taxi_scenario",
    "make_deployment",
    "run_online",
    "run_periodical",
    "run_continuous",
]
