"""Experiment 4 — quality/cost trade-off (Figure 8, §5.5).

Figure 8 is a scatter of average deployment quality against total
deployment cost for the three approaches: the paper's punchline is
that continuous deployment sits at (roughly) the periodical quality
for 6–15x less cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.deployment.base import DeploymentResult
from repro.experiments.common import Scenario
from repro.experiments.exp1_deployment import run_experiment1
from repro.obs.telemetry import Telemetry


@dataclass(frozen=True)
class TradeoffPoint:
    """One scatter point: an approach's quality and cost."""

    approach: str
    average_error: float
    total_cost: float


def tradeoff_points(
    results: Mapping[str, DeploymentResult],
) -> List[TradeoffPoint]:
    """Figure 8 points from Experiment-1 results."""
    return [
        TradeoffPoint(
            approach=name,
            average_error=result.average_error,
            total_cost=result.total_cost,
        )
        for name, result in results.items()
    ]


def run_tradeoff(
    scenario: Scenario,
    telemetry: Optional[Telemetry] = None,
) -> List[TradeoffPoint]:
    """Run Experiment 1 and condense it into Figure 8 points."""
    return tradeoff_points(
        run_experiment1(scenario, telemetry=telemetry)
    )


def headline_claims(points: List[TradeoffPoint]) -> Dict[str, float]:
    """The two numbers §5.5 quotes.

    * ``cost_ratio`` — periodical cost / continuous cost (6–15x in
      the paper);
    * ``quality_delta`` — periodical average error minus continuous
      average error (>= ~0 in the paper: continuous matches or
      slightly beats periodical).
    """
    by_name = {point.approach: point for point in points}
    continuous = by_name["continuous"]
    periodical = by_name["periodical"]
    return {
        "cost_ratio": periodical.total_cost / continuous.total_cost,
        "quality_delta": (
            periodical.average_error - continuous.average_error
        ),
    }
