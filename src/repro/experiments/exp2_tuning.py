"""Experiment 2 (part 1) — system tuning (Table 3 + Figure 5, §5.3).

Table 3: a grid over learning-rate adaptation techniques (Adam,
RMSProp, AdaDelta) and L2 regularization strengths (1e-2, 1e-3, 1e-4),
scored on a held-out split of the *initial* training data.

Figure 5: the best regularization per adaptation technique is then
deployed (continuous deployment) on a prefix of the deployment stream;
the paper's finding to reproduce is that the initial-training ranking
carries over to deployment — so hyperparameters can be tuned before
deploying.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.deployment import ContinuousDeployment
from repro.execution.engine import LocalExecutionEngine
from repro.experiments.common import Scenario
from repro.obs.telemetry import Telemetry
from repro.ml.metrics import misclassification_rate, rmsle_from_log
from repro.ml.optim import make_optimizer
from repro.ml.regularizers import L2
from repro.ml.sgd import SGDTrainer

ADAPTATIONS = ("adam", "rmsprop", "adadelta")
REG_STRENGTHS = (1e-2, 1e-3, 1e-4)

GridKey = Tuple[str, float]


def _build_optimizer(adaptation: str, scenario: Scenario):
    """Optimizer for one grid cell.

    Adam/RMSProp share the scenario's learning rate. AdaDelta has no
    global learning rate (its selling point); its epsilon is raised to
    1e-4 so its characteristic slow start fits the iteration budget of
    these scaled-down runs (with Zeiler's 1e-6 it cannot reach the
    Taxi intercept scale within the budget).
    """
    if adaptation == "adadelta":
        return make_optimizer("adadelta", epsilon=1e-4)
    return make_optimizer(adaptation, learning_rate=0.05)


def _holdout_error(
    scenario: Scenario, adaptation: str, strength: float
) -> float:
    """Train on 70% of the initial data, score on the rest."""
    pipeline = scenario.make_pipeline()
    model = scenario.make_model()
    model.regularizer = L2(strength)
    engine = LocalExecutionEngine()
    tables = scenario.make_initial_data()
    if len(tables) != 1:
        raise ValueError("grid search expects one initial table")
    table = tables[0]
    cut = int(table.num_rows * 0.7)
    train_table = table.head(cut)
    eval_table = table.take(list(range(cut, table.num_rows)))

    train = engine.online_pass(pipeline, train_table)
    trainer = SGDTrainer(model, _build_optimizer(adaptation, scenario))
    trainer.train(
        train.matrix,
        train.labels,
        seed=scenario.seed,
        **scenario.initial_fit_kwargs,
    )
    held_out = engine.transform_only(pipeline, eval_table)
    predictions = model.predict(held_out.matrix)
    if scenario.metric == "classification":
        return misclassification_rate(held_out.labels, predictions)
    return rmsle_from_log(held_out.labels, predictions)


def table3(
    scenario: Scenario,
    adaptations: Sequence[str] = ADAPTATIONS,
    strengths: Sequence[float] = REG_STRENGTHS,
) -> Dict[GridKey, float]:
    """Initial-training grid search (one dataset's half of Table 3)."""
    return {
        (adaptation, strength): _holdout_error(
            scenario, adaptation, strength
        )
        for adaptation in adaptations
        for strength in strengths
    }


def best_per_adaptation(
    grid: Mapping[GridKey, float],
) -> Dict[str, float]:
    """Best regularization strength per adaptation (Table 3's bold)."""
    best: Dict[str, Tuple[float, float]] = {}
    for (adaptation, strength), error in grid.items():
        current = best.get(adaptation)
        if current is None or error < current[1]:
            best[adaptation] = (strength, error)
    return {name: pair[0] for name, pair in best.items()}


def figure5(
    scenario: Scenario,
    best: Mapping[str, float],
    deploy_fraction: float = 0.1,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, List[float]]:
    """Deploy the per-adaptation best configs on a stream prefix.

    Returns the cumulative-error history per adaptation technique —
    the Figure 5 curves.
    """
    if not 0.0 < deploy_fraction <= 1.0:
        raise ValueError(
            f"deploy_fraction must be in (0, 1], got {deploy_fraction}"
        )
    prefix = max(int(scenario.num_chunks * deploy_fraction), 1)
    histories: Dict[str, List[float]] = {}
    for adaptation, strength in best.items():
        model = scenario.make_model()
        model.regularizer = L2(strength)
        deployment = ContinuousDeployment(
            scenario.make_pipeline(),
            model,
            _build_optimizer(adaptation, scenario),
            config=scenario.continuous_config,
            metric=scenario.metric,
            seed=scenario.seed,
            telemetry=telemetry,
        )
        deployment.initial_fit(
            scenario.make_initial_data(),
            seed=scenario.seed,
            **scenario.initial_fit_kwargs,
        )
        result = deployment.run(
            islice(scenario.make_stream(), prefix)
        )
        histories[adaptation] = list(result.error_history)
    return histories


def ranking_agreement(
    grid: Mapping[GridKey, float],
    deployed: Mapping[str, List[float]],
) -> bool:
    """Does the initial-training winner also win after deployment?

    This is the paper's conclusion from Experiment 2: the same
    hyperparameters that win initial training win deployment, so
    proactive training can be tuned offline.
    """
    best = best_per_adaptation(grid)
    initial_winner = min(
        best, key=lambda name: grid[(name, best[name])]
    )
    deployed_winner = min(
        deployed, key=lambda name: float(np.mean(deployed[name]))
    )
    return initial_winner == deployed_winner
