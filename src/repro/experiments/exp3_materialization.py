"""Experiment 3 — optimization effects (Table 4 + Figure 7, §5.4).

Table 4 compares the *empirical* materialization utilization rate μ
against the closed-form estimates (equations 4 and 5) for each
sampling strategy at materialization rates m/n ∈ {0.2, 0.6}. The μ
simulation is pure bookkeeping, so it runs at the paper's full scale
(12,000 chunks).

Figure 7 measures the total deployment cost at materialization rates
{0.0, 0.2, 0.6, 1.0} per sampling strategy, plus the *NoOptimization*
configuration (online statistics computation disabled and nothing
materialized — every proactive-training chunk is re-read from disk,
its statistics recomputed, and re-transformed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.materialization import (
    empirical_utilization,
    utilization_random,
    utilization_window,
)
from repro.data.sampling import make_sampler
from repro.experiments.common import Scenario, run_continuous
from repro.obs.telemetry import Telemetry

#: Paper-scale Table 4 defaults.
PAPER_NUM_CHUNKS = 12_000
PAPER_SAMPLE_SIZE = 100
PAPER_WINDOW = 6_000
MATERIALIZATION_RATES = (0.2, 0.6)
FIG7_RATES = (0.0, 0.2, 0.6, 1.0)
SAMPLERS = ("uniform", "window", "time")


@dataclass(frozen=True)
class Table4Cell:
    """One cell of Table 4: empirical μ and (if closed-form) theory."""

    sampler: str
    rate: float
    empirical: float
    theoretical: Optional[float]


def table4(
    num_chunks: int = PAPER_NUM_CHUNKS,
    sample_size: int = PAPER_SAMPLE_SIZE,
    rates: Sequence[float] = MATERIALIZATION_RATES,
    window_size: Optional[int] = None,
    half_life: Optional[float] = None,
    sample_every: int = 1,
    seed: int = 0,
) -> List[Table4Cell]:
    """Empirical vs analytical μ per sampler and materialization rate.

    ``window_size`` defaults to half the chunks (the paper's 6,000 of
    12,000); ``half_life`` of the time-based sampler defaults to a
    quarter of the chunks. ``sample_every`` thins the simulation for
    quick test runs (the paper samples after every chunk).
    """
    if window_size is None:
        window_size = num_chunks // 2
    if half_life is None:
        half_life = num_chunks / 4
    cells: List[Table4Cell] = []
    for rate in rates:
        budget = int(round(rate * num_chunks))
        for name in SAMPLERS:
            sampler = make_sampler(
                name, window_size=window_size, half_life=half_life
            )
            empirical = empirical_utilization(
                sampler,
                big_n=num_chunks,
                m=budget,
                s=sample_size,
                rng=seed,
                sample_every=sample_every,
            )
            if name == "uniform":
                theory: Optional[float] = utilization_random(
                    num_chunks, budget
                )
            elif name == "window":
                theory = utilization_window(
                    num_chunks, budget, window_size
                )
            else:
                theory = None  # no closed form for time-based (§3.2.2)
            cells.append(
                Table4Cell(
                    sampler=name,
                    rate=rate,
                    empirical=empirical,
                    theoretical=theory,
                )
            )
    return cells


def figure7(
    scenario: Scenario,
    rates: Sequence[float] = FIG7_RATES,
    samplers: Sequence[str] = SAMPLERS,
    window_fraction: float = 0.5,
    telemetry: Optional[Telemetry] = None,
) -> Dict[Tuple[str, float], float]:
    """Total deployment cost per (sampler, materialization rate).

    The materialization budget is ``rate`` times the number of chunks
    the run will store (deployment chunks plus initial chunks). At
    rate 0.0 / 1.0 the strategies coincide by construction, matching
    the paper's observation.
    """
    window_size = max(int(scenario.num_chunks * window_fraction), 1)
    costs: Dict[Tuple[str, float], float] = {}
    for rate in rates:
        budget = int(round(rate * scenario.num_chunks))
        for name in samplers:
            adapted = scenario.with_continuous(
                sampler=name,
                window_size=window_size if name == "window" else None,
                max_materialized_chunks=budget,
            )
            result = run_continuous(adapted, telemetry=telemetry)
            costs[(name, rate)] = result.total_cost
    return costs


def figure7_no_optimization(
    scenario: Scenario,
    telemetry: Optional[Telemetry] = None,
) -> float:
    """The NoOptimization bar of Figure 7.

    Online statistics computation off and materialization budget zero:
    every sampled chunk is read raw from disk, every stateful
    component's statistics are recomputed, and the chunk is
    re-transformed before the SGD step.
    """
    adapted = scenario.with_continuous(
        sampler="time",
        max_materialized_chunks=0,
        online_statistics=False,
    )
    return run_continuous(adapted, telemetry=telemetry).total_cost
