"""Shared scenario definitions for the experiments.

A :class:`Scenario` bundles everything one deployment run needs —
dataset generator, pipeline/model/optimizer factories, initial-training
settings, and the deployment hyperparameters of each approach — at a
chosen scale. Two scales exist:

* ``"bench"`` — the benchmark scale (hundreds of chunks; minutes of
  wall time for the full suite). This is the scale EXPERIMENTS.md
  records.
* ``"test"`` — a tiny scale for the integration test suite (tens of
  chunks; seconds).

The deployment hyperparameters mirror the paper's proportions: the
periodical baseline retrains ~12 times over the stream (URL: every 10
days of 120; Taxi: monthly over 17 months), and proactive training
fires every 5 chunks with a sample whose size matches the initial
training batch (§5.3: 16k/1M rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Optional

from repro.core.config import (
    ContinuousConfig,
    PeriodicalConfig,
    ScheduleConfig,
)
from repro.core.deployment import (
    ContinuousDeployment,
    Deployment,
    DeploymentResult,
    OnlineDeployment,
    PeriodicalDeployment,
    ThresholdRetrainingDeployment,
)
from repro.data.table import Table
from repro.datasets.taxi import (
    TAXI_FEATURE_COLUMNS,
    TaxiStreamGenerator,
    make_taxi_pipeline,
)
from repro.datasets.drift import GradualDrift
from repro.datasets.url import URLStreamGenerator, make_url_pipeline
from repro.exceptions import ValidationError
from repro.ml.models.base import LinearSGDModel
from repro.ml.models.linear_regression import LinearRegression
from repro.ml.models.svm import LinearSVM
from repro.ml.optim import Optimizer, make_optimizer
from repro.ml.regularizers import L2
from repro.obs.telemetry import Telemetry
from repro.pipeline.pipeline import Pipeline


@dataclass
class Scenario:
    """One dataset + pipeline + deployment parameterisation."""

    name: str
    metric: str
    seed: int
    make_pipeline: Callable[[], Pipeline]
    make_model: Callable[[], LinearSGDModel]
    make_optimizer: Callable[[], Optimizer]
    make_stream: Callable[[], Iterable[Table]]
    make_initial_data: Callable[[], list]
    initial_fit_kwargs: Dict = field(default_factory=dict)
    continuous_config: ContinuousConfig = field(
        default_factory=ContinuousConfig
    )
    periodical_config: PeriodicalConfig = field(
        default_factory=PeriodicalConfig
    )
    num_chunks: int = 0
    #: Row-slice size of the online update shared by every approach
    #: (1 = point-at-a-time online gradient descent, as in the paper).
    online_batch_rows: Optional[int] = None

    def with_continuous(self, **overrides) -> "Scenario":
        """Copy of the scenario with continuous-config overrides."""
        config = replace(self.continuous_config, **overrides)
        return replace(self, continuous_config=config)

    def with_optimizer(
        self, name: str, learning_rate: Optional[float] = None, **kw
    ) -> "Scenario":
        """Copy with a different learning-rate adaptation technique."""
        if learning_rate is not None:
            kw["learning_rate"] = learning_rate
        return replace(
            self, make_optimizer=lambda: make_optimizer(name, **kw)
        )

    def with_regularization(self, strength: float) -> "Scenario":
        """Copy with a different L2 strength on the model."""
        original = self.make_model

        def build() -> LinearSGDModel:
            model = original()
            model.regularizer = L2(strength)
            return model

        return replace(self, make_model=build)


_SCALES = ("bench", "test")


def url_scenario(scale: str = "bench", seed: int = 7) -> Scenario:
    """The URL deployment scenario (SVM, misclassification rate).

    Bench scale: 600 chunks x 50 rows, 1024 hashed features, gradual
    drift with a growing feature space — 1/20th of the paper's 12,000
    chunks with the same qualitative dynamics.
    """
    _check_scale(scale)
    if scale == "bench":
        num_chunks, rows, hash_dim, initial_rows = 600, 50, 1024, 1000
        interval, sample_chunks, retrain_every = 5, 80, 50
        init_iters, retrain_iters = 500, 150
    else:
        num_chunks, rows, hash_dim, initial_rows = 40, 25, 256, 200
        interval, sample_chunks, retrain_every = 5, 8, 10
        init_iters, retrain_iters = 120, 60

    def make_generator() -> URLStreamGenerator:
        return URLStreamGenerator(
            num_chunks=num_chunks,
            rows_per_chunk=rows,
            base_features=400,
            new_features_per_chunk=2,
            drift=GradualDrift(0.02),
            seed=seed,
        )

    return Scenario(
        name=f"url-{scale}",
        metric="classification",
        seed=seed,
        make_pipeline=lambda: make_url_pipeline(hash_features=hash_dim),
        make_model=lambda: LinearSVM(hash_dim, regularizer=L2(1e-3)),
        make_optimizer=lambda: make_optimizer("adam", learning_rate=0.05),
        make_stream=lambda: make_generator().stream(),
        make_initial_data=lambda: make_generator().initial_data(
            initial_rows
        ),
        initial_fit_kwargs={
            "max_iterations": init_iters,
            "tolerance": 1e-6,
        },
        continuous_config=ContinuousConfig(
            sample_size_chunks=sample_chunks,
            schedule=ScheduleConfig(
                kind="static", interval_chunks=interval
            ),
            sampler="time",
            half_life=max(num_chunks // 16, 1),
            online_batch_rows=1,
        ),
        periodical_config=PeriodicalConfig(
            retrain_every_chunks=retrain_every,
            max_epoch_iterations=retrain_iters,
            batch_size=None,
            tolerance=1e-5,
        ),
        num_chunks=num_chunks,
        online_batch_rows=1,
    )


def taxi_scenario(scale: str = "bench", seed: int = 3) -> Scenario:
    """The Taxi deployment scenario (linear regression, RMSLE).

    Bench scale: 400 hourly chunks x 80 rows with a stationary
    concept, ~1/30th of the paper's 12,382 chunks.
    """
    _check_scale(scale)
    if scale == "bench":
        num_chunks, rows, initial_rows = 400, 80, 2000
        interval, sample_chunks, retrain_every = 5, 60, 33
        init_iters, retrain_iters = 500, 200
    else:
        num_chunks, rows, initial_rows = 30, 40, 400
        interval, sample_chunks, retrain_every = 5, 6, 10
        init_iters, retrain_iters = 150, 60

    def make_generator() -> TaxiStreamGenerator:
        return TaxiStreamGenerator(
            num_chunks=num_chunks, rows_per_chunk=rows, seed=seed
        )

    num_features = len(TAXI_FEATURE_COLUMNS)
    return Scenario(
        name=f"taxi-{scale}",
        metric="regression",
        seed=seed,
        make_pipeline=make_taxi_pipeline,
        make_model=lambda: LinearRegression(
            num_features, regularizer=L2(1e-4)
        ),
        make_optimizer=lambda: make_optimizer(
            "rmsprop", learning_rate=0.05
        ),
        make_stream=lambda: make_generator().stream(),
        make_initial_data=lambda: make_generator().initial_data(
            initial_rows
        ),
        initial_fit_kwargs={
            "max_iterations": init_iters,
            "tolerance": 1e-7,
        },
        continuous_config=ContinuousConfig(
            sample_size_chunks=sample_chunks,
            schedule=ScheduleConfig(
                kind="static", interval_chunks=interval
            ),
            sampler="time",
            half_life=max(num_chunks // 16, 1),
            online_batch_rows=1,
        ),
        periodical_config=PeriodicalConfig(
            retrain_every_chunks=retrain_every,
            max_epoch_iterations=retrain_iters,
            batch_size=None,
            tolerance=1e-5,
        ),
        num_chunks=num_chunks,
        online_batch_rows=1,
    )


def _check_scale(scale: str) -> None:
    if scale not in _SCALES:
        raise ValidationError(
            f"scale must be one of {_SCALES}, got {scale!r}"
        )


#: Approach names accepted by :func:`make_deployment`.
APPROACHES = ("online", "periodical", "threshold", "continuous")


def make_deployment(
    scenario: Scenario,
    approach: str,
    telemetry: Optional[Telemetry] = None,
    checkpoint=None,
    fault_plan=None,
    retry=None,
) -> Deployment:
    """Construct (but do not fit) a deployment for the scenario.

    One factory shared by the CLI's ``run``/``recover`` commands, the
    reliability experiments, and the golden recovery tests — they all
    need to build *identically configured* deployments, with only the
    reliability options varying.
    """
    if approach not in APPROACHES:
        raise ValidationError(
            f"approach must be one of {APPROACHES}, got {approach!r}"
        )
    pipeline = scenario.make_pipeline()
    model = scenario.make_model()
    optimizer = scenario.make_optimizer()
    reliability = dict(
        checkpoint=checkpoint, fault_plan=fault_plan, retry=retry
    )
    if approach == "online":
        return OnlineDeployment(
            pipeline,
            model,
            optimizer,
            metric=scenario.metric,
            online_batch_rows=scenario.online_batch_rows,
            telemetry=telemetry,
            **reliability,
        )
    if approach == "periodical":
        return PeriodicalDeployment(
            pipeline,
            model,
            optimizer,
            config=scenario.periodical_config,
            metric=scenario.metric,
            seed=scenario.seed,
            online_batch_rows=scenario.online_batch_rows,
            telemetry=telemetry,
            **reliability,
        )
    if approach == "threshold":
        return ThresholdRetrainingDeployment(
            pipeline,
            model,
            optimizer,
            config=scenario.periodical_config,
            metric=scenario.metric,
            seed=scenario.seed,
            online_batch_rows=scenario.online_batch_rows,
            telemetry=telemetry,
            **reliability,
        )
    return ContinuousDeployment(
        pipeline,
        model,
        optimizer,
        config=scenario.continuous_config,
        metric=scenario.metric,
        seed=scenario.seed,
        telemetry=telemetry,
        **reliability,
    )


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def run_online(
    scenario: Scenario,
    telemetry: Optional[Telemetry] = None,
) -> DeploymentResult:
    """Run the online baseline on the scenario."""
    deployment = OnlineDeployment(
        scenario.make_pipeline(),
        scenario.make_model(),
        scenario.make_optimizer(),
        metric=scenario.metric,
        online_batch_rows=scenario.online_batch_rows,
        telemetry=telemetry,
    )
    deployment.initial_fit(
        scenario.make_initial_data(),
        seed=scenario.seed,
        **scenario.initial_fit_kwargs,
    )
    return deployment.run(scenario.make_stream())


def run_periodical(
    scenario: Scenario,
    telemetry: Optional[Telemetry] = None,
) -> DeploymentResult:
    """Run the periodical baseline on the scenario."""
    deployment = PeriodicalDeployment(
        scenario.make_pipeline(),
        scenario.make_model(),
        scenario.make_optimizer(),
        config=scenario.periodical_config,
        metric=scenario.metric,
        seed=scenario.seed,
        online_batch_rows=scenario.online_batch_rows,
        telemetry=telemetry,
    )
    deployment.initial_fit(
        scenario.make_initial_data(),
        seed=scenario.seed,
        **scenario.initial_fit_kwargs,
    )
    return deployment.run(scenario.make_stream())


def run_continuous(
    scenario: Scenario,
    config: Optional[ContinuousConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> DeploymentResult:
    """Run the continuous approach (optionally overriding its config)."""
    deployment = ContinuousDeployment(
        scenario.make_pipeline(),
        scenario.make_model(),
        scenario.make_optimizer(),
        config=config if config is not None else scenario.continuous_config,
        metric=scenario.metric,
        seed=scenario.seed,
        telemetry=telemetry,
    )
    deployment.initial_fit(
        scenario.make_initial_data(),
        seed=scenario.seed,
        **scenario.initial_fit_kwargs,
    )
    return deployment.run(scenario.make_stream())
