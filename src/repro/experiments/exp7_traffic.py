"""Experiment 7 (extension): a rollout surviving a traffic spike.

Experiments 1-6 drive deployments chunk-at-a-time; real serving is a
request stream with its own physics — bursts, queues, drops. This
experiment stages a candidate next to the live model and throws an
open-loop traffic spike at the pair while proactive training keeps
producing on the side, measuring what the paper's platform would
actually expose to users:

* **steady** — the candidate shadows full traffic at the base rate;
  micro-batching amortizes transform + predict work, nobody sheds,
  p99 latency sits inside the SLO budget;
* **spike** — the candidate serves a canary fraction while a burst
  episode multiplies the arrival rate; the admission queue fills,
  load shedding engages, and the health monitor's p99/shed-rate
  rules raise incidents;
* **recovery** — the burst passes, the queue drains, and the same
  rules resolve their incidents — the exported ``health.json`` shows
  the full fire-and-resolve arc on the virtual clock.

Between phases the trainer platform continues over fresh stream
chunks; its training cost advances the shared simulation clock, so
"training continues while serving" is literal, not decorative.

Determinism is the headline: the batched prediction streams are
bit-identical to row-at-a-time serving of the same requests, and a
fresh endpoint replaying the same seeds reproduces every shed
decision, dispatch order, and latency percentile byte-for-byte.
"""

from __future__ import annotations

import copy
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.core.platform import ContinuousDeploymentPlatform
from repro.data.table import Table
from repro.experiments.common import Scenario
from repro.obs import names
from repro.obs.telemetry import Telemetry
from repro.serving.endpoint import ServingEndpoint
from repro.serving.registry import ModelRegistry
from repro.traffic.generator import (
    Arrivals,
    BurstEpisode,
    OpenLoopGenerator,
    TrafficPattern,
)
from repro.traffic.simulate import (
    SimulationConfig,
    SimulationResult,
    TrafficSimulator,
    VirtualClock,
)

#: Phase names, in execution order.
PHASES = ("steady", "spike", "recovery")


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs for the three-phase traffic run (times in cost units)."""

    num_users: int = 1_000_000
    rows_per_request: tuple = (2, 6)
    base_rate: float = 60.0
    burst_multiplier: float = 100.0
    #: Burst window inside the spike phase, relative to phase start.
    burst_start: float = 0.3
    burst_duration: float = 0.3
    steady_horizon: float = 1.5
    spike_horizon: float = 2.0
    recovery_horizon: float = 1.5
    canary_fraction: float = 0.3
    #: Trainer chunks consumed between serving phases.
    train_chunks_between: int = 3
    sim: SimulationConfig = field(
        default_factory=lambda: SimulationConfig(
            max_batch_size=8,
            max_wait=0.02,
            queue_capacity=128,
            concurrency=1,
        )
    )
    #: SLO budget the p99 alert enforces.
    p99_budget: float = 0.03
    #: Admissible drops per monitor window before the shed alert.
    shed_per_window: float = 1.0


def default_traffic_config(scenario: Scenario) -> TrafficConfig:
    """Scale-appropriate defaults (the test scale must run in seconds
    yet still overload the queue mid-burst and recover after)."""
    if scenario.num_chunks <= 60:
        return TrafficConfig()
    return TrafficConfig(
        base_rate=120.0,
        steady_horizon=4.0,
        spike_horizon=6.0,
        recovery_horizon=4.0,
        train_chunks_between=8,
    )


@dataclass
class PhaseOutcome:
    """One phase's simulation result plus the staging mode it ran in."""

    phase: str
    mode: str
    result: SimulationResult


@dataclass
class TrafficExperimentResult:
    """Everything ``repro exp7`` reports."""

    phases: Dict[str, PhaseOutcome]
    training_chunks: int
    training_cost: float
    #: Batched streams == row-at-a-time streams, all phases.
    bit_identical: bool
    #: Fresh-endpoint replay reproduced every phase digest.
    replay_identical: bool
    primary_version: str
    candidate_version: str


def _train_platform(scenario: Scenario):
    """The trainer side: a continuous platform plus its artifacts."""
    pipeline = scenario.make_pipeline()
    model = scenario.make_model()
    optimizer = scenario.make_optimizer()
    platform = ContinuousDeploymentPlatform(
        pipeline,
        model,
        optimizer,
        config=scenario.continuous_config,
        seed=scenario.seed,
    )
    platform.initial_fit(
        scenario.make_initial_data(),
        seed=scenario.seed,
        store=True,
        **scenario.initial_fit_kwargs,
    )
    return platform, (pipeline, model, optimizer)


def _build_world(scenario: Scenario, config: TrafficConfig, root):
    """Train v1/v2, build the registry, replay pool, and trainer tail.

    v1 is the initial fit; v2 has additionally consumed the first
    quarter of the stream — a genuinely better candidate worth
    staging. The replay pool is drawn from later stream chunks
    (requests sample rows the models never trained on), and the
    remaining chunks feed the between-phase training.
    """
    platform, artifacts = _train_platform(scenario)
    v1_parts = copy.deepcopy(artifacts)
    chunks: List[Table] = list(scenario.make_stream())
    warm = max(len(chunks) // 4, 2)
    for table in chunks[:warm]:
        platform.observe(table)
    v2_parts = copy.deepcopy(artifacts)
    pool_span = chunks[warm:warm + max(len(chunks) // 4, 2)]
    pool = Table.concat(pool_span)
    remaining = chunks[warm + len(pool_span):]
    registry = ModelRegistry(Path(root) / "registry")
    v1 = registry.register(*v1_parts, metrics={"origin": 0.0})
    registry.promote(v1.version, reason="initial deployment")
    v2 = registry.register(
        *v2_parts, chunks_observed=warm, metrics={"origin": 1.0}
    )
    return platform, registry, pool, remaining, v1.version, v2.version


def _patterns(config: TrafficConfig) -> Dict[str, TrafficPattern]:
    steady = TrafficPattern(base_rate=config.base_rate)
    spike = TrafficPattern(
        base_rate=config.base_rate,
        bursts=(
            BurstEpisode(
                start=config.burst_start,
                duration=config.burst_duration,
                multiplier=config.burst_multiplier,
            ),
        ),
    )
    return {"steady": steady, "spike": spike, "recovery": steady}


def _phase_arrivals(
    scenario: Scenario, config: TrafficConfig, pool_rows: int
) -> Dict[str, Arrivals]:
    """Pre-generate each phase's arrival stream (seeded per phase).

    Burst times inside the spike pattern are phase-relative; the
    simulator offsets arrivals by the shared clock at phase start.
    """
    patterns = _patterns(config)
    horizons = {
        "steady": config.steady_horizon,
        "spike": config.spike_horizon,
        "recovery": config.recovery_horizon,
    }
    out = {}
    for offset, phase in enumerate(PHASES):
        generator = OpenLoopGenerator(
            patterns[phase],
            num_users=config.num_users,
            pool_rows=pool_rows,
            rows_per_request=config.rows_per_request,
            seed=scenario.seed + 100 + offset,
        )
        out[phase] = generator.generate(horizons[phase])
    return out


def _run_phases(
    endpoint: ServingEndpoint,
    pool: Table,
    arrivals: Dict[str, Arrivals],
    config: TrafficConfig,
    candidate_version: str,
    clock: VirtualClock,
    telemetry: Optional[Telemetry] = None,
    between_phase=None,
) -> Dict[str, PhaseOutcome]:
    """Steady (shadow) → spike (canary) → recovery (canary)."""
    simulator = TrafficSimulator(
        endpoint, pool, config.sim, telemetry=telemetry, clock=clock
    )
    outcomes: Dict[str, PhaseOutcome] = {}
    endpoint.attach_candidate(candidate_version, mode="shadow")
    outcomes["steady"] = PhaseOutcome(
        "steady", "shadow", simulator.run(arrivals["steady"])
    )
    if between_phase is not None:
        between_phase()
    endpoint.detach_candidate()
    endpoint.attach_candidate(
        candidate_version,
        mode="canary",
        fraction=config.canary_fraction,
    )
    outcomes["spike"] = PhaseOutcome(
        "spike", "canary", simulator.run(arrivals["spike"])
    )
    if between_phase is not None:
        between_phase()
    outcomes["recovery"] = PhaseOutcome(
        "recovery", "canary", simulator.run(arrivals["recovery"])
    )
    return outcomes


def _row_at_a_time_identical(
    registry: ModelRegistry,
    pool: Table,
    arrivals: Dict[str, Arrivals],
    outcomes: Dict[str, PhaseOutcome],
    config: TrafficConfig,
    candidate_version: str,
    seed,
) -> bool:
    """Re-serve every dispatched request alone; compare the streams.

    A fresh endpoint (same registry, same routing seed) serves each
    request of each phase row-at-a-time in dispatch order; the
    flattened per-side prediction streams must match the simulator's
    batched streams bit for bit.
    """
    for phase in PHASES:
        outcome = outcomes[phase]
        endpoint = ServingEndpoint(registry, seed=seed)
        if outcome.mode == "shadow":
            endpoint.attach_candidate(candidate_version, mode="shadow")
        else:
            endpoint.attach_candidate(
                candidate_version,
                mode="canary",
                fraction=config.canary_fraction,
            )
        primary_parts: List[np.ndarray] = []
        candidate_parts: List[np.ndarray] = []
        stream = arrivals[phase]
        for request_id in outcome.result.dispatch_order:
            table = pool.take(stream.request_rows(request_id))
            served = endpoint.predict(table, chunk_index=request_id)
            primary_parts.append(served.primary_predictions)
            candidate_parts.append(served.candidate_predictions)
        empty = np.empty(0, dtype=np.float64)
        primary = (
            np.concatenate(primary_parts) if primary_parts else empty
        )
        candidate = (
            np.concatenate(candidate_parts)
            if candidate_parts
            else empty
        )
        if not np.array_equal(primary, outcome.result.primary_stream):
            return False
        if not np.array_equal(
            candidate, outcome.result.candidate_stream
        ):
            return False
    return True


def run_traffic_experiment(
    scenario: Scenario,
    config: Optional[TrafficConfig] = None,
    telemetry: Optional[Telemetry] = None,
    workdir=None,
    verify_identity: bool = True,
) -> TrafficExperimentResult:
    """The full three-phase run (see the module docstring)."""
    if config is None:
        config = default_traffic_config(scenario)

    def run_in(root) -> TrafficExperimentResult:
        platform, registry, pool, remaining, v1, v2 = _build_world(
            scenario, config, root
        )
        arrivals = _phase_arrivals(scenario, config, pool.num_rows)
        clock = VirtualClock()
        endpoint = ServingEndpoint(
            registry, seed=scenario.seed, telemetry=telemetry
        )
        training = {"chunks": 0, "cost": 0.0}
        chunk_iter = iter(remaining)

        def between_phase() -> None:
            # Proactive training continues while serving pauses
            # between phases; its cost advances the shared timeline.
            cost_before = platform.engine.total_cost()
            for _ in range(config.train_chunks_between):
                table = next(chunk_iter, None)
                if table is None:
                    break
                platform.observe(table)
                training["chunks"] += 1
                if telemetry is not None and telemetry.enabled:
                    telemetry.metrics.counter(
                        names.TRAFFIC_TRAINING_CHUNKS
                    ).inc()
            training["cost"] += (
                platform.engine.total_cost() - cost_before
            )
            clock.advance(
                clock.now + platform.engine.total_cost() - cost_before
            )

        outcomes = _run_phases(
            endpoint,
            pool,
            arrivals,
            config,
            v2,
            clock,
            telemetry=telemetry,
            between_phase=between_phase,
        )
        bit_identical = True
        replay_identical = True
        if verify_identity:
            bit_identical = _row_at_a_time_identical(
                registry, pool, arrivals, outcomes, config, v2,
                scenario.seed,
            )
            replay_endpoint = ServingEndpoint(
                registry, seed=scenario.seed
            )
            replay = _run_phases(
                replay_endpoint,
                pool,
                arrivals,
                config,
                v2,
                VirtualClock(),
                telemetry=None,
                between_phase=None,
            )
            replay_identical = all(
                replay[phase].result.digest()
                == outcomes[phase].result.digest()
                for phase in PHASES
            )
        return TrafficExperimentResult(
            phases=outcomes,
            training_chunks=training["chunks"],
            training_cost=training["cost"],
            bit_identical=bit_identical,
            replay_identical=replay_identical,
            primary_version=v1,
            candidate_version=v2,
        )

    if workdir is not None:
        return run_in(workdir)
    with tempfile.TemporaryDirectory() as root:
        return run_in(root)


def headline_claims(
    result: TrafficExperimentResult,
) -> Dict[str, float]:
    """The numbers the experiment exists to produce."""
    steady = result.phases["steady"].result.report
    spike = result.phases["spike"].result.report
    recovery = result.phases["recovery"].result.report
    return {
        "steady_shed": float(steady.shed),
        "spike_shed": float(spike.shed),
        "recovery_shed": float(recovery.shed),
        "steady_p99_latency": steady.latency["p99"],
        "spike_p99_latency": spike.latency["p99"],
        "recovery_p99_latency": recovery.latency["p99"],
        "spike_vs_steady_p99_ratio": (
            spike.latency["p99"] / steady.latency["p99"]
            if steady.latency["p99"] > 0
            else 0.0
        ),
        "mean_batch_size": spike.mean_batch_size,
        "training_chunks_during_run": float(result.training_chunks),
        "batched_equals_row_at_a_time": float(result.bit_identical),
        "replay_byte_identical": float(result.replay_identical),
    }
