"""Rollout controller: the promotion state machine.

Ties the registry, the endpoint, and the quality gate together::

    idle ──stage()──▶ shadow/canary ──sustained win──▶ monitoring
                          │                                │
                          │ regression / drift             │ regression
                          ▼                                ▼
                   candidate rejected              registry.rollback()
                   (live unchanged)               (previous live back)
                          │                                │
                          ▼                                ▼
                        idle ◀─────────────────────────── idle

While a candidate is staged, every served batch feeds the
:class:`~repro.serving.gate.QualityGate`. A sustained win promotes:
the registry's live pointer moves, the endpoint swaps the candidate
in, and a :class:`~repro.serving.gate.BaselineMonitor` keeps watching
the newly-live version against the incumbent's frozen error level. A
regression at any stage reverts automatically — before promotion the
candidate is rejected and the live version never changes; after
promotion the registry rolls back to the previous live version.

Every transition lands in the obs trace (``rollout.*`` points) and
the metrics registry (``rollout.*`` counters), and is appended to
:attr:`RolloutController.log` for offline inspection.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import ServingError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs import names
from repro.serving.endpoint import ServedBatch, ServingEndpoint
from repro.serving.gate import (
    BaselineMonitor,
    GateConfig,
    GateDecision,
    QualityGate,
    errors_from_predictions,
)
from repro.serving.registry import ModelRegistry

#: Controller states.
STATES = ("idle", "shadow", "canary", "monitoring")


class RolloutController:
    """Drives candidates through staged rollout with automatic
    promotion and rollback.

    Parameters
    ----------
    registry, endpoint:
        The version store and the serving front-end (the endpoint
        must serve from the same registry).
    metric:
        ``"classification"`` (error rate) or ``"regression"`` (RMSE
        in the model's target space), as in the deployments.
    config:
        Gate thresholds; shared by staging gates and post-promotion
        monitors.
    telemetry:
        Optional observability bundle for transition events.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        endpoint: ServingEndpoint,
        metric: str = "classification",
        config: Optional[GateConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if endpoint.registry is not registry:
            raise ServingError(
                "endpoint serves a different registry than the "
                "controller manages"
            )
        if metric not in ("classification", "regression"):
            raise ServingError(
                f"metric must be 'classification' or 'regression', "
                f"got {metric!r}"
            )
        self.registry = registry
        self.endpoint = endpoint
        self.kind = "rate" if metric == "classification" else "rmse"
        self.config = config if config is not None else GateConfig()
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.state = "idle"
        self.gate: Optional[QualityGate] = None
        self.monitor: Optional[BaselineMonitor] = None
        #: Transition log: dicts with at least ``action`` and ``version``.
        self.log: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    def stage(
        self, version: str, mode: str = "canary", fraction: float = 0.1
    ) -> None:
        """Attach a candidate version for staged evaluation.

        Staging is allowed from ``idle`` and from ``monitoring`` (a
        new candidate supersedes the watch on the previous rollout).
        """
        if self.state in ("shadow", "canary"):
            raise ServingError(
                f"cannot stage {version}: a rollout of "
                f"{self.endpoint.candidate_version} is in progress"
            )
        info = self.registry.get(version)
        if info.status != "candidate":
            raise ServingError(
                f"only candidates can be staged; {version} is "
                f"{info.status}"
            )
        self.monitor = None
        self.endpoint.attach_candidate(version, mode=mode, fraction=fraction)
        self.gate = QualityGate(self.kind, self.config)
        self.state = mode
        self._transition(
            "stage", version=version, mode=mode, fraction=fraction
        )

    def observe(self, served: ServedBatch) -> str:
        """Feed one served batch; returns the action taken.

        Actions: ``"continue"``, ``"promote"`` (candidate went live),
        ``"reject"`` (staged candidate failed, live unchanged),
        ``"rollback"`` (post-promotion regression, previous live
        reinstated).
        """
        if self.state in ("shadow", "canary"):
            return self._observe_staged(served)
        if self.state == "monitoring":
            return self._observe_monitored(served)
        return "continue"

    # ------------------------------------------------------------------
    def _observe_staged(self, served: ServedBatch) -> str:
        assert self.gate is not None
        candidate_errors = errors_from_predictions(
            self.kind,
            served.candidate_predictions,
            served.candidate_labels,
        )
        incumbent_errors = errors_from_predictions(
            self.kind, served.primary_predictions, served.primary_labels
        )
        decision = self.gate.observe(candidate_errors, incumbent_errors)
        if decision is GateDecision.PROMOTE:
            return self._promote()
        if decision is GateDecision.ROLLBACK:
            return self._reject()
        return "continue"

    def _observe_monitored(self, served: ServedBatch) -> str:
        assert self.monitor is not None
        live_errors = errors_from_predictions(
            self.kind, served.primary_predictions, served.primary_labels
        )
        decision = self.monitor.observe(live_errors)
        if decision is GateDecision.ROLLBACK:
            return self._rollback()
        return "continue"

    # ------------------------------------------------------------------
    def _promote(self) -> str:
        assert self.gate is not None
        version = str(self.endpoint.candidate_version)
        candidate = self.gate.candidate_value()
        incumbent = self.gate.incumbent_value()
        reason = (
            f"gate win: candidate {candidate:.4f} vs incumbent "
            f"{incumbent:.4f} ({self.kind})"
        )
        self.registry.promote(version, reason=reason)
        self.endpoint.promote_candidate()
        self.monitor = BaselineMonitor(
            incumbent, kind=self.kind, config=self.config
        )
        self.gate = None
        self.state = "monitoring"
        self._transition(
            "promote",
            version=version,
            candidate_value=candidate,
            incumbent_value=incumbent,
        )
        return "promote"

    def _reject(self) -> str:
        assert self.gate is not None
        candidate = self.gate.candidate_value()
        incumbent = self.gate.incumbent_value()
        version = str(self.endpoint.detach_candidate())
        reason = (
            f"gate regression: candidate {candidate:.4f} vs incumbent "
            f"{incumbent:.4f} ({self.kind})"
        )
        self.registry.reject(version, reason=reason)
        self.gate = None
        self.state = "idle"
        self._transition(
            "reject",
            version=version,
            candidate_value=candidate,
            incumbent_value=incumbent,
        )
        return "reject"

    def _rollback(self) -> str:
        assert self.monitor is not None
        failed = str(self.endpoint.primary_version)
        live_value = self.monitor.value()
        reason = (
            f"live regression: {live_value:.4f} vs baseline "
            f"{self.monitor.baseline:.4f} ({self.kind})"
        )
        restored = self.registry.rollback(reason=reason)
        self.endpoint.reload_live()
        self.monitor = None
        self.state = "idle"
        self._transition(
            "rollback",
            version=restored.version,
            failed=failed,
            live_value=live_value,
        )
        return "rollback"

    # ------------------------------------------------------------------
    def _transition(self, action: str, **attrs: object) -> None:
        entry: Dict[str, object] = {"action": action, **attrs}
        self.log.append(entry)
        if self.telemetry.enabled:
            self.telemetry.tracer.point(names.ROLLOUT_PREFIX + action, **attrs)
            self.telemetry.metrics.counter(names.ROLLOUT_PREFIX + action).inc()

    def __repr__(self) -> str:
        return (
            f"RolloutController(state={self.state!r}, "
            f"live={self.registry.live_version}, "
            f"candidate={self.endpoint.candidate_version})"
        )
