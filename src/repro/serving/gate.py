"""Quality gate: decides promote / keep-watching / roll back.

Two comparison modes cover the rollout lifecycle:

* :class:`QualityGate` — *staged* comparison. While a candidate is in
  shadow or canary, every served batch contributes paired error
  observations (candidate rows vs incumbent rows over the same
  traffic). The gate promotes on a *sustained* win — the candidate
  must be at least ``promote_margin`` better for ``promote_after``
  consecutive evaluations — and signals rollback on a sustained
  regression or when the drift detector fires on the candidate's
  error stream.
* :class:`BaselineMonitor` — *post-promotion* watch. After a
  promotion, the incumbent's error level at decision time is frozen
  as the baseline; if the newly-live version regresses past
  ``rollback_margin`` for ``rollback_after`` consecutive batches, the
  monitor signals rollback.

Error aggregation follows :mod:`repro.ml.metrics`: ``"rate"`` for
classification (mean 0/1 errors), ``"rmse"`` for regression (root
mean squared residual — RMSLE when the model works in log space).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.driftdetect.window import WindowComparisonDetector
from repro.driftdetect.base import DriftState
from repro.exceptions import ServingError


class GateDecision(enum.Enum):
    """Verdict after folding in one batch of paired observations."""

    CONTINUE = "continue"
    PROMOTE = "promote"
    ROLLBACK = "rollback"


@dataclass(frozen=True)
class GateConfig:
    """Thresholds of the promotion state machine.

    Parameters
    ----------
    min_samples:
        Rows each side must accumulate before any verdict — protects
        against deciding on noise from the first few batches.
    promote_after:
        Consecutive winning evaluations required to promote
        (a *sustained* win, one evaluation per served batch).
    promote_margin:
        Relative improvement required to count a win: 0.05 means the
        candidate error must be ≥5% below the incumbent's.
    rollback_after:
        Consecutive regressing evaluations required to roll back.
    rollback_margin:
        Relative regression that counts as a strike: 0.1 means ≥10%
        above the incumbent (or baseline) error.
    drift_window:
        Window length of the drift detector run over the candidate's
        per-row error stream; a DRIFT verdict forces rollback
        immediately, bypassing the strike counter.
    drift_ratio:
        Relative degradation the drift detector fires at.
    """

    min_samples: int = 200
    promote_after: int = 3
    promote_margin: float = 0.0
    rollback_after: int = 2
    rollback_margin: float = 0.1
    drift_window: int = 50
    drift_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ServingError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.promote_after < 1 or self.rollback_after < 1:
            raise ServingError(
                "promote_after and rollback_after must be >= 1"
            )
        if self.promote_margin < 0 or self.rollback_margin < 0:
            raise ServingError(
                "promote_margin and rollback_margin must be >= 0"
            )


def _aggregate(kind: str, error_sum: float, count: int) -> float:
    """Error sum + count → comparable scalar (rate or RMSE)."""
    if count == 0:
        return 0.0
    mean = error_sum / count
    return math.sqrt(mean) if kind == "rmse" else mean


def errors_from_predictions(
    kind: str, predictions: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Per-row error contributions for ``kind``.

    ``"rate"`` — 0/1 misclassification indicators; ``"rmse"`` —
    squared residuals. Summing these and dividing by the row count
    reproduces the library's metric definitions exactly.
    """
    if kind == "rate":
        return (
            np.asarray(predictions) != np.asarray(labels)
        ).astype(np.float64)
    residual = np.asarray(predictions, dtype=np.float64) - np.asarray(
        labels, dtype=np.float64
    )
    return residual * residual


class QualityGate:
    """Staged candidate-vs-incumbent comparison (see module docs).

    Parameters
    ----------
    kind:
        ``"rate"`` or ``"rmse"`` — how error sums aggregate.
    config:
        Decision thresholds.
    """

    def __init__(
        self, kind: str = "rate", config: Optional[GateConfig] = None
    ) -> None:
        if kind not in ("rate", "rmse"):
            raise ServingError(
                f"kind must be 'rate' or 'rmse', got {kind!r}"
            )
        self.kind = kind
        self.config = config if config is not None else GateConfig()
        self._candidate_error = 0.0
        self._candidate_count = 0
        self._incumbent_error = 0.0
        self._incumbent_count = 0
        self._win_streak = 0
        self._strike_count = 0
        self._evaluations = 0
        self.detector = WindowComparisonDetector(
            window_size=self.config.drift_window,
            ratio=self.config.drift_ratio,
        )

    # ------------------------------------------------------------------
    def observe(
        self,
        candidate_errors: np.ndarray,
        incumbent_errors: np.ndarray,
    ) -> GateDecision:
        """Fold in one batch of per-row errors; return the verdict.

        Either array may be empty (a canary batch can route all rows
        to one side); the gate simply keeps accumulating.
        """
        candidate_errors = np.asarray(candidate_errors, dtype=np.float64)
        incumbent_errors = np.asarray(incumbent_errors, dtype=np.float64)
        self._candidate_error += float(candidate_errors.sum())
        self._candidate_count += candidate_errors.size
        self._incumbent_error += float(incumbent_errors.sum())
        self._incumbent_count += incumbent_errors.size
        drifted = (
            self.detector.update_many(candidate_errors)
            is DriftState.DRIFT
            if candidate_errors.size
            else False
        )
        if (
            self._candidate_count < self.config.min_samples
            or self._incumbent_count < self.config.min_samples
        ):
            return GateDecision.CONTINUE
        self._evaluations += 1
        candidate = self.candidate_value()
        incumbent = self.incumbent_value()
        degradation = (candidate - incumbent) / max(incumbent, 1e-12)
        if drifted or degradation > self.config.rollback_margin:
            self._win_streak = 0
            self._strike_count += 1
            if drifted or self._strike_count >= self.config.rollback_after:
                return GateDecision.ROLLBACK
            return GateDecision.CONTINUE
        if degradation <= -self.config.promote_margin:
            self._strike_count = 0
            self._win_streak += 1
            if self._win_streak >= self.config.promote_after:
                return GateDecision.PROMOTE
            return GateDecision.CONTINUE
        self._win_streak = 0
        self._strike_count = 0
        return GateDecision.CONTINUE

    # ------------------------------------------------------------------
    def candidate_value(self) -> float:
        return _aggregate(
            self.kind, self._candidate_error, self._candidate_count
        )

    def incumbent_value(self) -> float:
        return _aggregate(
            self.kind, self._incumbent_error, self._incumbent_count
        )

    @property
    def samples(self) -> tuple:
        """(candidate_rows, incumbent_rows) accumulated so far."""
        return self._candidate_count, self._incumbent_count

    def __repr__(self) -> str:
        return (
            f"QualityGate(kind={self.kind!r}, "
            f"candidate={self.candidate_value():.4f}/"
            f"{self._candidate_count}, "
            f"incumbent={self.incumbent_value():.4f}/"
            f"{self._incumbent_count})"
        )


class BaselineMonitor:
    """Post-promotion regression watch against a frozen baseline.

    Parameters
    ----------
    baseline:
        The error level the newly-live version must hold (typically
        the incumbent's value when the promotion decision was made).
    kind, config:
        As in :class:`QualityGate`; ``rollback_margin`` and
        ``rollback_after`` apply per *batch* here, evaluated over a
        sliding window of ``drift_window`` recent rows.
    """

    def __init__(
        self,
        baseline: float,
        kind: str = "rate",
        config: Optional[GateConfig] = None,
    ) -> None:
        if baseline < 0:
            raise ServingError(
                f"baseline must be >= 0, got {baseline}"
            )
        self.baseline = float(baseline)
        self.kind = kind
        self.config = config if config is not None else GateConfig()
        self._recent: list = []
        self._strike_count = 0

    def observe(self, live_errors: np.ndarray) -> GateDecision:
        """Fold in the live version's per-row errors for one batch."""
        live_errors = np.asarray(live_errors, dtype=np.float64)
        if live_errors.size:
            self._recent.extend(live_errors.tolist())
            overflow = len(self._recent) - self.config.drift_window
            if overflow > 0:
                del self._recent[:overflow]
        if len(self._recent) < min(
            self.config.min_samples, self.config.drift_window
        ):
            return GateDecision.CONTINUE
        value = _aggregate(
            self.kind, float(np.sum(self._recent)), len(self._recent)
        )
        floor = max(self.baseline, 1e-12)
        if (value - self.baseline) / floor > self.config.rollback_margin:
            self._strike_count += 1
            if self._strike_count >= self.config.rollback_after:
                return GateDecision.ROLLBACK
        else:
            self._strike_count = 0
        return GateDecision.CONTINUE

    def value(self) -> float:
        """Current windowed error of the live version."""
        if not self._recent:
            return 0.0
        return _aggregate(
            self.kind, float(np.sum(self._recent)), len(self._recent)
        )

    def __repr__(self) -> str:
        return (
            f"BaselineMonitor(baseline={self.baseline:.4f}, "
            f"value={self.value():.4f})"
        )
