"""Prediction serving over registry versions: live, shadow, canary.

:class:`ServingEndpoint` answers prediction batches from the
registry's live version. A rollout may additionally attach a
*candidate* version in one of two staging modes:

* **shadow** — every batch is also scored by the candidate; its
  predictions are recorded for the quality gate but never returned.
  The primary path is untouched, so the caller-visible predictions
  are byte-identical to a run without the shadow.
* **canary** — a configurable fraction of rows is served *by* the
  candidate. The split is deterministic per-row hash routing
  (:mod:`repro.serving.routing`): the same logical row always lands
  on the same side, independent of batch boundaries or replays.

Every batch produces a :class:`ServedBatch` carrying the per-side
predictions and labels the :class:`~repro.serving.gate.QualityGate`
compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.data.table import Table
from repro.exceptions import ServingError
from repro.execution.cost import CostModel
from repro.execution.engine import LocalExecutionEngine
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs import names
from repro.persistence import DeploymentBundle
from repro.serving.registry import ModelRegistry
from repro.serving.routing import derive_routing_seed, route_mask, row_keys
from repro.utils.rng import SeedLike

#: Staging modes a candidate can be attached in.
MODES = ("shadow", "canary")

_EMPTY = np.empty(0, dtype=np.float64)


@dataclass
class ServedBatch:
    """One served prediction batch, with per-side detail.

    ``predictions``/``labels`` are what the caller consumes — in
    canary mode the rows served by the primary come first, then the
    canary rows (pipelines may filter rows per side, so a positional
    merge back into input order is not defined in general).
    """

    predictions: np.ndarray
    labels: np.ndarray
    primary_version: str
    mode: str = "solo"
    candidate_version: Optional[str] = None
    #: Rows answered by the live version (full batch in solo/shadow).
    primary_predictions: np.ndarray = field(default_factory=lambda: _EMPTY)
    primary_labels: np.ndarray = field(default_factory=lambda: _EMPTY)
    #: Rows scored by the candidate (mirror in shadow, split in canary).
    candidate_predictions: np.ndarray = field(
        default_factory=lambda: _EMPTY
    )
    candidate_labels: np.ndarray = field(default_factory=lambda: _EMPTY)
    #: Fraction of input rows routed to the canary (0 outside canary).
    canary_share: float = 0.0


class ServingEndpoint:
    """Routes prediction batches to registry versions.

    Parameters
    ----------
    registry:
        The version store; the endpoint serves its live version.
    cost_model:
        Prices for the endpoint's execution engine.
    seed:
        Seeds the deterministic canary routing salt (via
        :mod:`repro.utils.rng`), so a restart reproduces the split.
    telemetry:
        Optional observability bundle (``serving.predict`` spans,
        shadow/canary row counters).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        cost_model: Optional[CostModel] = None,
        seed: SeedLike = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.registry = registry
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.engine = LocalExecutionEngine(
            cost_model, telemetry=self.telemetry
        )
        self._routing_salt = derive_routing_seed(seed)
        self._primary_version: Optional[str] = None
        self._primary: Optional[DeploymentBundle] = None
        self._candidate_version: Optional[str] = None
        self._candidate: Optional[DeploymentBundle] = None
        self._mode: Optional[str] = None
        self._fraction = 0.0
        self._batch_index = -1
        if registry.live_version is not None:
            self.reload_live()

    # ------------------------------------------------------------------
    @property
    def primary_version(self) -> Optional[str]:
        return self._primary_version

    @property
    def candidate_version(self) -> Optional[str]:
        return self._candidate_version

    @property
    def mode(self) -> str:
        """``"solo"`` when no candidate is attached, else the stage mode."""
        return self._mode if self._mode is not None else "solo"

    @property
    def primary_bundle(self) -> Optional[DeploymentBundle]:
        """The in-memory artifacts currently serving primary traffic."""
        return self._primary

    # ------------------------------------------------------------------
    # Version management
    # ------------------------------------------------------------------
    def reload_live(self) -> str:
        """(Re)load the registry's live version as the primary."""
        version = self.registry.live_version
        if version is None:
            raise ServingError(
                "registry has no live version to serve; promote one "
                "first"
            )
        self._primary = self.registry.load(version)
        self._primary_version = version
        return version

    def attach_candidate(
        self, version: str, mode: str = "shadow", fraction: float = 0.1
    ) -> None:
        """Stage a candidate next to the live version.

        ``fraction`` only applies to canary mode; shadow always
        mirrors the full batch.
        """
        if self._primary is None:
            raise ServingError(
                "attach_candidate: endpoint has no live version"
            )
        if mode not in MODES:
            raise ServingError(
                f"mode must be one of {MODES}, got {mode!r}"
            )
        if self._candidate is not None:
            raise ServingError(
                f"a candidate ({self._candidate_version}) is already "
                f"attached; detach it first"
            )
        if version == self._primary_version:
            raise ServingError(
                f"candidate {version} is already the live version"
            )
        if mode == "canary" and not 0.0 < fraction <= 1.0:
            raise ServingError(
                f"canary fraction must be in (0, 1], got {fraction}"
            )
        self._candidate = self.registry.load(version)
        self._candidate_version = version
        self._mode = mode
        self._fraction = fraction if mode == "canary" else 0.0
        if self.telemetry.enabled:
            self.telemetry.tracer.point(
                names.SERVING_ATTACH,
                version=version,
                mode=mode,
                fraction=self._fraction,
            )

    def detach_candidate(self) -> Optional[str]:
        """Remove the staged candidate; returns its version id."""
        version = self._candidate_version
        self._candidate = None
        self._candidate_version = None
        self._mode = None
        self._fraction = 0.0
        return version

    def promote_candidate(self) -> str:
        """Make the in-memory candidate the primary (post-promotion).

        Call after :meth:`ModelRegistry.promote`; avoids re-reading
        the bundle that is already loaded.
        """
        if self._candidate is None:
            raise ServingError("promote_candidate: no candidate attached")
        self._primary = self._candidate
        self._primary_version = self._candidate_version
        self.detach_candidate()
        return str(self._primary_version)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def predict(
        self, table: Table, chunk_index: Optional[int] = None
    ) -> ServedBatch:
        """Serve one prediction batch.

        ``chunk_index`` keys the deterministic canary routing; when
        omitted, an internal batch counter is used (stable within one
        endpoint lifetime, but not across restarts — pass the
        deployment chunk index for replay-stable routing).
        """
        if self._primary is None:
            raise ServingError("endpoint has no live version to serve")
        self._batch_index += 1
        index = (
            chunk_index if chunk_index is not None else self._batch_index
        )
        cost_before = self.engine.total_cost()
        if self._mode == "canary":
            served = self._predict_canary(table, index)
        elif self._mode == "shadow":
            served = self._predict_shadow(table)
        else:
            predictions, labels = self._score(self._primary, table)
            served = ServedBatch(
                predictions=predictions,
                labels=labels,
                primary_version=str(self._primary_version),
                primary_predictions=predictions,
                primary_labels=labels,
            )
        if self.telemetry.enabled:
            # Per-batch serving latency on the virtual clock — the
            # health monitor's SLO signal. A point + histogram, not a
            # span, so profile digests stay stable.
            batch_cost = self.engine.total_cost() - cost_before
            self.telemetry.metrics.observe(
                names.SERVING_LATENCY, batch_cost
            )
            self.telemetry.tracer.point(
                names.SERVING_LATENCY,
                cost=batch_cost,
                rows=table.num_rows,
                mode=served.mode,
            )
            self.telemetry.metrics.counter(names.SERVING_BATCHES).inc()
            self.telemetry.metrics.counter(names.SERVING_ROWS).inc(
                table.num_rows
            )
            if served.mode == "canary":
                self.telemetry.metrics.counter(
                    names.SERVING_CANARY_ROWS
                ).inc(len(served.candidate_predictions))
            elif served.mode == "shadow":
                self.telemetry.metrics.counter(
                    names.SERVING_SHADOW_ROWS
                ).inc(len(served.candidate_predictions))
        return served

    # ------------------------------------------------------------------
    def _predict_shadow(self, table: Table) -> ServedBatch:
        # The primary path runs first and exactly as in solo mode, so
        # its predictions stay byte-identical with a shadow attached.
        predictions, labels = self._score(self._primary, table)
        shadow_predictions, shadow_labels = self._score(
            self._candidate, table
        )
        return ServedBatch(
            predictions=predictions,
            labels=labels,
            primary_version=str(self._primary_version),
            mode="shadow",
            candidate_version=self._candidate_version,
            primary_predictions=predictions,
            primary_labels=labels,
            candidate_predictions=shadow_predictions,
            candidate_labels=shadow_labels,
        )

    def _predict_canary(self, table: Table, index: int) -> ServedBatch:
        keys = row_keys(index, table.num_rows)
        mask = route_mask(keys, self._fraction, salt=self._routing_salt)
        canary_rows = int(np.count_nonzero(mask))
        if canary_rows == 0:
            primary_predictions, primary_labels = self._score(
                self._primary, table
            )
            candidate_predictions = candidate_labels = _EMPTY
        elif canary_rows == table.num_rows:
            candidate_predictions, candidate_labels = self._score(
                self._candidate, table
            )
            primary_predictions = primary_labels = _EMPTY
        else:
            primary_predictions, primary_labels = self._score(
                self._primary, table.filter_rows(~mask)
            )
            candidate_predictions, candidate_labels = self._score(
                self._candidate, table.filter_rows(mask)
            )
        return ServedBatch(
            predictions=np.concatenate(
                [primary_predictions, candidate_predictions]
            ),
            labels=np.concatenate([primary_labels, candidate_labels]),
            primary_version=str(self._primary_version),
            mode="canary",
            candidate_version=self._candidate_version,
            primary_predictions=primary_predictions,
            primary_labels=primary_labels,
            candidate_predictions=candidate_predictions,
            candidate_labels=candidate_labels,
            canary_share=canary_rows / max(table.num_rows, 1),
        )

    def _score(self, bundle: DeploymentBundle, table: Table):
        if table.num_rows == 0:
            return _EMPTY, _EMPTY
        features = self.engine.transform_only(bundle.pipeline, table)
        if features.num_rows == 0:
            return _EMPTY, _EMPTY
        predictions = self.engine.predict(bundle.model, features.matrix)
        return predictions, np.asarray(features.labels)

    def __repr__(self) -> str:
        return (
            f"ServingEndpoint(primary={self._primary_version}, "
            f"mode={self.mode}, candidate={self._candidate_version})"
        )
