"""Prediction serving over registry versions: live, shadow, canary.

:class:`ServingEndpoint` answers prediction batches from the
registry's live version. A rollout may additionally attach a
*candidate* version in one of two staging modes:

* **shadow** — every batch is also scored by the candidate; its
  predictions are recorded for the quality gate but never returned.
  The primary path is untouched, so the caller-visible predictions
  are byte-identical to a run without the shadow.
* **canary** — a configurable fraction of rows is served *by* the
  candidate. The split is deterministic per-row hash routing
  (:mod:`repro.serving.routing`): the same logical row always lands
  on the same side, independent of batch boundaries or replays.

Every batch produces a :class:`ServedBatch` carrying the per-side
predictions and labels the :class:`~repro.serving.gate.QualityGate`
compares.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.data.table import Table
from repro.exceptions import ServingError
from repro.execution.cost import CostModel
from repro.execution.engine import LocalExecutionEngine
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs import names
from repro.persistence import DeploymentBundle
from repro.pipeline.pipeline import Pipeline
from repro.serving.registry import ModelRegistry
from repro.serving.routing import derive_routing_seed, route_mask, row_keys
from repro.utils.rng import SeedLike

#: Staging modes a candidate can be attached in.
MODES = ("shadow", "canary")

_EMPTY = np.empty(0, dtype=np.float64)


def shared_stateless_prefix(primary: Pipeline, candidate: Pipeline) -> int:
    """Length of the leading run of equivalent *stateless* components.

    Shadow scoring runs two pipelines over the same rows; the leading
    stateless components (parsers, feature extraction, filters) are
    usually identical between the champion and a candidate trained
    from the same code, so their work can be computed once and shared.
    Equivalence is checked conservatively — same class, same name,
    same pickled configuration — and stateful components stop the
    scan, because their fitted statistics may legitimately differ
    between versions. Capped at ``len - 1`` so each side always runs
    its own terminal stage.
    """
    limit = min(len(primary), len(candidate)) - 1
    shared = 0
    for ours, theirs in zip(primary.components, candidate.components):
        if shared >= limit:
            break
        if ours.is_stateful or theirs.is_stateful:
            break
        if type(ours) is not type(theirs) or ours.name != theirs.name:
            break
        try:
            if pickle.dumps(ours) != pickle.dumps(theirs):
                break
        except (pickle.PicklingError, TypeError, AttributeError):
            break
        shared += 1
    return shared


@dataclass
class ServedBatch:
    """One served prediction batch, with per-side detail.

    ``predictions``/``labels`` are what the caller consumes — in
    canary mode the rows served by the primary come first, then the
    canary rows (pipelines may filter rows per side, so a positional
    merge back into input order is not defined in general).
    """

    predictions: np.ndarray
    labels: np.ndarray
    primary_version: str
    mode: str = "solo"
    candidate_version: Optional[str] = None
    #: Rows answered by the live version (full batch in solo/shadow).
    primary_predictions: np.ndarray = field(default_factory=lambda: _EMPTY)
    primary_labels: np.ndarray = field(default_factory=lambda: _EMPTY)
    #: Rows scored by the candidate (mirror in shadow, split in canary).
    candidate_predictions: np.ndarray = field(
        default_factory=lambda: _EMPTY
    )
    candidate_labels: np.ndarray = field(default_factory=lambda: _EMPTY)
    #: Fraction of input rows routed to the canary (0 outside canary).
    canary_share: float = 0.0


class ServingEndpoint:
    """Routes prediction batches to registry versions.

    Parameters
    ----------
    registry:
        The version store; the endpoint serves its live version.
    cost_model:
        Prices for the endpoint's execution engine.
    seed:
        Seeds the deterministic canary routing salt (via
        :mod:`repro.utils.rng`), so a restart reproduces the split.
    telemetry:
        Optional observability bundle (``serving.predict`` spans,
        shadow/canary row counters).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        cost_model: Optional[CostModel] = None,
        seed: SeedLike = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.registry = registry
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.engine = LocalExecutionEngine(
            cost_model, telemetry=self.telemetry
        )
        self._routing_salt = derive_routing_seed(seed)
        self._primary_version: Optional[str] = None
        self._primary: Optional[DeploymentBundle] = None
        self._candidate_version: Optional[str] = None
        self._candidate: Optional[DeploymentBundle] = None
        self._mode: Optional[str] = None
        self._fraction = 0.0
        self._batch_index = -1
        #: Shadow transform dedup: ``(prefix, primary_rest,
        #: candidate_rest)`` pipelines when the attached shadow shares
        #: a leading stateless run with the primary, else ``None``.
        self._shadow_shared: Optional[
            Tuple[Pipeline, Pipeline, Pipeline]
        ] = None
        if registry.live_version is not None:
            self.reload_live()

    # ------------------------------------------------------------------
    @property
    def primary_version(self) -> Optional[str]:
        return self._primary_version

    @property
    def candidate_version(self) -> Optional[str]:
        return self._candidate_version

    @property
    def mode(self) -> str:
        """``"solo"`` when no candidate is attached, else the stage mode."""
        return self._mode if self._mode is not None else "solo"

    @property
    def primary_bundle(self) -> Optional[DeploymentBundle]:
        """The in-memory artifacts currently serving primary traffic."""
        return self._primary

    # ------------------------------------------------------------------
    # Version management
    # ------------------------------------------------------------------
    def reload_live(self) -> str:
        """(Re)load the registry's live version as the primary."""
        version = self.registry.live_version
        if version is None:
            raise ServingError(
                "registry has no live version to serve; promote one "
                "first"
            )
        self._primary = self.registry.load(version)
        self._primary_version = version
        if self._mode == "shadow" and self._candidate is not None:
            self._shadow_shared = self._build_shadow_shared()
        return version

    def attach_candidate(
        self, version: str, mode: str = "shadow", fraction: float = 0.1
    ) -> None:
        """Stage a candidate next to the live version.

        ``fraction`` only applies to canary mode; shadow always
        mirrors the full batch.
        """
        if self._primary is None:
            raise ServingError(
                "attach_candidate: endpoint has no live version"
            )
        if mode not in MODES:
            raise ServingError(
                f"mode must be one of {MODES}, got {mode!r}"
            )
        if self._candidate is not None:
            raise ServingError(
                f"a candidate ({self._candidate_version}) is already "
                f"attached; detach it first"
            )
        if version == self._primary_version:
            raise ServingError(
                f"candidate {version} is already the live version"
            )
        if mode == "canary" and not 0.0 < fraction <= 1.0:
            raise ServingError(
                f"canary fraction must be in (0, 1], got {fraction}"
            )
        self._candidate = self.registry.load(version)
        self._candidate_version = version
        self._mode = mode
        self._fraction = fraction if mode == "canary" else 0.0
        self._shadow_shared = (
            self._build_shadow_shared() if mode == "shadow" else None
        )
        if self.telemetry.enabled:
            self.telemetry.tracer.point(
                names.SERVING_ATTACH,
                version=version,
                mode=mode,
                fraction=self._fraction,
            )

    def detach_candidate(self) -> Optional[str]:
        """Remove the staged candidate; returns its version id."""
        version = self._candidate_version
        self._candidate = None
        self._candidate_version = None
        self._mode = None
        self._fraction = 0.0
        self._shadow_shared = None
        return version

    def promote_candidate(self) -> str:
        """Make the in-memory candidate the primary (post-promotion).

        Call after :meth:`ModelRegistry.promote`; avoids re-reading
        the bundle that is already loaded.
        """
        if self._candidate is None:
            raise ServingError("promote_candidate: no candidate attached")
        self._primary = self._candidate
        self._primary_version = self._candidate_version
        self.detach_candidate()
        return str(self._primary_version)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def predict(
        self, table: Table, chunk_index: Optional[int] = None
    ) -> ServedBatch:
        """Serve one prediction batch.

        ``chunk_index`` keys the deterministic canary routing; when
        omitted, an internal batch counter is used (stable within one
        endpoint lifetime, but not across restarts — pass the
        deployment chunk index for replay-stable routing).
        """
        if self._primary is None:
            raise ServingError("endpoint has no live version to serve")
        self._batch_index += 1
        index = (
            chunk_index if chunk_index is not None else self._batch_index
        )
        cost_before = self.engine.total_cost()
        if self._mode == "canary":
            served = self._predict_canary(table, index)
        elif self._mode == "shadow":
            served = self._predict_shadow(table)
        else:
            predictions, labels = self._score(self._primary, table)
            served = ServedBatch(
                predictions=predictions,
                labels=labels,
                primary_version=str(self._primary_version),
                primary_predictions=predictions,
                primary_labels=labels,
            )
        self._emit_served(served, table.num_rows, cost_before)
        return served

    def predict_requests(
        self,
        tables: Sequence[Table],
        keys: Optional[Sequence[int]] = None,
    ) -> ServedBatch:
        """Serve many queued requests as one micro-batch.

        The batched front end (:mod:`repro.traffic`): the requests'
        tables are concatenated and each pipeline/model runs once over
        the merged rows, amortizing per-call transform and kernel
        dispatch. ``keys`` are the stable per-request routing keys —
        canary routing is computed per request *before* merging, so
        every row lands on the same side it would have landed on had
        its request been served alone, and the flattened per-side
        prediction streams are bit-identical to request-at-a-time
        serving (pipelines may filter rows, so the merged result is
        reported batch-level, not re-split per request).
        """
        if self._primary is None:
            raise ServingError("endpoint has no live version to serve")
        tables = list(tables)
        if not tables:
            raise ServingError(
                "predict_requests needs at least one request"
            )
        if keys is None:
            keys = [self._batch_index + 1 + i for i in range(len(tables))]
        elif len(keys) != len(tables):
            raise ServingError(
                f"predict_requests got {len(tables)} tables but "
                f"{len(keys)} routing keys"
            )
        self._batch_index += len(tables)
        total_rows = sum(t.num_rows for t in tables)
        cost_before = self.engine.total_cost()
        if self._mode == "canary":
            served = self._predict_canary_requests(tables, keys)
        elif self._mode == "shadow":
            served = self._predict_shadow(Table.concat(tables))
        else:
            merged = Table.concat(tables)
            predictions, labels = self._score(self._primary, merged)
            served = ServedBatch(
                predictions=predictions,
                labels=labels,
                primary_version=str(self._primary_version),
                primary_predictions=predictions,
                primary_labels=labels,
            )
        self._emit_served(
            served, total_rows, cost_before, requests=len(tables)
        )
        return served

    def _emit_served(
        self,
        served: ServedBatch,
        rows: int,
        cost_before: float,
        requests: int = 1,
    ) -> None:
        if not self.telemetry.enabled:
            return
        # Per-batch serving latency on the virtual clock — the
        # health monitor's SLO signal. A point + histogram, not a
        # span, so profile digests stay stable.
        batch_cost = self.engine.total_cost() - cost_before
        self.telemetry.metrics.observe(names.SERVING_LATENCY, batch_cost)
        self.telemetry.tracer.point(
            names.SERVING_LATENCY,
            cost=batch_cost,
            rows=rows,
            mode=served.mode,
        )
        self.telemetry.metrics.counter(names.SERVING_BATCHES).inc(
            requests
        )
        self.telemetry.metrics.counter(names.SERVING_ROWS).inc(rows)
        if served.mode == "canary":
            self.telemetry.metrics.counter(
                names.SERVING_CANARY_ROWS
            ).inc(len(served.candidate_predictions))
        elif served.mode == "shadow":
            self.telemetry.metrics.counter(
                names.SERVING_SHADOW_ROWS
            ).inc(len(served.candidate_predictions))

    # ------------------------------------------------------------------
    def _build_shadow_shared(
        self,
    ) -> Optional[Tuple[Pipeline, Pipeline, Pipeline]]:
        """Split primary/candidate pipelines around their shared prefix.

        Component equality is pickle-based, so the transforms the
        prefix pipeline applies are exactly what each side would have
        applied — the split changes cost, never predictions.
        """
        assert self._primary is not None and self._candidate is not None
        shared = shared_stateless_prefix(
            self._primary.pipeline, self._candidate.pipeline
        )
        if shared == 0:
            return None
        components = self._primary.pipeline.components
        return (
            Pipeline(components[:shared]),
            Pipeline(components[shared:]),
            Pipeline(self._candidate.pipeline.components[shared:]),
        )

    def _predict_shadow(self, table: Table) -> ServedBatch:
        # The primary path runs first and, transform for transform,
        # computes what solo mode would (the shared prefix is pickle-
        # equal to the primary's own leading components), so its
        # predictions stay byte-identical with a shadow attached.
        if self._shadow_shared is not None and table.num_rows:
            prefix, primary_rest, candidate_rest = self._shadow_shared
            stem = self.engine.serve_transform(prefix, table)
            predictions, labels = self._score_tail(
                self._primary, primary_rest, stem
            )
            shadow_predictions, shadow_labels = self._score_tail(
                self._candidate, candidate_rest, stem
            )
        else:
            predictions, labels = self._score(self._primary, table)
            shadow_predictions, shadow_labels = self._score(
                self._candidate, table
            )
        return ServedBatch(
            predictions=predictions,
            labels=labels,
            primary_version=str(self._primary_version),
            mode="shadow",
            candidate_version=self._candidate_version,
            primary_predictions=predictions,
            primary_labels=labels,
            candidate_predictions=shadow_predictions,
            candidate_labels=shadow_labels,
        )

    def _predict_canary(self, table: Table, index: int) -> ServedBatch:
        keys = row_keys(index, table.num_rows)
        mask = route_mask(keys, self._fraction, salt=self._routing_salt)
        canary_rows = int(np.count_nonzero(mask))
        if canary_rows == 0:
            primary_predictions, primary_labels = self._score(
                self._primary, table
            )
            candidate_predictions = candidate_labels = _EMPTY
        elif canary_rows == table.num_rows:
            candidate_predictions, candidate_labels = self._score(
                self._candidate, table
            )
            primary_predictions = primary_labels = _EMPTY
        else:
            primary_predictions, primary_labels = self._score(
                self._primary, table.filter_rows(~mask)
            )
            candidate_predictions, candidate_labels = self._score(
                self._candidate, table.filter_rows(mask)
            )
        return ServedBatch(
            predictions=np.concatenate(
                [primary_predictions, candidate_predictions]
            ),
            labels=np.concatenate([primary_labels, candidate_labels]),
            primary_version=str(self._primary_version),
            mode="canary",
            candidate_version=self._candidate_version,
            primary_predictions=primary_predictions,
            primary_labels=primary_labels,
            candidate_predictions=candidate_predictions,
            candidate_labels=candidate_labels,
            canary_share=canary_rows / max(table.num_rows, 1),
        )

    def _predict_canary_requests(
        self, tables: Sequence[Table], keys: Sequence[int]
    ) -> ServedBatch:
        # Route each request by its own stable key, exactly as
        # request-at-a-time serving would, then merge the per-side
        # slices and score each side once.
        primary_parts = []
        candidate_parts = []
        canary_rows = 0
        total_rows = 0
        for key, table in zip(keys, tables):
            total_rows += table.num_rows
            mask = route_mask(
                row_keys(int(key), table.num_rows),
                self._fraction,
                salt=self._routing_salt,
            )
            routed = int(np.count_nonzero(mask))
            canary_rows += routed
            if routed == 0:
                primary_parts.append(table)
            elif routed == table.num_rows:
                candidate_parts.append(table)
            else:
                primary_parts.append(table.filter_rows(~mask))
                candidate_parts.append(table.filter_rows(mask))
        if primary_parts:
            primary_predictions, primary_labels = self._score(
                self._primary, Table.concat(primary_parts)
            )
        else:
            primary_predictions = primary_labels = _EMPTY
        if candidate_parts:
            candidate_predictions, candidate_labels = self._score(
                self._candidate, Table.concat(candidate_parts)
            )
        else:
            candidate_predictions = candidate_labels = _EMPTY
        return ServedBatch(
            predictions=np.concatenate(
                [primary_predictions, candidate_predictions]
            ),
            labels=np.concatenate([primary_labels, candidate_labels]),
            primary_version=str(self._primary_version),
            mode="canary",
            candidate_version=self._candidate_version,
            primary_predictions=primary_predictions,
            primary_labels=primary_labels,
            candidate_predictions=candidate_predictions,
            candidate_labels=candidate_labels,
            canary_share=canary_rows / max(total_rows, 1),
        )

    def _score(self, bundle: DeploymentBundle, table: Table):
        if table.num_rows == 0:
            return _EMPTY, _EMPTY
        features = self.engine.transform_only(bundle.pipeline, table)
        if features.num_rows == 0:
            return _EMPTY, _EMPTY
        predictions = self.engine.predict(bundle.model, features.matrix)
        return predictions, np.asarray(features.labels)

    def _score_tail(
        self, bundle: DeploymentBundle, rest: Pipeline, stem: Table
    ):
        """Finish scoring from a shared-prefix transform result."""
        features = self.engine.transform_only(rest, stem)
        if features.num_rows == 0:
            return _EMPTY, _EMPTY
        predictions = self.engine.predict(bundle.model, features.matrix)
        return predictions, np.asarray(features.labels)

    def __repr__(self) -> str:
        return (
            f"ServingEndpoint(primary={self._primary_version}, "
            f"mode={self.mode}, candidate={self._candidate_version})"
        )
