"""``repro.serving`` — model registry and staged serving layer.

The missing half of a continuously-*trained* platform: continuously
*serving* it safely. The package layers four pieces on top of
:mod:`repro.persistence` deployment bundles:

* :class:`ModelRegistry` — versioned, checksummed bundle store with
  lineage metadata and a promote / rollback / gc lifecycle;
* :class:`ServingEndpoint` — routes prediction batches to the live
  version, optionally mirroring traffic to a **shadow** candidate or
  splitting a deterministic hash-routed fraction to a **canary**;
* :class:`QualityGate` / :class:`BaselineMonitor` — compare candidate
  vs incumbent on served traffic and watch the newly-live version
  after promotion;
* :class:`RolloutController` — the state machine that auto-promotes
  on a sustained win and auto-rolls-back on regression, emitting
  every transition as ``rollout.*`` / ``registry.*`` obs events.

Quickstart::

    from repro.serving import (
        ModelRegistry, RolloutController, ServingEndpoint,
    )

    registry = ModelRegistry("./registry")
    v1 = registry.register(pipeline, model, optimizer)
    registry.promote(v1.version, reason="initial deployment")

    endpoint = ServingEndpoint(registry, seed=7)
    controller = RolloutController(registry, endpoint)
    controller.stage("v0002", mode="canary", fraction=0.2)
    for chunk_index, table in enumerate(stream):
        served = endpoint.predict(table, chunk_index=chunk_index)
        controller.observe(served)   # may promote or roll back
"""

from repro.serving.controller import RolloutController
from repro.serving.endpoint import ServedBatch, ServingEndpoint
from repro.serving.gate import (
    BaselineMonitor,
    GateConfig,
    GateDecision,
    QualityGate,
)
from repro.serving.registry import ModelRegistry, VersionInfo
from repro.serving.routing import (
    derive_routing_seed,
    route_mask,
    row_keys,
    splitmix64,
)

__all__ = [
    "ModelRegistry",
    "VersionInfo",
    "ServingEndpoint",
    "ServedBatch",
    "QualityGate",
    "BaselineMonitor",
    "GateConfig",
    "GateDecision",
    "RolloutController",
    "derive_routing_seed",
    "route_mask",
    "row_keys",
    "splitmix64",
]
