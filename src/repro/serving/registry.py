"""Versioned model registry over deployment bundles.

The registry is a directory of immutable, checksummed deployment
bundles (see :mod:`repro.persistence`) plus one JSON manifest that
records, for every version, its lineage and lifecycle state:

``root/
    registry.json        manifest: versions, live pointer, transitions
    v0001.bundle         pipeline + model + optimizer snapshot
    v0002.bundle
    ...``

Every version carries lineage metadata — the parent version it was
trained from, how many deployment chunks the platform had observed,
the virtual-clock training cost, and arbitrary evaluation metrics —
so a rollback decision can always be audited after the fact.

Lifecycle: a version is registered as a ``candidate``, becomes
``live`` through :meth:`ModelRegistry.promote` (the incumbent moves to
``retired``), and a regression reverts it with
:meth:`ModelRegistry.rollback` (the failed version is marked
``rolled_back``, the previous live version is reinstated). Candidates
that never make it are ``rejected``. Every transition is appended to
the manifest's transition log and, when telemetry is attached, emitted
as a ``registry.*`` trace point.

Manifest writes are atomic (temp file + ``os.replace``), so a crash
mid-transition leaves the previous consistent manifest in place.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.exceptions import ServingError
from repro.ml.models.base import LinearSGDModel
from repro.ml.optim.base import Optimizer
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs import names
from repro.persistence import (
    DeploymentBundle,
    PathLike,
    atomic_write_bytes,
    bundle_checksum,
    load_bundle,
    save_bundle,
    select_prunable,
)
from repro.pipeline.pipeline import Pipeline

#: Manifest schema version.
MANIFEST_FORMAT = 1

#: Manifest file name inside the registry root.
MANIFEST_NAME = "registry.json"

#: Legal lifecycle states of a version.
STATUSES = ("candidate", "live", "retired", "rejected", "rolled_back")


@dataclass
class VersionInfo:
    """Metadata of one registered version (one manifest entry)."""

    version: str
    status: str = "candidate"
    parent: Optional[str] = None
    checksum: str = ""
    #: Deployment chunks the platform had observed at registration.
    chunks_observed: int = 0
    #: Virtual-clock cost spent producing this version.
    training_cost: float = 0.0
    #: Evaluation metrics supplied at registration (objective, error).
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Registration order (monotonically increasing across versions).
    seq: int = 0
    #: Bundle file removed by :meth:`ModelRegistry.gc` (metadata stays).
    collected: bool = False

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "VersionInfo":
        known = {
            name: payload[name]
            for name in cls.__dataclass_fields__
            if name in payload
        }
        return cls(**known)


class ModelRegistry:
    """Versioned storage of deployment bundles with staged promotion.

    Parameters
    ----------
    root:
        Registry directory; created when missing. An existing manifest
        is loaded, so reopening a registry resumes its state.
    telemetry:
        Optional observability bundle; transitions become
        ``registry.*`` trace points and counters, and — when the
        bundle carries a :class:`~repro.obs.lineage.LineageLedger` —
        every version becomes a lineage ``model`` node whose
        lifecycle transitions the ledger records.
    name:
        Namespace of this registry's lineage nodes
        (``model:<name>:<version>``); defaults to the root directory
        name, which keeps versions of different registries (e.g. one
        per rollout policy) distinct in a shared ledger.
    """

    def __init__(
        self,
        root: PathLike,
        telemetry: Optional[Telemetry] = None,
        name: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.name = name if name is not None else self.root.name
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self._versions: Dict[str, VersionInfo] = {}
        self._live: Optional[str] = None
        self._next_id = 1
        self._transitions: List[Dict[str, object]] = []
        if self.manifest_path.exists():
            self._load_manifest()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def live_version(self) -> Optional[str]:
        """Version id currently serving, or ``None``."""
        return self._live

    @property
    def transitions(self) -> List[Dict[str, object]]:
        """Promotion/rollback/registration log, oldest first."""
        return list(self._transitions)

    def list_versions(self) -> List[VersionInfo]:
        """All versions in registration order."""
        return sorted(self._versions.values(), key=lambda v: v.seq)

    def candidates(self) -> List[VersionInfo]:
        """Versions still awaiting a promotion decision."""
        return [
            info for info in self.list_versions()
            if info.status == "candidate"
        ]

    def get(self, version: str) -> VersionInfo:
        """Metadata of ``version`` (raises on unknown ids)."""
        try:
            return self._versions[version]
        except KeyError:
            raise ServingError(
                f"unknown version {version!r}; registry has "
                f"{sorted(self._versions)}"
            ) from None

    def bundle_path(self, version: str) -> Path:
        return self.root / f"{self.get(version).version}.bundle"

    def load(self, version: str) -> DeploymentBundle:
        """Load a version's bundle, verifying its recorded checksum."""
        info = self.get(version)
        if info.collected:
            raise ServingError(
                f"version {version} was garbage-collected; its bundle "
                f"file is gone (lineage metadata is retained)"
            )
        path = self.bundle_path(version)
        checksum = bundle_checksum(path)
        if info.checksum and checksum != info.checksum:
            raise ServingError(
                f"bundle for {version} at {path} does not match its "
                f"registered checksum (expected {info.checksum[:12]}…, "
                f"found {checksum[:12]}…)"
            )
        return load_bundle(path)

    def load_live(self) -> DeploymentBundle:
        """Load the live version's bundle."""
        if self._live is None:
            raise ServingError("registry has no live version")
        return self.load(self._live)

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def register(
        self,
        pipeline: Pipeline,
        model: LinearSGDModel,
        optimizer: Optimizer,
        parent: Optional[str] = None,
        chunks_observed: int = 0,
        training_cost: float = 0.0,
        metrics: Optional[Dict[str, float]] = None,
        lineage_event: Optional[str] = None,
    ) -> VersionInfo:
        """Snapshot a pipeline+model+optimizer as a new candidate.

        ``parent`` defaults to the current live version — the normal
        lineage of a proactive-training output. ``lineage_event`` is
        the provenance-ledger training node that produced these
        artifacts (when a ledger is attached); the new version's
        ``model`` node is linked to it with a ``produced`` edge.
        """
        version = f"v{self._next_id:04d}"
        self._next_id += 1
        if parent is None:
            parent = self._live
        elif parent not in self._versions:
            raise ServingError(
                f"parent version {parent!r} is not registered"
            )
        path = self.root / f"{version}.bundle"
        save_bundle(path, pipeline, model, optimizer)
        info = VersionInfo(
            version=version,
            status="candidate",
            parent=parent,
            checksum=bundle_checksum(path),
            chunks_observed=int(chunks_observed),
            training_cost=float(training_cost),
            metrics=dict(metrics or {}),
            seq=len(self._versions),
        )
        self._versions[version] = info
        ledger = self.telemetry.ledger
        if ledger is not None:
            ledger.record_model(
                self.name,
                version,
                checksum=info.checksum,
                parent=parent,
                training=lineage_event,
            )
        self._record("register", version=version, parent=parent)
        self._save_manifest()
        return info

    def promote(self, version: str, reason: str = "") -> VersionInfo:
        """Make ``version`` the live one; the incumbent is retired."""
        info = self.get(version)
        if info.collected:
            raise ServingError(
                f"cannot promote {version}: bundle was garbage-collected"
            )
        if info.status == "live":
            raise ServingError(f"{version} is already live")
        previous = self._live
        if previous is not None:
            self._versions[previous].status = "retired"
        info.status = "live"
        self._live = version
        self._record(
            "promote", version=version, previous=previous, reason=reason
        )
        self._save_manifest()
        return info

    def rollback(self, reason: str = "") -> VersionInfo:
        """Revert the live version to its predecessor.

        The failed version is marked ``rolled_back``; the most recent
        previously-live version (from the transition log) is
        reinstated. Raises when there is nothing to roll back to.
        """
        if self._live is None:
            raise ServingError("rollback: registry has no live version")
        previous = self._previous_live()
        if previous is None:
            raise ServingError(
                f"rollback: {self._live} has no predecessor to revert to"
            )
        if self._versions[previous].collected:
            raise ServingError(
                f"rollback: predecessor {previous} was garbage-collected"
            )
        failed = self._live
        self._versions[failed].status = "rolled_back"
        self._versions[previous].status = "live"
        self._live = previous
        self._record(
            "rollback", version=previous, failed=failed, reason=reason
        )
        self._save_manifest()
        return self._versions[previous]

    def reject(self, version: str, reason: str = "") -> VersionInfo:
        """Mark a candidate as rejected (it never went live)."""
        info = self.get(version)
        if info.status != "candidate":
            raise ServingError(
                f"only candidates can be rejected; {version} is "
                f"{info.status}"
            )
        info.status = "rejected"
        self._record("reject", version=version, reason=reason)
        self._save_manifest()
        return info

    def gc(self, keep: int = 3) -> List[str]:
        """Delete bundle files of old finished versions.

        Keeps the live version, every candidate, and the ``keep`` most
        recently registered finished (retired / rejected / rolled_back)
        versions. Collected versions keep their manifest entry — the
        lineage stays auditable — but their bundle file is removed.
        Returns the collected version ids.
        """
        if keep < 0:
            raise ServingError(f"keep must be >= 0, got {keep}")
        finished = [
            info for info in self.list_versions()
            if info.status in ("retired", "rejected", "rolled_back")
            and not info.collected
        ]
        collected: List[str] = []
        for info in select_prunable(finished, keep):
            path = self.root / f"{info.version}.bundle"
            if path.exists():
                path.unlink()
            info.collected = True
            collected.append(info.version)
        if collected:
            self._record("gc", collected=collected)
            self._save_manifest()
        return collected

    # ------------------------------------------------------------------
    # Manifest persistence
    # ------------------------------------------------------------------
    def _save_manifest(self) -> None:
        manifest = {
            "format": MANIFEST_FORMAT,
            "live": self._live,
            "next_id": self._next_id,
            "versions": {
                version: info.to_dict()
                for version, info in self._versions.items()
            },
            "transitions": self._transitions,
        }
        blob = json.dumps(manifest, indent=2, sort_keys=True)
        atomic_write_bytes(self.manifest_path, blob.encode("utf-8"))

    def _load_manifest(self) -> None:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError) as error:
            raise ServingError(
                f"cannot read registry manifest "
                f"{self.manifest_path}: {error}"
            ) from error
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ServingError(
                f"{self.manifest_path} has manifest format "
                f"{manifest.get('format')!r}; this library reads "
                f"format {MANIFEST_FORMAT}"
            )
        self._live = manifest.get("live")
        self._next_id = int(manifest.get("next_id", 1))
        self._transitions = list(manifest.get("transitions", []))
        self._versions = {
            version: VersionInfo.from_dict(payload)
            for version, payload in manifest.get("versions", {}).items()
        }
        if self._live is not None and self._live not in self._versions:
            raise ServingError(
                f"{self.manifest_path} points live at unknown version "
                f"{self._live!r}"
            )

    # ------------------------------------------------------------------
    def _previous_live(self) -> Optional[str]:
        """Most recent formerly-live version other than the current one."""
        for transition in reversed(self._transitions):
            if transition["event"] != "promote":
                continue
            if transition["version"] != self._live:
                continue
            previous = transition.get("previous")
            if previous is not None:
                return str(previous)
        return None

    def _record(self, event: str, **attrs: object) -> None:
        entry: Dict[str, object] = {"event": event, **attrs}
        self._transitions.append(entry)
        ledger = self.telemetry.ledger
        if (
            ledger is not None
            and event != "register"
            and "version" in attrs
        ):
            # register is recorded as a model node at registration
            # time; lifecycle transitions (promote/rollback/reject)
            # become ledger events and update the live-version map.
            ledger.record_transition(
                self.name, str(attrs["version"]), event
            )
        if self.telemetry.enabled:
            self.telemetry.tracer.point(names.REGISTRY_PREFIX + event, **attrs)
            self.telemetry.metrics.counter(names.REGISTRY_PREFIX + event).inc()

    def __repr__(self) -> str:
        return (
            f"ModelRegistry(root={str(self.root)!r}, "
            f"versions={len(self._versions)}, live={self._live})"
        )
