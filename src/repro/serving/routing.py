"""Deterministic per-row traffic routing for canary rollouts.

A canary split must be (a) stable — the same logical row always lands
on the same side, so a retried query cannot flip between models — and
(b) independent of arrival order, so replays reproduce the routing
exactly. Both follow from hashing a per-row key instead of drawing
from a stream of random numbers.

Row keys are 64-bit integers (the platform uses
``chunk_index * 2**32 + row_index``, see :func:`row_keys`); the hash
is SplitMix64 — a statistically strong, vectorisable integer mixer —
salted with a routing seed derived through :mod:`repro.utils.rng`, so
two endpoints with different seeds produce independent splits.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ServingError
from repro.utils.rng import SeedLike, ensure_rng

#: Resolution of the routing fraction: a row routes to the canary when
#: its hash bucket (0 ≤ bucket < 1) falls below the fraction.
_U64 = np.uint64
_INV_2_64 = 1.0 / 2.0**64


def derive_routing_seed(seed: SeedLike = None) -> int:
    """A 64-bit salt for :func:`route_mask`, derived via ``utils.rng``.

    Passing the same ``seed`` always yields the same salt, so a
    deployment restart reproduces its canary split.
    """
    rng = ensure_rng(seed)
    return int(rng.integers(0, 2**63 - 1, dtype=np.int64))


def splitmix64(keys: np.ndarray, salt: int = 0) -> np.ndarray:
    """Vectorised SplitMix64 of integer ``keys`` (uint64 out)."""
    with np.errstate(over="ignore"):
        z = np.asarray(keys, dtype=_U64) + _U64(
            (0x9E3779B97F4A7C15 + salt) % 2**64
        )
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        return z ^ (z >> _U64(31))


def route_mask(
    keys: np.ndarray, fraction: float, salt: int = 0
) -> np.ndarray:
    """Boolean mask: ``True`` rows route to the canary.

    ``fraction`` is the target canary share in [0, 1]. Routing is a
    pure function of ``(key, salt)`` — stable across batches, replays,
    and processes.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ServingError(
            f"canary fraction must be in [0, 1], got {fraction}"
        )
    hashed = splitmix64(np.asarray(keys), salt=salt)
    return hashed.astype(np.float64) * _INV_2_64 < fraction


def row_keys(chunk_index: int, num_rows: int) -> np.ndarray:
    """Stable 64-bit keys for the rows of one deployment chunk."""
    if chunk_index < 0:
        raise ServingError(
            f"chunk_index must be >= 0, got {chunk_index}"
        )
    base = _U64(chunk_index) * _U64(2**32)
    return base + np.arange(num_rows, dtype=_U64)
